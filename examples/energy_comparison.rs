//! Why processing-using-DRAM: the data-movement cost model.
//!
//! The paper's motivation (§1) is that moving bulk data over the
//! memory channel dominates energy. This example prices an N-input
//! bulk AND two ways with the library's command-level cost model:
//!
//! * **host**: read N operand rows over the channel, compute on the
//!   CPU, write the result row back;
//! * **in-DRAM**: initialize the reference subarray, run one
//!   violated-timing double activation, read one result row.
//!
//! Run with: `cargo run --release --example energy_comparison`

use dram_core::{EnergyParams, OpCost, SpeedBin, TimingParams};

fn main() {
    let t = TimingParams::ddr4_default();
    let e = EnergyParams::ddr4_default();
    let speed = SpeedBin::Mt2666;
    let row_bytes = 8192; // one x8 chip row

    println!("bulk bitwise AND over {row_bytes}-byte rows @ {speed}\n");
    println!(
        "{:>7}  {:>12} {:>12}  {:>12} {:>12}  {:>9} {:>9}",
        "inputs", "host nJ", "dram nJ", "host ns", "dram ns", "host B", "dram B"
    );
    for n in [2usize, 4, 8, 16] {
        let host = OpCost::host_bitwise(&t, &e, speed, row_bytes, n);
        let dram = OpCost::in_dram_bitwise(&t, &e, speed, row_bytes, n);
        println!(
            "{:>7}  {:>12.1} {:>12.1}  {:>12.1} {:>12.1}  {:>9} {:>9}",
            n,
            host.energy_pj / 1000.0,
            dram.energy_pj / 1000.0,
            host.latency_ns,
            dram.latency_ns,
            host.channel_bytes,
            dram.channel_bytes,
        );
    }

    // Steady state: operands already resident in DRAM (the realistic
    // pipeline case) — subtract the operand write-in from the in-DRAM
    // side; the host still has to read every operand.
    println!("\nsteady state (operands already resident in DRAM):");
    println!(
        "{:>7}  {:>12} {:>12}  {:>10}",
        "inputs", "host nJ", "dram nJ", "ratio"
    );
    for n in [2usize, 4, 8, 16] {
        let host = OpCost::host_bitwise(&t, &e, speed, row_bytes, n);
        let mut dram = OpCost::in_dram_bitwise(&t, &e, speed, row_bytes, n);
        for _ in 0..n {
            let w = OpCost::row_transfer(&t, &e, speed, row_bytes, true);
            dram.energy_pj -= w.energy_pj;
            dram.latency_ns -= w.latency_ns;
        }
        println!(
            "{:>7}  {:>12.1} {:>12.1}  {:>9.1}x",
            n,
            host.energy_pj / 1000.0,
            dram.energy_pj / 1000.0,
            host.energy_pj / dram.energy_pj
        );
    }
    println!(
        "\nper result bit (16-input, steady state): host {:.2} pJ/bit",
        OpCost::host_bitwise(&t, &e, speed, row_bytes, 16).energy_per_bit_pj(row_bytes * 8)
    );
    println!("(constants are literature-typical; the *ratios* are the claim)");
}
