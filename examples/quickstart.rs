//! Quickstart: functionally-complete Boolean logic in (simulated) DRAM.
//!
//! Builds the full stack for one SK Hynix chip from the paper's
//! Table 1, reverse-engineers its activation patterns, and runs NOT,
//! AND, NAND, OR, and NOR entirely inside the DRAM array.
//!
//! Run with: `cargo run --release --example quickstart`

use dram_core::{BankId, SubarrayId};
use fcdram::{BulkEngine, Fcdram, FcdramError};

fn main() -> Result<(), FcdramError> {
    // A 4Gb M-die SK Hynix DDR4-2666 chip (the paper's most common
    // part), narrowed to 256 columns for a fast demo.
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(256);
    println!("chip under test : {}", cfg.label());
    println!("max op inputs   : {}", cfg.max_op_inputs());

    // The engine discovers the N_RF:N_RL activation map of a
    // neighboring subarray pair, then allocates bit vectors on the
    // shared column half.
    let mut engine = BulkEngine::new(Fcdram::new(cfg), BankId(0), SubarrayId(0))?;
    println!("vector capacity : {} bits", engine.capacity_bits());
    println!(
        "activation map  : {} shapes over {} scanned pairs\n",
        engine.map().shapes().len(),
        engine.map().scanned()
    );

    // Two operand vectors and one output.
    let a = engine.alloc()?;
    let b = engine.alloc()?;
    let out = engine.alloc()?;
    let bits = engine.capacity_bits();
    let data_a: Vec<bool> = (0..bits).map(|i| i % 3 == 0).collect();
    let data_b: Vec<bool> = (0..bits).map(|i| i % 2 == 0).collect();
    engine.write(&a, &data_a)?;
    engine.write(&b, &data_b)?;

    // In-DRAM NOT (bitline-bar coupling across the shared stripe).
    let stats = engine.not(&a, &out)?;
    println!(
        "NOT  : accuracy {:>6.2}%  (model predicted {:>6.2}%)",
        stats.accuracy * 100.0,
        stats.predicted_success * 100.0
    );

    // In-DRAM 2-input gates (charge sharing against a Frac reference).
    for (name, result) in [
        ("AND ", engine.and(&[&a, &b], &out)?),
        ("NAND", engine.nand(&[&a, &b], &out)?),
        ("OR  ", engine.or(&[&a, &b], &out)?),
        ("NOR ", engine.nor(&[&a, &b], &out)?),
    ] {
        println!(
            "{name} : accuracy {:>6.2}%  (model predicted {:>6.2}%)",
            result.accuracy * 100.0,
            result.predicted_success * 100.0
        );
    }

    // Reliability is an analog phenomenon: repetition voting trades
    // bandwidth for correctness (the paper's future-work direction).
    engine.set_repetition(9);
    let voted = engine.and(&[&a, &b], &out)?;
    println!(
        "\nAND with 9-fold voting: accuracy {:>6.2}% over {} executions",
        voted.accuracy * 100.0,
        voted.executions
    );
    Ok(())
}
