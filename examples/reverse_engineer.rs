//! Chip reverse engineering: the paper's §4–§5 methodology, end to
//! end, over the DDR4 command interface.
//!
//! 1. Subarray boundaries via RowClone probing (§4.2) — a copy only
//!    succeeds within a subarray; a cross-subarray "copy" inverts the
//!    shared column half.
//! 2. Physical row order via single-sided RowHammer (§5.2) — an
//!    aggressor at a subarray edge has only one victim row.
//! 3. The N_RF:N_RL activation-pattern map of a neighboring subarray
//!    pair (§4.3, Fig. 5), validated at the command level.
//!
//! Run with: `cargo run --release --example reverse_engineer`

use bender::Bender;
use dram_core::{BankId, ChipId, DramModule, StripeSide, SubarrayId};
use fcdram::mapping::{discover_subarray_rows, validate_entry, ActivationMap};
use fcdram::row_order::discover_row_order;
use fcdram::FcdramError;

fn main() -> Result<(), FcdramError> {
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(128);
    println!("reverse engineering {} (chip 0)\n", cfg.label());
    let mut bender = Bender::new(DramModule::new(cfg));
    let chip = ChipId(0);
    let bank = BankId(0);

    // --- 1. Subarray boundaries (RowClone probing) ------------------
    let rows = discover_subarray_rows(&mut bender, chip, bank, 8)?;
    println!("subarray size: {rows} rows (RowClone probing)");

    // --- 2. Physical row order (RowHammer) --------------------------
    let order = discover_row_order(&mut bender, chip, bank, SubarrayId(1), 6)?;
    println!(
        "row order in subarray 1: edge rows {} (top) and {} (bottom) found by \
         single-victim hammering",
        order.top_edge, order.bottom_edge
    );
    println!(
        "  row 10  → distance {:.3} to the upper stripe ({:?} region)",
        order.distance(dram_core::LocalRow(10), StripeSide::Above),
        order.region(dram_core::LocalRow(10), StripeSide::Above),
    );

    // --- 3. Activation-pattern map (Fig. 5) -------------------------
    let map = ActivationMap::discover(
        &mut bender,
        chip,
        bank,
        (SubarrayId(0), SubarrayId(1)),
        32_768,
        8,
    )?;
    println!(
        "\nactivation map of pair (0,1): {} pairs scanned, total coverage {:.2}%",
        map.scanned(),
        map.total_coverage() * 100.0
    );
    println!("{:>7}  {:>9}  {:>8}", "type", "family", "coverage");
    for row in map.coverage() {
        println!(
            "{:>7}  {:>9}  {:>7.2}%",
            format!("{}:{}", row.n_rf, row.n_rl),
            format!("{:?}", row.kind),
            row.coverage * 100.0
        );
    }

    // Command-level validation of one discovered entry: write pattern
    // A everywhere, glitch, overdrive with pattern B, read back.
    let entry = map
        .shapes()
        .into_iter()
        .filter_map(|(f, l)| map.find(f, l).first().cloned())
        .min_by_key(|e| e.first_rows.len() + e.second_rows.len())
        .expect("at least one pattern");
    let (first, second) = validate_entry(&mut bender, chip, bank, &entry)?;
    println!(
        "\nvalidated {}:{} entry over the command interface:",
        entry.first_rows.len(),
        entry.second_rows.len()
    );
    println!("  rows raised with R_F ({}): {:?}", entry.rf, first);
    println!("  rows raised with R_L ({}): {:?}", entry.rl, second);
    assert_eq!(first, entry.first_rows);
    assert_eq!(second, entry.second_rows);
    println!("  write–read inference matches the shape scan ✓");
    Ok(())
}
