//! In-DRAM similarity search over binary signatures.
//!
//! A classic bulk-bitwise workload (and a core PuD motivation): every
//! lane holds a 16-bit binary signature (a hashed feature sketch);
//! the query is broadcast and each lane computes its Hamming distance
//! to the query *inside the DRAM array* — XOR synthesized from the
//! functionally-complete gate set, then a popcount adder tree, then a
//! threshold compare. Only the one-bit match mask crosses the memory
//! channel.
//!
//! The demo runs the same circuit three ways: the exact host golden
//! model, the in-DRAM substrate unprotected, and the in-DRAM
//! substrate with 7-fold repetition voting — and prices the circuit
//! against a host baseline that must stream all signatures out.
//!
//! Run with: `cargo run --release -p simdram --example similarity_search`

use simdram::{
    reliability, CostModel, CostSummary, DramSubstrate, HostSubstrate, SimdVm, Substrate, UintVec,
};

const WIDTH: usize = 16;
const THRESHOLD: u64 = 4; // match: Hamming distance ≤ 4

/// Deterministic pseudo-random signatures, one per lane.
fn signatures(lanes: usize, salt: u64) -> Vec<u64> {
    (0..lanes as u64)
        .map(|i| dram_core::math::mix2(salt, i) & ((1 << WIDTH) - 1))
        .collect()
}

/// Golden result: which lanes match the query on the host.
fn golden_matches(sigs: &[u64], query: u64) -> Vec<bool> {
    sigs.iter()
        .map(|s| u64::from((s ^ query).count_ones()) <= THRESHOLD)
        .collect()
}

/// Runs the search circuit on any substrate; returns the match mask.
fn search<S: Substrate>(
    vm: &mut SimdVm<S>,
    sigs: &UintVec,
    query: u64,
) -> simdram::Result<Vec<bool>> {
    // The query is a constant, so its vector costs no storage.
    let q = vm.const_uint(WIDTH, query)?;
    let dist = vm.hamming(sigs, &q)?;
    let thr = vm.const_uint(dist.width(), THRESHOLD)?;
    let mask = vm.le(&dist, &thr)?;
    let result = vm.read_mask(mask)?;
    vm.free_uint(dist);
    vm.release(mask);
    Ok(result)
}

fn accuracy(got: &[bool], golden: &[bool]) -> f64 {
    let same = got.iter().zip(golden).filter(|(a, b)| a == b).count();
    same as f64 / golden.len().max(1) as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(64);
    let label = cfg.label();
    let speed = cfg.speed;
    let engine = fcdram::BulkEngine::new(
        fcdram::Fcdram::new(cfg),
        dram_core::BankId(0),
        dram_core::SubarrayId(0),
    )?;
    let mut vm = SimdVm::new(DramSubstrate::new(engine))?;
    let lanes = vm.lanes();
    let sigs_host = signatures(lanes, 0xFEED);
    let query = 0b1010_1100_0011_0101 & ((1 << WIDTH) - 1);
    let golden = golden_matches(&sigs_host, query);
    let expected_hits = golden.iter().filter(|m| **m).count();

    println!("module     : {label}");
    println!("signatures : {lanes} lanes × {WIDTH} bits, threshold ≤ {THRESHOLD}");
    println!("golden     : {expected_hits}/{lanes} matches\n");

    // 1. Exact host golden model.
    let mut gold_vm = SimdVm::new(HostSubstrate::new(lanes, 8192))?;
    let gsigs = gold_vm.alloc_uint(WIDTH)?;
    gold_vm.write_u64(&gsigs, &sigs_host)?;
    let gmask = search(&mut gold_vm, &gsigs, query)?;
    assert_eq!(gmask, golden, "host golden must be exact");
    println!("host golden        : exact ✓");

    // 2. In-DRAM, unprotected.
    let sigs = vm.alloc_uint(WIDTH)?;
    vm.write_u64(&sigs, &sigs_host)?;
    vm.clear_trace();
    let mask1 = search(&mut vm, &sigs, query)?;
    let pred1 = reliability::expected_lane_accuracy(vm.trace());
    let gates = vm.trace().in_dram_ops();
    println!(
        "in-DRAM  (k=1)     : mask accuracy {:6.2}%  (predicted {:6.2}%, {gates} native gates)",
        accuracy(&mask1, &golden) * 100.0,
        pred1 * 100.0
    );

    // Price the circuit: in-DRAM vs streaming all signatures out.
    let model = CostModel::new(speed, lanes);
    let s = CostSummary::new(&model, vm.trace(), lanes, WIDTH, 1);
    println!(
        "  cost             : {:.1} µs / {:.1} nJ in-DRAM vs {:.1} µs / {:.1} nJ host-stream",
        s.in_dram.latency_ns / 1e3,
        s.in_dram.energy_pj / 1e3,
        s.host.latency_ns / 1e3,
        s.host.energy_pj / 1e3,
    );
    let full_row = CostSummary::new(&CostModel::new(speed, 65_536), vm.trace(), 65_536, WIDTH, 1);
    println!(
        "  at 65,536 lanes  : energy ratio (host/in-DRAM) {:.2}x",
        full_row.energy_ratio()
    );

    // 3. In-DRAM with 7-fold repetition voting.
    vm.substrate_mut().set_repetition(7);
    vm.clear_trace();
    let mask7 = search(&mut vm, &sigs, query)?;
    let pred7 = reliability::expected_lane_accuracy(vm.trace());
    println!(
        "in-DRAM  (k=7)     : mask accuracy {:6.2}%  (predicted {:6.2}%, 7x energy)",
        accuracy(&mask7, &golden) * 100.0,
        pred7 * 100.0
    );

    // How much voting would a 99%-reliable mask need?
    let per_gate = pred1.powf(1.0 / gates.max(1) as f64);
    match reliability::repetitions_for_target(per_gate, gates, 0.99) {
        Some(k) => println!("\n→ 99% mask accuracy needs k = {k} at p̄ = {per_gate:.4}"),
        None => println!("\n→ 99% unreachable by voting at p̄ = {per_gate:.4}"),
    }
    println!(
        "\nTakeaway: the gate set is complete and the search runs entirely\n\
         in the array, but COTS-chip gate reliability makes protection\n\
         (voting here; ECC/stronger repetition in general) part of the\n\
         design space — exactly the paper's call for explicit DRAM\n\
         support (§7, §9)."
    );

    Ok(())
}
