//! Bitmap-index scan: the bulk-bitwise database workload that
//! motivates processing-using-DRAM (Seshadri et al., Ambit; §1 of the
//! FCDRAM paper).
//!
//! A table of "users" is indexed by bitmap columns (one bit per row):
//! `premium`, `active_last_week`, `eu_resident`, `opted_in`. The query
//!
//! ```sql
//! SELECT count(*) WHERE premium AND active AND (eu OR opted_in)
//! ```
//!
//! is evaluated entirely with in-DRAM AND/OR operations, then compared
//! against the host-computed ground truth.
//!
//! Run with: `cargo run --release --example bitmap_scan`

use dram_core::{BankId, SubarrayId};
use fcdram::{BulkEngine, Fcdram, FcdramError};

/// Deterministic pseudo-random predicate bit.
fn bit(seed: u64, i: usize) -> bool {
    dram_core::math::hash_to_unit(dram_core::math::mix2(seed, i as u64)) < 0.4
}

fn main() -> Result<(), FcdramError> {
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(512);
    let mut engine = BulkEngine::new(Fcdram::new(cfg), BankId(0), SubarrayId(0))?;
    // Vote 5-fold: a database scan wants accuracy over raw latency.
    engine.set_repetition(5);
    let users = engine.capacity_bits();
    println!("bitmap index over {users} users, evaluated in-DRAM\n");

    // Build the four bitmap columns.
    let premium: Vec<bool> = (0..users).map(|i| bit(0xA, i)).collect();
    let active: Vec<bool> = (0..users).map(|i| bit(0xB, i)).collect();
    let eu: Vec<bool> = (0..users).map(|i| bit(0xC, i)).collect();
    let opted: Vec<bool> = (0..users).map(|i| bit(0xD, i)).collect();

    let v_premium = engine.alloc()?;
    let v_active = engine.alloc()?;
    let v_eu = engine.alloc()?;
    let v_opted = engine.alloc()?;
    let v_region = engine.alloc()?;
    let v_result = engine.alloc()?;
    engine.write(&v_premium, &premium)?;
    engine.write(&v_active, &active)?;
    engine.write(&v_eu, &eu)?;
    engine.write(&v_opted, &opted)?;

    // (eu OR opted_in) — one in-DRAM OR.
    let or_stats = engine.or(&[&v_eu, &v_opted], &v_region)?;
    // premium AND active AND region — one in-DRAM 3-input AND
    // (identity-padded to the 4:4 activation pattern).
    let and_stats = engine.and(&[&v_premium, &v_active, &v_region], &v_result)?;

    let result = engine.read(&v_result)?;
    let in_dram_count = result.iter().filter(|b| **b).count();

    // Host ground truth.
    let truth: Vec<bool> = (0..users)
        .map(|i| premium[i] && active[i] && (eu[i] || opted[i]))
        .collect();
    let truth_count = truth.iter().filter(|b| **b).count();
    let correct = result.iter().zip(&truth).filter(|(a, b)| a == b).count();

    println!("OR stage   : accuracy {:>6.2}%", or_stats.accuracy * 100.0);
    println!("AND stage  : accuracy {:>6.2}%", and_stats.accuracy * 100.0);
    println!();
    println!("in-DRAM count : {in_dram_count}");
    println!("exact count   : {truth_count}");
    println!(
        "bit accuracy  : {:.2}% ({correct}/{users})",
        correct as f64 / users as f64 * 100.0
    );
    println!(
        "count error   : {:+.2}%",
        (in_dram_count as f64 - truth_count as f64) / truth_count.max(1) as f64 * 100.0
    );
    println!("\nNote the asymmetry: rows matching *all* predicates are exactly the");
    println!("paper's worst-case AND input pattern (Fig. 16), so positives flip to");
    println!("negatives far more often than the reverse. A deployment would use");
    println!("this as a host-verified pre-filter, or invert the query into its");
    println!("NOR form so the hard pattern becomes the rare one.");
    Ok(())
}
