//! Synthesizing arbitrary logic: compile boolean expressions to
//! FCDRAM programs with the reliability-aware `fcsynth` mapper.
//!
//! Compiles a 4-bit parity expression and a 5-input majority vote
//! (given as a raw truth table), reports the chosen mappings against
//! the naive 2-input-tree baseline, executes both on the exact
//! host-substrate SimdVm, and emits the parity circuit as bender
//! assembly.
//!
//! Run with: `cargo run --release --example synth_logic`

use fcdram::PackedBits;
use fcsynth::{compile_expr, BenderEmitter, CostModel, Expr, Mapper};
use simdram::{HostSubstrate, SimdVm};

fn report(title: &str, compiled: &fcsynth::Compiled, naive: &fcsynth::Mapping) {
    let m = &compiled.mapping;
    println!("== {title} ==");
    println!(
        "inputs: {}  |  optimized DAG: {} logic node(s)",
        compiled.circuit.inputs().join(", "),
        compiled.circuit.live_ops()
    );
    for (op, width, count) in m.gate_summary() {
        println!("  {count:>3} x {op}{width}");
    }
    println!(
        "native ops {:>3} (naive {:>3})  |  expected success {:.2}% (naive {:.2}%)",
        m.native_ops,
        naive.native_ops,
        m.expected_success * 100.0,
        naive.expected_success * 100.0
    );
    println!(
        "latency {:.0} ns  |  energy {:.0} pJ\n",
        m.latency_ns, m.energy_pj
    );
}

fn verify(compiled: &fcsynth::Compiled, lanes: usize) -> Result<(), fcexec::ExecError> {
    let n = compiled.circuit.inputs().len();
    let operands: Vec<PackedBits> = (0..n)
        .map(|i| {
            let mut p = PackedBits::zeros(lanes);
            for l in 0..lanes {
                p.set(
                    l,
                    dram_core::math::mix3(0xD1CE, i as u64, l as u64) & 1 == 1,
                );
            }
            p
        })
        .collect();
    let expect = compiled.circuit.eval_packed(&operands);
    let mut vm = SimdVm::new(HostSubstrate::new(lanes, 512))?;
    let got = fcexec::execute_packed(&mut vm, &compiled.mapping.program, &operands)?;
    assert_eq!(got, expect, "SimdVm diverged from the reference evaluator");
    println!(
        "verified on SimdVm<HostSubstrate>: {lanes} lanes bit-exact, {} in-DRAM ops\n",
        vm.trace().in_dram_ops()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Measured costs would come from `characterize fleet
    // --export-costs`; the built-in defaults carry the paper's
    // Table-1 population means.
    let cost = CostModel::table1_defaults();

    // 1. Four-bit parity, written as an expression. XOR is not native
    //    to the substrate, so each ^ expands to the 3-gate circuit
    //    AND(OR(a,b), NAND(a,b)).
    let parity = compile_expr(Expr::parse("b0 ^ b1 ^ b2 ^ b3")?, &cost, 16);
    let parity_naive = Mapper::naive(&cost).map(&parity.circuit);
    report("4-bit parity", &parity, &parity_naive);
    verify(&parity, 192)?;

    // 2. Five-input majority vote, given as a raw truth table
    //    (LSB-first: entry m is the output when input j = bit j of m).
    let bits: Vec<bool> = (0..32u32).map(|m| m.count_ones() >= 3).collect();
    let majority = compile_expr(Expr::from_truth_table(5, &bits)?, &cost, 16);
    let majority_naive = Mapper::naive(&cost).map(&majority.circuit);
    report(
        "5-input majority vote (from truth table)",
        &majority,
        &majority_naive,
    );
    verify(&majority, 192)?;

    // 3. The parity circuit as a bender command program, ready for
    //    command-level replay.
    let asm = BenderEmitter::default().emit_asm(&parity.mapping.program)?;
    println!(
        "bender assembly for the parity circuit: {} lines, e.g.:",
        asm.lines().count()
    );
    for line in asm.lines().take(6) {
        println!("  {line}");
    }
    println!("  ...");
    Ok(())
}
