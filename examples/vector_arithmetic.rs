//! SIMD arithmetic in (simulated) DRAM — functional completeness made
//! runnable.
//!
//! The FCDRAM paper proves COTS DRAM chips natively execute a
//! functionally-complete gate set. This example takes that literally:
//! it synthesizes 8-bit adders, comparators and population counts from
//! NOT/AND/OR/NAND/NOR, runs them bit-serially across every lane of a
//! simulated SK Hynix module, and reports
//!
//! 1. measured vs. analytically-predicted lane accuracy,
//! 2. what repetition voting buys back (the reliability knob), and
//! 3. the DDR4 command/latency/energy bill vs. a processor-centric
//!    baseline that must stream the operands over the channel.
//!
//! Run with: `cargo run --release -p simdram --example vector_arithmetic`

use simdram::{reliability, CostModel, CostSummary, DramSubstrate, HostSubstrate, SimdVm};

fn lane_accuracy(got: &[u64], expect: &[u64]) -> f64 {
    let same = got.iter().zip(expect).filter(|(a, b)| a == b).count();
    same as f64 / expect.len().max(1) as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // Build the in-DRAM VM on a Table-1 module.
    // ---------------------------------------------------------------
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(64);
    let label = cfg.label();
    let speed = cfg.speed;
    let engine = fcdram::BulkEngine::new(
        fcdram::Fcdram::new(cfg),
        dram_core::BankId(0),
        dram_core::SubarrayId(0),
    )?;
    let mut vm = SimdVm::new(DramSubstrate::new(engine))?;
    let lanes = vm.lanes();
    println!("module: {label}");
    println!("lanes : {lanes} (shared column half of one row)\n");

    // Input data: one 8-bit integer per lane.
    let av: Vec<u64> = (0..lanes as u64).map(|i| (i * 37 + 5) & 0xFF).collect();
    let bv: Vec<u64> = (0..lanes as u64).map(|i| (i * 91 + 130) & 0xFF).collect();
    let a = vm.alloc_uint(8)?;
    let b = vm.alloc_uint(8)?;
    vm.write_u64(&a, &av)?;
    vm.write_u64(&b, &bv)?;

    // ---------------------------------------------------------------
    // 1. An unprotected 8-bit SIMD add.
    // ---------------------------------------------------------------
    let expect: Vec<u64> = av.iter().zip(&bv).map(|(x, y)| (x + y) & 0xFF).collect();
    vm.clear_trace();
    let sum = vm.add(&a, &b)?;
    let predicted = reliability::expected_lane_accuracy(vm.trace());
    let measured = lane_accuracy(&vm.read_u64(&sum)?, &expect);
    vm.free_uint(sum);

    println!("8-bit add, no protection (72 native gates/lane):");
    println!("  gate histogram: {:?}", vm.trace().histogram());
    println!(
        "  predicted lane accuracy: {predicted:6.2}%",
        predicted = predicted * 100.0
    );
    println!(
        "  measured  lane accuracy: {measured:6.2}%\n",
        measured = measured * 100.0
    );

    // Cost vs. the processor-centric baseline (16 operand rows in, 9
    // result rows out over the channel).
    let model = CostModel::new(speed, lanes);
    let s = CostSummary::new(&model, vm.trace(), lanes, 16, 9);
    println!(
        "  in-DRAM : {:9.0} ns, {:10.0} pJ, {} DDR4 commands, 0 channel bytes",
        s.in_dram.latency_ns, s.in_dram.energy_pj, s.in_dram.commands
    );
    println!(
        "  host    : {:9.0} ns, {:10.0} pJ, {} channel bytes",
        s.host.latency_ns, s.host.energy_pj, s.host.channel_bytes
    );
    println!(
        "  energy ratio (host/in-DRAM): {:.2}x at {lanes} lanes",
        s.energy_ratio()
    );
    let wide = CostModel::new(speed, 65_536);
    let sw = CostSummary::new(&wide, vm.trace(), 65_536, 16, 9);
    println!(
        "  energy ratio at a full 8 KiB row (65,536 lanes): {:.2}x\n",
        sw.energy_ratio()
    );

    // ---------------------------------------------------------------
    // 2. Repetition voting: the reliability knob.
    // ---------------------------------------------------------------
    println!("repetition voting on the same add:");
    println!("  k | predicted | measured | energy multiplier");
    for k in [1usize, 3, 5, 9] {
        vm.substrate_mut().set_repetition(k);
        vm.clear_trace();
        let s = vm.add(&a, &b)?;
        let predicted = reliability::expected_lane_accuracy(vm.trace());
        let measured = lane_accuracy(&vm.read_u64(&s)?, &expect);
        vm.free_uint(s);
        println!(
            "  {k} |   {p:6.2}%  |  {m:6.2}%  |  {e:.1}x",
            p = predicted * 100.0,
            m = measured * 100.0,
            e = k as f64
        );
    }
    vm.substrate_mut().set_repetition(1);

    // How much voting would a 99%-accurate adder need, per the
    // analytic model, at the mean per-gate success we just saw?
    let mean_gate: f64 = {
        let probs: Vec<f64> = vm
            .trace()
            .entries()
            .iter()
            .filter(|e| e.op.is_in_dram())
            .map(|e| e.predicted_success)
            .collect();
        if probs.is_empty() {
            0.95
        } else {
            probs.iter().sum::<f64>() / probs.len() as f64
        }
    };
    match reliability::repetitions_for_target(mean_gate, 72, 0.99) {
        Some(k) => println!("\n  → 99% lane accuracy needs k = {k} at p̄ = {mean_gate:.3}"),
        None => println!("\n  → 99% unreachable by voting at p̄ = {mean_gate:.3}"),
    }

    // ---------------------------------------------------------------
    // 3. Exact golden run on the host substrate (same code path).
    // ---------------------------------------------------------------
    let mut gold = SimdVm::new(HostSubstrate::new(lanes, 4096))?;
    let ga = gold.alloc_uint(8)?;
    let gb = gold.alloc_uint(8)?;
    gold.write_u64(&ga, &av)?;
    gold.write_u64(&gb, &bv)?;
    let gsum = gold.add(&ga, &gb)?;
    assert_eq!(gold.read_u64(&gsum)?, expect, "golden model must be exact");
    println!("\nhost golden model: exact (substrate-independent synthesis verified)");

    // ---------------------------------------------------------------
    // 4. Popcount + comparison: a tiny analytics kernel.
    //    "How many set bits does each lane's feature mask have, and
    //     which lanes exceed the threshold?"
    // ---------------------------------------------------------------
    let masks: Vec<u64> = (0..lanes as u64).map(|i| (i * 73 + 29) & 0xFF).collect();
    let m = gold.alloc_uint(8)?;
    gold.write_u64(&m, &masks)?;
    let pc = gold.popcount(&m)?;
    let thr = gold.const_uint(pc.width(), 4)?;
    let over = gold.ge(&pc, &thr)?;
    let flags = gold.read_mask(over)?;
    let counts = gold.read_u64(&pc)?;
    let hits = flags.iter().filter(|f| **f).count();
    println!("\npopcount kernel (host golden): {hits}/{lanes} lanes ≥ 4 set bits");
    for i in 0..lanes.min(4) {
        assert_eq!(counts[i], u64::from(masks[i].count_ones()));
        assert_eq!(flags[i], masks[i].count_ones() >= 4);
    }
    println!("  spot-checked against u64::count_ones ✓");

    Ok(())
}
