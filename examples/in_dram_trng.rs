//! In-DRAM true random number generation (QUAC-TRNG lineage, §8.1).
//!
//! Simultaneously activating rows initialized to a *tie* (half 1s,
//! half 0s on each bitline) leaves the sense amplifier with no
//! differential to amplify: the outcome is decided by analog noise.
//! QUAC-TRNG (Olgun et al., ISCA'21) turns this into a true random
//! number generator with quadruple row activation; the same mechanism
//! falls out of this library's in-subarray multi-row activation.
//!
//! Run with: `cargo run --release --example in_dram_trng`

use dram_core::{BankId, Bit, ChipId, SubarrayId};
use fcdram::mapping::discover_in_subarray;
use fcdram::{Fcdram, FcdramError};

fn main() -> Result<(), FcdramError> {
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(256);
    println!("TRNG on {} via tied in-subarray activation\n", cfg.label());
    let mut fc = Fcdram::new(cfg);
    let bank = BankId(0);

    // Find 4-row in-subarray activation sets (QUAC's configuration).
    let sets = discover_in_subarray(fc.bender_mut(), ChipId(0), bank, SubarrayId(3), 16_384, 8)?;
    let entries = sets.get(&4).cloned().unwrap_or_default();
    assert!(!entries.is_empty(), "no 4-row sets found");
    println!("{} four-row activation sets discovered", entries.len());

    let cols = fc.cols();
    let ones = vec![Bit::One; cols];
    let zeros = vec![Bit::Zero; cols];

    // Harvest raw bits: each activation with a 2–2 tie yields one
    // noise-resolved bit per column.
    let mut raw_bits: Vec<bool> = Vec::new();
    for round in 0..24usize {
        let entry = &entries[round % entries.len()];
        let report = fc.execute_maj(
            bank,
            entry,
            &[ones.clone(), ones.clone(), zeros.clone(), zeros.clone()],
        )?;
        raw_bits.extend(report.result.iter().map(|b| b.as_bool()));
    }
    let n = raw_bits.len();
    let ones_frac = raw_bits.iter().filter(|b| **b).count() as f64 / n as f64;
    println!("\nraw bits      : {n}");
    println!("raw bias      : {:.2}% ones", ones_frac * 100.0);

    // Serial correlation of the raw stream.
    let mut agree = 0usize;
    for w in raw_bits.windows(2) {
        if w[0] == w[1] {
            agree += 1;
        }
    }
    println!(
        "raw serial    : {:.2}% adjacent agreement (50% ideal)",
        agree as f64 / (n - 1) as f64 * 100.0
    );

    // Von Neumann extraction removes residual bias (as DRAM TRNG
    // papers do): 01 → 0, 10 → 1, 00/11 → discard.
    let mut extracted = Vec::new();
    for pair in raw_bits.chunks(2) {
        if pair.len() == 2 && pair[0] != pair[1] {
            extracted.push(pair[0]);
        }
    }
    let ex_ones = extracted.iter().filter(|b| **b).count() as f64;
    println!("\nafter von Neumann extraction:");
    println!(
        "bits          : {} ({:.0}% yield)",
        extracted.len(),
        extracted.len() as f64 / n as f64 * 100.0
    );
    if !extracted.is_empty() {
        println!(
            "bias          : {:.2}% ones",
            ex_ones / extracted.len() as f64 * 100.0
        );
    }

    // Pack the first bytes for display.
    let bytes: Vec<u8> = extracted
        .chunks(8)
        .filter(|c| c.len() == 8)
        .take(16)
        .map(|c| {
            c.iter()
                .enumerate()
                .fold(0u8, |acc, (i, b)| acc | (u8::from(*b) << i))
        })
        .collect();
    print!("sample bytes  : ");
    for b in &bytes {
        print!("{b:02x} ");
    }
    println!();
    println!("\n(each 2–2 tie leaves ~0 differential on the bitline: the sense");
    println!(" amplifier resolves from noise — the paper's Fig. 16 worst case,");
    println!(" repurposed as an entropy source)");
    Ok(())
}
