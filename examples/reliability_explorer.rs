//! Reliability explorer: how operating conditions shape in-DRAM
//! computation quality — the questions a deployer would ask before
//! adopting processing-using-DRAM.
//!
//! Sweeps (a) input count, (b) temperature, and (c) repetition voting,
//! and prints the resulting success rates for one chip, mirroring the
//! paper's characterization axes at example scale.
//!
//! Run with: `cargo run --release --example reliability_explorer`

use dram_core::{BankId, LogicOp, SubarrayId, Temperature};
use fcdram::{BulkEngine, Fcdram, FcdramError};

fn rand_bits(seed: u64, n: usize) -> Vec<bool> {
    (0..n)
        .map(|i| dram_core::math::hash_to_unit(dram_core::math::mix2(seed, i as u64)) < 0.5)
        .collect()
}

fn main() -> Result<(), FcdramError> {
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(256);
    println!("chip: {}\n", cfg.label());
    let mut engine = BulkEngine::new(Fcdram::new(cfg), BankId(0), SubarrayId(0))?;
    let bits = engine.capacity_bits();

    // Operands for up to 8-input operations.
    let mut handles = Vec::new();
    for i in 0..8u64 {
        let h = engine.alloc()?;
        engine.write(&h, &rand_bits(i, bits))?;
        handles.push(h);
    }
    let out = engine.alloc()?;

    // (a) Input count: the paper's Fig. 15 axis.
    println!("-- success vs input count (single execution) --");
    for n in [2usize, 4, 8] {
        let ins: Vec<&fcdram::BitVecHandle> = handles.iter().take(n).collect();
        let and = engine.logic(LogicOp::And, &ins, &out)?;
        let or = engine.logic(LogicOp::Or, &ins, &out)?;
        println!(
            "{n:>2} inputs : AND {:>6.2}%   OR {:>6.2}%",
            and.accuracy * 100.0,
            or.accuracy * 100.0
        );
    }

    // (b) Temperature: the paper's Fig. 19 axis.
    println!("\n-- AND-4 predicted success vs temperature --");
    let ins: Vec<&fcdram::BitVecHandle> = handles.iter().take(4).collect();
    for t in [50.0, 70.0, 95.0] {
        engine.set_temperature(Temperature::celsius(t));
        let stats = engine.logic(LogicOp::And, &ins, &out)?;
        println!(
            "{t:>5.0}°C : AND-4 {:>6.2}% (model {:>6.2}%)",
            stats.accuracy * 100.0,
            stats.predicted_success * 100.0
        );
    }
    engine.set_temperature(Temperature::BASELINE);

    // (c) Repetition voting: correctness for bandwidth.
    println!("\n-- AND-2 accuracy vs repetition voting --");
    let ins: Vec<&fcdram::BitVecHandle> = handles.iter().take(2).collect();
    for k in [1usize, 3, 9] {
        engine.set_repetition(k);
        let stats = engine.logic(LogicOp::And, &ins, &out)?;
        println!(
            "k = {k}   : {:>6.2}% ({} executions)",
            stats.accuracy * 100.0,
            stats.executions
        );
    }
    println!("\n(voting pushes past the single-shot rate but cannot exceed the");
    println!(" per-pattern ceilings of Fig. 16 — worst-case inputs stay hard)");
    Ok(())
}
