//! Umbrella crate for the FCDRAM reproduction workspace.
//!
//! The real functionality lives in the member crates; this package
//! exists to host the workspace-level integration tests (`tests/`) and
//! examples (`examples/`). See the root `README.md` for the crate
//! graph.

pub use characterize;
pub use dram_core;
pub use fcdram;
pub use fcexec;
pub use simdram;
