//! Bench-regression gate: fails when a tracked benchmark regresses
//! more than the allowed fraction against the committed baseline.
//!
//! This compares the *committed* `BENCH_engine.json` artifact (the
//! workflow regenerates nothing): it catches a regressed artifact
//! being committed, and keeps the baseline honest whenever the bench
//! is re-run — regenerate the artifact alongside perf-relevant
//! changes (`cargo bench -p fcdram-bench --bench ablation_engine`) so
//! the gate sees fresh numbers.
//!
//! Compiled standalone by `ci.sh` (`rustc -O tools/bench_check.rs`);
//! deliberately dependency-free, with a minimal scanner for the flat
//! `[{"id": ..., "mean_ns": ...}, ...]` shape `BENCH_engine.json` and
//! `BENCH_fleet.json` use.
//!
//! ```text
//! bench_check [--current BENCH_engine.json]
//!             [--baseline tools/bench_baseline.json]
//!             [--id logic_model_columnar_cached/1024cols]
//!             [--check FILE:ID] [--check-exact FILE:ID]
//!             [--check-ratio FILE:NUM,DEN,LIMIT]
//!             [--max-regress 0.20]
//! ```
//!
//! `--id` checks an id inside the `--current` artifact; `--check`
//! pairs an id with its own artifact file, so one invocation gates
//! ids across several summaries (`BENCH_engine.json`,
//! `BENCH_synth.json`, `BENCH_sched.json`, ...). `--check-ratio`
//! gates the quotient of two wall-clock ids measured in the *same*
//! artifact (`NUM ÷ DEN ≤ LIMIT`) — no baseline involved, so the
//! gate is immune to the CI container's absolute speed and pins a
//! relative property instead (how far the simulated device backends
//! may drift from the host golden model). `--check-exact` is
//! the variant for *deterministic count* entries: any drift from the
//! baseline — up or down — fails, since shrinkage of a scheduled-op
//! or mapped-op count is a pipeline-shape change too, not an
//! improvement to wave through. With no flag, the default set covers
//! the engine hot path (tolerance), the three deterministic
//! `synth_mapped_ops/*` counts from `ablation_synth` (exact), the
//! deterministic `sched_jobs/mix` + `sched_native_ops/mix` +
//! `sched_fused_jobs/mix` batch-shape counts from `ablation_sched`
//! (exact), and the
//! execution-backend parity counts from `ablation_exec` (exact):
//! `exec_native_ops/vm` and `exec_native_ops/bender` must both equal
//! the committed baseline — so the VM and command-schedule backends
//! drifting apart in either direction fails the gate — plus the
//! cycle-accurate `exec_schedule_ns/mix` latency-model pin, the
//! prepared-plan shape pins `exec_prepared_templates/mix`,
//! `exec_arena_slots/mix`, and `exec_fused_visits/mix`, the fused
//! two-phase overhead ratios
//! `exec_vm_dram/mix ÷ exec_host/mix ≤ 2.5` and
//! `exec_bender/mix ÷ exec_host/mix ≤ 2.0`, the
//! five deterministic `faults_*/demo` degradation-ledger counts from
//! `ablation_faults` (exact): mitigations, dropouts, re-placed jobs,
//! diversions, and disturbance activations of the demo fault plan,
//! the seven deterministic `daemon_*` admission-ledger counts
//! from `ablation_daemon` (exact): per-tier admitted jobs, bronze
//! shed and narrowed counts, total rejections, and the micro-batch
//! count of the demo serving session, and the three deterministic
//! `obs_*/demo` artifact-shape counts from `ablation_obs` (exact):
//! span events, instant events, and metrics-exposition lines of the
//! traced demo session (determinism invariant #4 —
//! `docs/OBSERVABILITY.md`).
//!
//! Every requested check is evaluated — missing ids, unreadable
//! artifacts, and regressions are all collected and listed together
//! in the final summary instead of stopping at the first problem.
//!
//! Exit status: 0 when every checked id is within tolerance, 1 when
//! any check failed, 2 on usage errors or an unreadable baseline.

use std::process::ExitCode;

/// One `"id" → mean_ns` measurement extracted from a summary file.
#[derive(Debug)]
struct Entry {
    id: String,
    mean_ns: f64,
}

/// Extracts `(id, mean_ns)` pairs from the flat JSON array the bench
/// summaries use. Tolerant of pretty-printing and key order within an
/// object; not a general JSON parser.
fn parse_entries(src: &str) -> Vec<Entry> {
    let mut out = Vec::new();
    // Objects are `{ ... }` blocks; split on '}' and scan each block
    // for the two keys.
    for block in src.split('}') {
        let id = extract_string(block, "\"id\"");
        let mean = extract_number(block, "\"mean_ns\"");
        if let (Some(id), Some(mean_ns)) = (id, mean) {
            out.push(Entry { id, mean_ns });
        }
    }
    out
}

fn extract_string(block: &str, key: &str) -> Option<String> {
    let at = block.find(key)? + key.len();
    let rest = &block[at..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_number(block: &str, key: &str) -> Option<f64> {
    let at = block.find(key)? + key.len();
    let rest = &block[at..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".eE+-".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let entries = parse_entries(&src);
    if entries.is_empty() {
        return Err(format!("{path}: no benchmark entries found"));
    }
    Ok(entries)
}

fn mean_of(entries: &[Entry], id: &str) -> Option<f64> {
    entries.iter().find(|e| e.id == id).map(|e| e.mean_ns)
}

fn main() -> ExitCode {
    let mut current = "BENCH_engine.json".to_string();
    let mut baseline = "tools/bench_baseline.json".to_string();
    // (artifact file, id, exact) triples to gate. `exact` entries are
    // deterministic counts: *any* drift from the baseline — up or
    // down — is a failure (shrinkage means the pipeline's shape
    // changed and the baseline must be bumped deliberately).
    let mut checks: Vec<(Option<String>, String, bool)> = Vec::new();
    // (artifact file, numerator id, denominator id, limit) — both ids
    // are read from the same current artifact; the baseline is not
    // consulted.
    let mut ratios: Vec<(String, String, String, f64)> = Vec::new();
    let mut max_regress = 0.20f64;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--current" => current = val("--current")?,
                "--baseline" => baseline = val("--baseline")?,
                "--id" => checks.push((None, val("--id")?, false)),
                "--check" | "--check-exact" => {
                    let exact = a == "--check-exact";
                    let pair = val(&a)?;
                    let (file, id) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("{a} wants FILE:ID, got '{pair}'"))?;
                    checks.push((Some(file.to_string()), id.to_string(), exact));
                }
                "--check-ratio" => {
                    let spec = val(&a)?;
                    let bad = || format!("--check-ratio wants FILE:NUM,DEN,LIMIT, got '{spec}'");
                    let (file, rest) = spec.split_once(':').ok_or_else(bad)?;
                    let mut parts = rest.split(',');
                    let (num, den, limit) = (
                        parts.next().ok_or_else(bad)?,
                        parts.next().ok_or_else(bad)?,
                        parts.next().ok_or_else(bad)?,
                    );
                    if parts.next().is_some() {
                        return Err(bad());
                    }
                    let limit: f64 = limit.parse().map_err(|e| format!("bad ratio limit: {e}"))?;
                    ratios.push((file.to_string(), num.to_string(), den.to_string(), limit));
                }
                "--max-regress" => {
                    max_regress = val("--max-regress")?
                        .parse()
                        .map_err(|e| format!("bad --max-regress: {e}"))?
                }
                other => return Err(format!("unknown option {other}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    }
    if checks.is_empty() && ratios.is_empty() {
        // The model-evaluation hot path the columnar rewrite bought
        // (wall-clock: tolerance-gated), plus the deterministic
        // mapped-op counts of the synthesis pipeline and the
        // deterministic scheduled-batch shape (exact-gated: an
        // optimizer, planner, or admission regression changes these
        // in either direction).
        checks.push((None, "logic_model_columnar_cached/1024cols".to_string(), false));
        for size in ["small", "medium", "large"] {
            checks.push((
                Some("BENCH_synth.json".to_string()),
                format!("synth_mapped_ops/{size}"),
                true,
            ));
        }
        for id in [
            "sched_jobs/mix",
            "sched_native_ops/mix",
            "sched_fused_jobs/mix",
        ] {
            checks.push((Some("BENCH_sched.json".to_string()), id.to_string(), true));
        }
        // Backend parity: both counts are exact-gated against the same
        // baseline value, so the vm and bender backends cannot drift
        // apart in either direction without failing the gate.
        for id in [
            "exec_native_ops/vm",
            "exec_native_ops/bender",
            "exec_schedule_ns/mix",
            "exec_prepared_templates/mix",
            "exec_arena_slots/mix",
            "exec_fused_visits/mix",
        ] {
            checks.push((Some("BENCH_exec.json".to_string()), id.to_string(), true));
        }
        // Two-phase execution overhead: the simulated device backends
        // may cost at most this much over the host golden model
        // *measured in the same bench run*, so the gate holds on any
        // machine speed. Before the prepared-program API the
        // vm/bender mixes sat at ~6x the host path; prepared
        // execution brought them to ~2.9x/~2.3x, and fused bulk
        // execution (same-subarray visit batching with deferred
        // result writes) pins the recovered headroom at 2.5x/2.0x.
        for (num, limit) in [("exec_vm_dram/mix", 2.5), ("exec_bender/mix", 2.0)] {
            ratios.push((
                "BENCH_exec.json".to_string(),
                num.to_string(),
                "exec_host/mix".to_string(),
                limit,
            ));
        }
        // Degradation-ledger counts of the demo fault plan from
        // `ablation_faults`: the planner derives them from (fleet,
        // batch, policy) alone, so any drift — one mitigation or
        // dropout more *or* less — is a fault-model shape change.
        for id in [
            "faults_mitigations/demo",
            "faults_dropouts/demo",
            "faults_replaced/demo",
            "faults_diverted/demo",
            "faults_disturbance/demo",
        ] {
            checks.push((Some("BENCH_faults.json".to_string()), id.to_string(), true));
        }
        // Admission-ledger counts of the demo serving session from
        // `ablation_daemon`: the daemon report is a pure function of
        // (session log, fleet, cost model), so any drift — one job
        // admitted, shed, rejected, or narrowed more *or* less — is an
        // admission- or placement-shape change.
        for id in [
            "daemon_admitted/gold",
            "daemon_admitted/silver",
            "daemon_admitted/bronze",
            "daemon_shed/bronze",
            "daemon_narrowed/bronze",
            "daemon_rejected/total",
            "daemon_batches/total",
        ] {
            checks.push((Some("BENCH_daemon.json".to_string()), id.to_string(), true));
        }
        // Artifact-shape counts of the traced demo session from
        // `ablation_obs`: determinism invariant #4 makes the trace
        // and metrics pure functions of (session log, fleet, cost
        // model), so one span, instant, or exposition line more *or*
        // less is an instrumentation-shape change.
        for id in [
            "obs_span_events/demo",
            "obs_instant_events/demo",
            "obs_metric_lines/demo",
        ] {
            checks.push((Some("BENCH_obs.json".to_string()), id.to_string(), true));
        }
    }

    let base = match load(&baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };
    // Artifact files, loaded once each in check order. A file that
    // fails to load marks every check against it as one failure each
    // (carrying the load error), so the final count equals the number
    // of failed checks — every requested id still gets evaluated.
    let mut artifacts: Vec<(String, Result<Vec<Entry>, String>)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for (file, id, exact) in &checks {
        let file = file.as_deref().unwrap_or(&current).to_string();
        if !artifacts.iter().any(|(f, _)| *f == file) {
            let loaded = load(&file);
            if let Err(e) = &loaded {
                eprintln!("bench_check: {e}");
            }
            artifacts.push((file.clone(), loaded));
        }
        let cur = match &artifacts
            .iter()
            .find(|(f, _)| *f == file)
            .expect("loaded above")
            .1
        {
            Ok(entries) => entries,
            Err(e) => {
                failures.push(format!("{id}: {e}"));
                continue;
            }
        };
        let (Some(now), Some(then)) = (mean_of(cur, id), mean_of(&base, id)) else {
            eprintln!("bench_check: id '{id}' missing from {file} or {baseline}");
            failures.push(format!("{id}: missing from {file} or {baseline}"));
            continue;
        };
        if *exact {
            let verdict = if (now - then).abs() > 1e-9 {
                failures.push(format!(
                    "{id}: {now} != baseline {then} (deterministic entry; any drift \
                     means the pipeline shape changed — bump the baseline deliberately)"
                ));
                "CHANGED"
            } else {
                "ok"
            };
            println!("bench_check: {id}: {now} vs baseline {then} (exact) {verdict}");
            continue;
        }
        let ratio = now / then;
        let verdict = if ratio > 1.0 + max_regress {
            failures.push(format!(
                "{id}: {now:.1} vs baseline {then:.1} ({ratio:.3}x > {:.3}x limit)",
                1.0 + max_regress
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_check: {id}: {now:.1} ns vs baseline {then:.1} ns ({ratio:.3}x, limit {:.3}x) {verdict}",
            1.0 + max_regress
        );
    }
    for (file, num, den, limit) in &ratios {
        if !artifacts.iter().any(|(f, _)| f == file) {
            let loaded = load(file);
            if let Err(e) = &loaded {
                eprintln!("bench_check: {e}");
            }
            artifacts.push((file.clone(), loaded));
        }
        let cur = match &artifacts
            .iter()
            .find(|(f, _)| f == file)
            .expect("loaded above")
            .1
        {
            Ok(entries) => entries,
            Err(e) => {
                failures.push(format!("{num}/{den}: {e}"));
                continue;
            }
        };
        let (Some(n), Some(d)) = (mean_of(cur, num), mean_of(cur, den)) else {
            eprintln!("bench_check: ratio ids '{num}' or '{den}' missing from {file}");
            failures.push(format!("{num}÷{den}: id missing from {file}"));
            continue;
        };
        let ratio = n / d;
        let verdict = if !(ratio <= *limit) {
            failures.push(format!(
                "{num} ÷ {den}: {n:.1} / {d:.1} = {ratio:.3}x > {limit:.3}x limit"
            ));
            "EXCEEDED"
        } else {
            "ok"
        };
        println!(
            "bench_check: {num} ÷ {den}: {n:.1} / {d:.1} = {ratio:.3}x (limit {limit:.3}x) {verdict}"
        );
    }
    let n_checks = checks.len() + ratios.len();
    if !failures.is_empty() {
        eprintln!(
            "bench_check: FAILED — {} problem(s) across {} check(s):",
            failures.len(),
            n_checks
        );
        for f in &failures {
            eprintln!("bench_check:   - {f}");
        }
        return ExitCode::FAILURE;
    }
    println!("bench_check: all {n_checks} check(s) within tolerance");
    ExitCode::SUCCESS
}
