//! Bench-regression gate: fails when a tracked benchmark regresses
//! more than the allowed fraction against the committed baseline.
//!
//! This compares the *committed* `BENCH_engine.json` artifact (the
//! workflow regenerates nothing): it catches a regressed artifact
//! being committed, and keeps the baseline honest whenever the bench
//! is re-run — regenerate the artifact alongside perf-relevant
//! changes (`cargo bench -p fcdram-bench --bench ablation_engine`) so
//! the gate sees fresh numbers.
//!
//! Compiled standalone by `ci.sh` (`rustc -O tools/bench_check.rs`);
//! deliberately dependency-free, with a minimal scanner for the flat
//! `[{"id": ..., "mean_ns": ...}, ...]` shape `BENCH_engine.json` and
//! `BENCH_fleet.json` use.
//!
//! ```text
//! bench_check [--current BENCH_engine.json]
//!             [--baseline tools/bench_baseline.json]
//!             [--id logic_model_columnar_cached/1024cols]
//!             [--check FILE:ID]
//!             [--max-regress 0.20]
//! ```
//!
//! `--id` checks an id inside the `--current` artifact; `--check`
//! pairs an id with its own artifact file, so one invocation gates
//! ids across several summaries (`BENCH_engine.json`,
//! `BENCH_synth.json`, ...). With neither flag, the default set
//! covers the engine hot path plus the three deterministic
//! `synth_mapped_ops/*` counts from the `ablation_synth` bench.
//!
//! Exit status: 0 when every checked id is within tolerance, 1 on a
//! regression, 2 on usage/parse errors.

use std::process::ExitCode;

/// One `"id" → mean_ns` measurement extracted from a summary file.
#[derive(Debug)]
struct Entry {
    id: String,
    mean_ns: f64,
}

/// Extracts `(id, mean_ns)` pairs from the flat JSON array the bench
/// summaries use. Tolerant of pretty-printing and key order within an
/// object; not a general JSON parser.
fn parse_entries(src: &str) -> Vec<Entry> {
    let mut out = Vec::new();
    // Objects are `{ ... }` blocks; split on '}' and scan each block
    // for the two keys.
    for block in src.split('}') {
        let id = extract_string(block, "\"id\"");
        let mean = extract_number(block, "\"mean_ns\"");
        if let (Some(id), Some(mean_ns)) = (id, mean) {
            out.push(Entry { id, mean_ns });
        }
    }
    out
}

fn extract_string(block: &str, key: &str) -> Option<String> {
    let at = block.find(key)? + key.len();
    let rest = &block[at..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_number(block: &str, key: &str) -> Option<f64> {
    let at = block.find(key)? + key.len();
    let rest = &block[at..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".eE+-".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let entries = parse_entries(&src);
    if entries.is_empty() {
        return Err(format!("{path}: no benchmark entries found"));
    }
    Ok(entries)
}

fn mean_of(entries: &[Entry], id: &str) -> Option<f64> {
    entries.iter().find(|e| e.id == id).map(|e| e.mean_ns)
}

fn main() -> ExitCode {
    let mut current = "BENCH_engine.json".to_string();
    let mut baseline = "tools/bench_baseline.json".to_string();
    // (artifact file, id) pairs to gate.
    let mut checks: Vec<(Option<String>, String)> = Vec::new();
    let mut max_regress = 0.20f64;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--current" => current = val("--current")?,
                "--baseline" => baseline = val("--baseline")?,
                "--id" => checks.push((None, val("--id")?)),
                "--check" => {
                    let pair = val("--check")?;
                    let (file, id) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("--check wants FILE:ID, got '{pair}'"))?;
                    checks.push((Some(file.to_string()), id.to_string()));
                }
                "--max-regress" => {
                    max_regress = val("--max-regress")?
                        .parse()
                        .map_err(|e| format!("bad --max-regress: {e}"))?
                }
                other => return Err(format!("unknown option {other}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    }
    if checks.is_empty() {
        // The model-evaluation hot path the columnar rewrite bought,
        // plus the deterministic mapped-op counts of the synthesis
        // pipeline (an optimizer regression inflates these).
        checks.push((None, "logic_model_columnar_cached/1024cols".to_string()));
        for size in ["small", "medium", "large"] {
            checks.push((
                Some("BENCH_synth.json".to_string()),
                format!("synth_mapped_ops/{size}"),
            ));
        }
    }

    let base = match load(&baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };
    // Artifact files, loaded once each in check order.
    let mut artifacts: Vec<(String, Vec<Entry>)> = Vec::new();
    let mut failed = false;
    for (file, id) in &checks {
        let file = file.as_deref().unwrap_or(&current).to_string();
        if !artifacts.iter().any(|(f, _)| *f == file) {
            match load(&file) {
                Ok(entries) => artifacts.push((file.clone(), entries)),
                Err(e) => {
                    eprintln!("bench_check: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let cur = &artifacts
            .iter()
            .find(|(f, _)| *f == file)
            .expect("loaded above")
            .1;
        let (Some(now), Some(then)) = (mean_of(cur, id), mean_of(&base, id)) else {
            eprintln!("bench_check: id '{id}' missing from {file} or {baseline}");
            failed = true;
            continue;
        };
        let ratio = now / then;
        let verdict = if ratio > 1.0 + max_regress {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_check: {id}: {now:.1} ns vs baseline {then:.1} ns ({ratio:.3}x, limit {:.3}x) {verdict}",
            1.0 + max_regress
        );
    }
    if failed {
        eprintln!("bench_check: FAILED (>{:.0}% regression)", max_regress * 100.0);
        return ExitCode::FAILURE;
    }
    println!("bench_check: all {} id(s) within tolerance", checks.len());
    ExitCode::SUCCESS
}
