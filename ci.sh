#!/usr/bin/env bash
# CI gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
