#!/usr/bin/env bash
# Staged CI gate. Runs the selected stages even when an earlier one
# fails, times each, and prints a pass/fail/skipped summary table at
# the end (also written to target/tools/ci_summary.txt for CI
# artifact upload).
#
#   ./ci.sh                 full gate: build, test, synth, clippy,
#                           fmt, bench-check, determinism
#   ./ci.sh --quick         build + test only (other stages are
#                           reported as skipped)
#   ./ci.sh --stage NAME    run one stage (repeatable, and NAME may be
#                           a comma-separated list); NAME is one of:
#                           build test synth clippy fmt bench-check
#                           determinism. Unknown names error out
#                           listing the valid stages.
#
# Exit status is 0 iff every executed stage passed. Offline-safe: all
# dependencies are in-tree (crates/shims), no registry access needed.
set -uo pipefail
cd "$(dirname "$0")" || exit 1

ALL_STAGES=(build test synth clippy fmt bench-check determinism)
SELECTED=()
QUICK=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --stage)
      shift
      if [[ $# -eq 0 ]]; then
        echo "--stage requires a name (one of: ${ALL_STAGES[*]})" >&2
        exit 2
      fi
      # Accept a comma-separated list; every name must be a known
      # stage — an unknown name errors out listing the valid stages
      # instead of silently running nothing.
      IFS=',' read -r -a names <<< "$1"
      if [[ ${#names[@]} -eq 0 ]]; then
        echo "--stage requires a name (one of: ${ALL_STAGES[*]})" >&2
        exit 2
      fi
      for name in "${names[@]}"; do
        ok=0
        for s in "${ALL_STAGES[@]}"; do
          [[ "$s" == "$name" ]] && ok=1
        done
        if [[ $ok -eq 0 ]]; then
          echo "unknown stage: '$name' (one of: ${ALL_STAGES[*]})" >&2
          exit 2
        fi
        SELECTED+=("$name")
      done
      ;;
    -h|--help)
      # Print the whole header comment (everything up to the first
      # non-comment line), so help never truncates as the header grows.
      sed -n '2,/^set /p' "$0" | sed '$d' | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "unknown option: $1 (try --help)" >&2
      exit 2
      ;;
  esac
  shift
done
if [[ $QUICK -eq 1 && ${#SELECTED[@]} -gt 0 ]]; then
  echo "--quick and --stage are mutually exclusive" >&2
  exit 2
fi
if [[ $QUICK -eq 1 ]]; then
  SELECTED=(build test)
elif [[ ${#SELECTED[@]} -eq 0 ]]; then
  SELECTED=("${ALL_STAGES[@]}")
fi

STAGE_NAMES=()
STAGE_STATUS=()
STAGE_SECS=()
FAILED=0

run_stage() {
  local name="$1"
  shift
  echo
  echo "==> [$name] $*"
  local start=$SECONDS
  if "$@"; then
    STAGE_STATUS+=("ok")
  else
    STAGE_STATUS+=("FAIL")
    FAILED=1
  fi
  STAGE_NAMES+=("$name")
  STAGE_SECS+=($((SECONDS - start)))
}

skip_stage() {
  STAGE_NAMES+=("$1")
  STAGE_STATUS+=("skipped")
  STAGE_SECS+=(0)
}

# Guards the *committed* bench artifacts: fails when any gated entry
# of BENCH_engine.json / BENCH_synth.json / BENCH_sched.json /
# BENCH_exec.json / BENCH_faults.json regresses >20% against
# tools/bench_baseline.json — deterministic count entries (mapped ops,
# batch shape, backend parity, degradation ledger) are exact-gated in
# both directions (all problems are listed, not just the first). It
# does not re-run the benchmarks — a fresh regression is caught when
# the artifacts are next regenerated
# (`cargo bench -p fcdram-bench --bench ablation_engine` /
# `ablation_synth` / `ablation_sched` / `ablation_exec` /
# `ablation_faults`).
bench_check() {
  mkdir -p target/tools
  rustc -O --edition 2021 tools/bench_check.rs -o target/tools/bench_check \
    && target/tools/bench_check
}

# End-to-end synthesis smoke: compile an expression with the
# reliability-aware mapper, execute it on the host-substrate SimdVm
# (verified bit-exact against the reference evaluator), and emit
# bender assembly.
synth_smoke() {
  mkdir -p target/tools
  cargo build --release -p characterize \
    && target/release/characterize synth \
         --expr '(a & b & c & d) ^ !(e | f | g)' \
         --execute --asm target/tools/ci_synth.asm
}

# Determinism gate: the fidelity invariant enforced byte-for-byte.
#   1. the scheduler, execution-backend, and fault-injection
#      equivalence suites;
#   2. a quick fleet sweep run twice with the same parameters — the
#      two JSON reports must be byte-identical (run-to-run
#      determinism);
#   3. a serve batch run on *each* execution backend (vm and bender)
#      with different shard counts — each backend's JSON report must
#      be byte-identical across shard counts (shard invariance at
#      both cost-model and command-schedule fidelity);
#   4. the same serve under the demo fault plan (disturbance
#      mitigation, derated success, one scripted mid-session chip
#      dropout): each backend's faulted report must stay
#      byte-identical across shard counts, and the fleet-health
#      ledger must be byte-identical across *all four* runs — shards
#      and backends — because the planner derives it from
#      (fleet, batch, policy) alone.
determinism() {
  mkdir -p target/tools
  cargo build --release -p characterize || return 1
  cargo test -q --test sched_equivalence || return 1
  cargo test -q --test exec_equivalence || return 1
  cargo test -q --test fault_equivalence || return 1
  local bin=target/release/characterize
  "$bin" fleet --quick --chips 3 --shards 2 --json target/tools/det_fleet_a.json >/dev/null \
    && "$bin" fleet --quick --chips 3 --shards 2 --json target/tools/det_fleet_b.json >/dev/null \
    && cmp target/tools/det_fleet_a.json target/tools/det_fleet_b.json \
    || { echo "determinism: fleet sweep reports differ between runs" >&2; return 1; }
  local backend
  for backend in vm bender; do
    "$bin" serve --jobs 24 --chips 3 --shards 1 --seed 7 --lanes 64 --backend "$backend" \
        --json "target/tools/det_serve_${backend}_a.json" >/dev/null \
      && "$bin" serve --jobs 24 --chips 3 --shards 5 --seed 7 --lanes 64 --backend "$backend" \
           --json "target/tools/det_serve_${backend}_b.json" >/dev/null \
      && cmp "target/tools/det_serve_${backend}_a.json" "target/tools/det_serve_${backend}_b.json" \
      || { echo "determinism: $backend serve reports differ across shard counts" >&2; return 1; }
  done
  for backend in vm bender; do
    "$bin" serve --jobs 24 --chips 3 --shards 1 --seed 7 --lanes 64 --backend "$backend" \
        --faults demo --json "target/tools/det_faults_${backend}_a.json" \
        --health-json "target/tools/det_health_${backend}_a.json" >/dev/null \
      && "$bin" serve --jobs 24 --chips 3 --shards 5 --seed 7 --lanes 64 --backend "$backend" \
           --faults demo --json "target/tools/det_faults_${backend}_b.json" \
           --health-json "target/tools/det_health_${backend}_b.json" >/dev/null \
      && cmp "target/tools/det_faults_${backend}_a.json" "target/tools/det_faults_${backend}_b.json" \
      || { echo "determinism: $backend faulted serve reports differ across shard counts" >&2; return 1; }
  done
  cmp target/tools/det_health_vm_a.json target/tools/det_health_vm_b.json \
    && cmp target/tools/det_health_vm_a.json target/tools/det_health_bender_a.json \
    && cmp target/tools/det_health_vm_a.json target/tools/det_health_bender_b.json \
    || { echo "determinism: fleet-health ledger differs across shards/backends" >&2; return 1; }
  echo "determinism: fleet, serve, and faulted serve (vm + bender) reports byte-identical;" \
       "fleet-health ledger identical across shards and backends"
}

wants() {
  local s
  for s in "${SELECTED[@]}"; do
    [[ "$s" == "$1" ]] && return 0
  done
  return 1
}

for stage in "${ALL_STAGES[@]}"; do
  if ! wants "$stage"; then
    skip_stage "$stage"
    continue
  fi
  case "$stage" in
    build)       run_stage build cargo build --release ;;
    test)        run_stage test cargo test -q ;;
    synth)       run_stage synth synth_smoke ;;
    clippy)      run_stage clippy cargo clippy --workspace --all-targets -- -D warnings ;;
    fmt)         run_stage fmt cargo fmt --all --check ;;
    bench-check) run_stage bench-check bench_check ;;
    determinism) run_stage determinism determinism ;;
  esac
done

mkdir -p target/tools
SUMMARY=target/tools/ci_summary.txt
{
  echo "== CI summary =="
  printf '%-12s %-8s %s\n' stage status seconds
  printf '%-12s %-8s %s\n' ----- ------ -------
  for i in "${!STAGE_NAMES[@]}"; do
    printf '%-12s %-8s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_STATUS[$i]}" "${STAGE_SECS[$i]}"
  done
} | tee "$SUMMARY"
echo
if [[ $FAILED -ne 0 ]]; then
  echo "CI FAILED" | tee -a "$SUMMARY"
  exit 1
fi
echo "CI OK (skipped stages listed above, if any)" | tee -a "$SUMMARY"
