#!/usr/bin/env bash
# Staged CI gate. Runs the selected stages even when an earlier one
# fails, times each, and prints a pass/fail/skipped summary table at
# the end (also written to target/tools/ci_summary.txt for CI
# artifact upload).
#
#   ./ci.sh                 full gate: build, test, synth, clippy,
#                           fmt, bench-check, determinism, docs
#   ./ci.sh --quick         build + test only (other stages are
#                           reported as skipped)
#   ./ci.sh --stage NAME    run one stage (repeatable, and NAME may be
#                           a comma-separated list); NAME is one of:
#                           build test synth clippy fmt bench-check
#                           determinism docs. Unknown names error out
#                           listing the valid stages.
#
# Exit status is 0 iff every executed stage passed. Offline-safe: all
# dependencies are in-tree (crates/shims), no registry access needed.
set -uo pipefail
cd "$(dirname "$0")" || exit 1

ALL_STAGES=(build test synth clippy fmt bench-check determinism docs)
SELECTED=()
QUICK=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --stage)
      shift
      if [[ $# -eq 0 ]]; then
        echo "--stage requires a name (one of: ${ALL_STAGES[*]})" >&2
        exit 2
      fi
      # Accept a comma-separated list; every name must be a known
      # stage — an unknown name errors out listing the valid stages
      # instead of silently running nothing.
      IFS=',' read -r -a names <<< "$1"
      if [[ ${#names[@]} -eq 0 ]]; then
        echo "--stage requires a name (one of: ${ALL_STAGES[*]})" >&2
        exit 2
      fi
      for name in "${names[@]}"; do
        ok=0
        for s in "${ALL_STAGES[@]}"; do
          [[ "$s" == "$name" ]] && ok=1
        done
        if [[ $ok -eq 0 ]]; then
          echo "unknown stage: '$name' (one of: ${ALL_STAGES[*]})" >&2
          exit 2
        fi
        SELECTED+=("$name")
      done
      ;;
    -h|--help)
      # Print the whole header comment (everything up to the first
      # non-comment line), so help never truncates as the header grows.
      sed -n '2,/^set /p' "$0" | sed '$d' | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "unknown option: $1 (try --help)" >&2
      exit 2
      ;;
  esac
  shift
done
if [[ $QUICK -eq 1 && ${#SELECTED[@]} -gt 0 ]]; then
  echo "--quick and --stage are mutually exclusive" >&2
  exit 2
fi
if [[ $QUICK -eq 1 ]]; then
  SELECTED=(build test)
elif [[ ${#SELECTED[@]} -eq 0 ]]; then
  SELECTED=("${ALL_STAGES[@]}")
fi

STAGE_NAMES=()
STAGE_STATUS=()
STAGE_SECS=()
FAILED=0

run_stage() {
  local name="$1"
  shift
  echo
  echo "==> [$name] $*"
  local start=$SECONDS
  if "$@"; then
    STAGE_STATUS+=("ok")
  else
    STAGE_STATUS+=("FAIL")
    FAILED=1
  fi
  STAGE_NAMES+=("$name")
  STAGE_SECS+=($((SECONDS - start)))
}

skip_stage() {
  STAGE_NAMES+=("$1")
  STAGE_STATUS+=("skipped")
  STAGE_SECS+=(0)
}

# Guards the *committed* bench artifacts: fails when any gated entry
# of BENCH_engine.json / BENCH_synth.json / BENCH_sched.json /
# BENCH_exec.json / BENCH_faults.json / BENCH_daemon.json /
# BENCH_obs.json regresses >20% against tools/bench_baseline.json —
# deterministic count entries (mapped ops, batch shape, backend
# parity, degradation ledger, daemon admission ledger, observability
# artifact shape) are exact-gated in both directions (all problems
# are listed, not just the first). It does not re-run the benchmarks
# — a fresh regression is caught when the artifacts are next
# regenerated
# (`cargo bench -p fcdram-bench --bench ablation_engine` /
# `ablation_synth` / `ablation_sched` / `ablation_exec` /
# `ablation_faults` / `ablation_daemon` / `ablation_obs`).
bench_check() {
  mkdir -p target/tools
  rustc -O --edition 2021 tools/bench_check.rs -o target/tools/bench_check \
    && target/tools/bench_check
}

# End-to-end synthesis smoke: compile an expression with the
# reliability-aware mapper, execute it on the host-substrate SimdVm
# (verified bit-exact against the reference evaluator), and emit
# bender assembly.
synth_smoke() {
  mkdir -p target/tools
  cargo build --release -p characterize \
    && target/release/characterize synth \
         --expr '(a & b & c & d) ^ !(e | f | g)' \
         --execute --asm target/tools/ci_synth.asm
}

# Determinism gate: the fidelity invariant enforced byte-for-byte.
#   1. the scheduler, execution-backend, and fault-injection
#      equivalence suites;
#   2. a quick fleet sweep run twice with the same parameters — the
#      two JSON reports must be byte-identical (run-to-run
#      determinism);
#   3. a serve batch run on *each* execution backend (vm and bender)
#      with different shard counts — each backend's JSON report must
#      be byte-identical across shard counts (shard invariance at
#      both cost-model and command-schedule fidelity) — and again
#      with `--fuse off` at both shard counts: fused bulk execution
#      (same-subarray visit batching plus cross-job operand fusion)
#      must never move a report byte;
#   4. the same serve under the demo fault plan (disturbance
#      mitigation, derated success, one scripted mid-session chip
#      dropout): each backend's faulted report must stay
#      byte-identical across shard counts, and the fleet-health
#      ledger must be byte-identical across *all four* runs — shards
#      and backends — because the planner derives it from
#      (fleet, batch, policy) alone;
#   5. a recorded daemon session replayed at shards 1 and 5 on both
#      execution backends, fused and `--fuse off`: all eight replayed
#      reports must be byte-identical to the live run's report,
#      because the daemon report is a pure function of (session log,
#      fleet, cost model) — wall-clock throughput and the fuse knob
#      never enter it;
#   6. the same recorded session traced and metered (the demo fault
#      scenario, so fault instants appear): the Chrome trace JSON and
#      the Prometheus-style metrics exposition of every replay must
#      be byte-identical to the live run's — determinism invariant #4
#      (docs/OBSERVABILITY.md): observability artifacts are modeled
#      time only, never wall clock.
determinism() {
  mkdir -p target/tools
  cargo build --release -p characterize || return 1
  cargo test -q --test sched_equivalence || return 1
  cargo test -q --test exec_equivalence || return 1
  cargo test -q --test fault_equivalence || return 1
  cargo test -q --test obs_equivalence || return 1
  local bin=target/release/characterize
  "$bin" fleet --quick --chips 3 --shards 2 --json target/tools/det_fleet_a.json >/dev/null \
    && "$bin" fleet --quick --chips 3 --shards 2 --json target/tools/det_fleet_b.json >/dev/null \
    && cmp target/tools/det_fleet_a.json target/tools/det_fleet_b.json \
    || { echo "determinism: fleet sweep reports differ between runs" >&2; return 1; }
  local backend shards
  for backend in vm bender; do
    "$bin" serve --jobs 24 --chips 3 --shards 1 --seed 7 --lanes 64 --backend "$backend" \
        --json "target/tools/det_serve_${backend}_a.json" >/dev/null \
      && "$bin" serve --jobs 24 --chips 3 --shards 5 --seed 7 --lanes 64 --backend "$backend" \
           --json "target/tools/det_serve_${backend}_b.json" >/dev/null \
      && cmp "target/tools/det_serve_${backend}_a.json" "target/tools/det_serve_${backend}_b.json" \
      || { echo "determinism: $backend serve reports differ across shard counts" >&2; return 1; }
    for shards in 1 5; do
      "$bin" serve --jobs 24 --chips 3 --shards "$shards" --seed 7 --lanes 64 \
          --backend "$backend" --fuse off \
          --json "target/tools/det_serve_${backend}_u${shards}.json" >/dev/null \
        && cmp "target/tools/det_serve_${backend}_a.json" \
               "target/tools/det_serve_${backend}_u${shards}.json" \
        || { echo "determinism: $backend serve report moves under --fuse off (shards=$shards)" >&2; return 1; }
    done
  done
  for backend in vm bender; do
    "$bin" serve --jobs 24 --chips 3 --shards 1 --seed 7 --lanes 64 --backend "$backend" \
        --faults demo --json "target/tools/det_faults_${backend}_a.json" \
        --health-json "target/tools/det_health_${backend}_a.json" >/dev/null \
      && "$bin" serve --jobs 24 --chips 3 --shards 5 --seed 7 --lanes 64 --backend "$backend" \
           --faults demo --json "target/tools/det_faults_${backend}_b.json" \
           --health-json "target/tools/det_health_${backend}_b.json" >/dev/null \
      && cmp "target/tools/det_faults_${backend}_a.json" "target/tools/det_faults_${backend}_b.json" \
      || { echo "determinism: $backend faulted serve reports differ across shard counts" >&2; return 1; }
  done
  cmp target/tools/det_health_vm_a.json target/tools/det_health_vm_b.json \
    && cmp target/tools/det_health_vm_a.json target/tools/det_health_bender_a.json \
    && cmp target/tools/det_health_vm_a.json target/tools/det_health_bender_b.json \
    || { echo "determinism: fleet-health ledger differs across shards/backends" >&2; return 1; }
  "$bin" daemon --demo --ticks 12 --chips 12 --record target/tools/det_session.json \
      --json target/tools/det_daemon_live.json \
      --trace-json target/tools/det_trace_live.json \
      --metrics target/tools/det_metrics_live.prom >/dev/null 2>&1 \
    || { echo "determinism: daemon demo session failed to record" >&2; return 1; }
  for backend in vm bender; do
    for shards in 1 5; do
      "$bin" daemon --replay target/tools/det_session.json --shards "$shards" \
          --backend "$backend" \
          --json "target/tools/det_daemon_${backend}_s${shards}.json" \
          --trace-json "target/tools/det_trace_${backend}_s${shards}.json" \
          --metrics "target/tools/det_metrics_${backend}_s${shards}.prom" >/dev/null 2>&1 \
        && cmp target/tools/det_daemon_live.json \
               "target/tools/det_daemon_${backend}_s${shards}.json" \
        || { echo "determinism: daemon replay (backend=$backend shards=$shards) differs from the live report" >&2; return 1; }
      cmp target/tools/det_trace_live.json \
          "target/tools/det_trace_${backend}_s${shards}.json" \
        || { echo "determinism: trace JSON (backend=$backend shards=$shards) differs from the live trace" >&2; return 1; }
      cmp target/tools/det_metrics_live.prom \
          "target/tools/det_metrics_${backend}_s${shards}.prom" \
        || { echo "determinism: metrics exposition (backend=$backend shards=$shards) differs from the live run" >&2; return 1; }
      "$bin" daemon --replay target/tools/det_session.json --shards "$shards" \
          --backend "$backend" --fuse off \
          --json "target/tools/det_daemon_${backend}_s${shards}_u.json" \
          --trace-json "target/tools/det_trace_${backend}_s${shards}_u.json" \
          --metrics "target/tools/det_metrics_${backend}_s${shards}_u.prom" >/dev/null 2>&1 \
        && cmp target/tools/det_daemon_live.json \
               "target/tools/det_daemon_${backend}_s${shards}_u.json" \
        && cmp target/tools/det_trace_live.json \
               "target/tools/det_trace_${backend}_s${shards}_u.json" \
        && cmp target/tools/det_metrics_live.prom \
               "target/tools/det_metrics_${backend}_s${shards}_u.prom" \
        || { echo "determinism: daemon replay with --fuse off (backend=$backend shards=$shards) differs from the fused live run" >&2; return 1; }
    done
  done
  echo "determinism: fleet, serve (fused + --fuse off), and faulted serve (vm + bender)" \
       "reports byte-identical; fleet-health ledger identical across shards and backends;" \
       "daemon session, trace JSON, and metrics replay byte-identically" \
       "(shards 1/5 x vm/bender x fuse on/off)"
}

# Docs gate, two halves:
#   1. CLI reference drift: every `--flag` mentioned in docs/CLI.md
#      must appear in `characterize --help`, and every flag the binary
#      advertises must be documented — a flag added, renamed, or
#      removed on either side fails until both agree;
#   2. API docs: `cargo doc --no-deps` with rustdoc warnings promoted
#      to errors, so broken intra-doc links and malformed rustdoc
#      fail the gate.
docs_check() {
  mkdir -p target/tools
  cargo build --release -p characterize || return 1
  target/release/characterize --help \
    | grep -oE '\-\-[a-z-]+' | sort -u > target/tools/docs_help_flags.txt
  grep -oE '`--[a-z-]+' docs/CLI.md \
    | tr -d '`' | sort -u > target/tools/docs_md_flags.txt
  local undocumented documented_only
  undocumented=$(comm -23 target/tools/docs_help_flags.txt target/tools/docs_md_flags.txt)
  documented_only=$(comm -13 target/tools/docs_help_flags.txt target/tools/docs_md_flags.txt)
  if [[ -n "$undocumented" ]]; then
    echo "docs: flags in 'characterize --help' missing from docs/CLI.md:" >&2
    echo "$undocumented" >&2
    return 1
  fi
  if [[ -n "$documented_only" ]]; then
    echo "docs: flags in docs/CLI.md that 'characterize --help' does not advertise:" >&2
    echo "$documented_only" >&2
    return 1
  fi
  echo "docs: $(wc -l < target/tools/docs_help_flags.txt) CLI flags consistent between --help and docs/CLI.md"
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
}

wants() {
  local s
  for s in "${SELECTED[@]}"; do
    [[ "$s" == "$1" ]] && return 0
  done
  return 1
}

for stage in "${ALL_STAGES[@]}"; do
  if ! wants "$stage"; then
    skip_stage "$stage"
    continue
  fi
  case "$stage" in
    build)       run_stage build cargo build --release ;;
    test)        run_stage test cargo test -q ;;
    synth)       run_stage synth synth_smoke ;;
    clippy)      run_stage clippy cargo clippy --workspace --all-targets -- -D warnings ;;
    fmt)         run_stage fmt cargo fmt --all --check ;;
    bench-check) run_stage bench-check bench_check ;;
    determinism) run_stage determinism determinism ;;
    docs)        run_stage docs docs_check ;;
  esac
done

mkdir -p target/tools
SUMMARY=target/tools/ci_summary.txt
{
  echo "== CI summary =="
  printf '%-12s %-8s %s\n' stage status seconds
  printf '%-12s %-8s %s\n' ----- ------ -------
  for i in "${!STAGE_NAMES[@]}"; do
    printf '%-12s %-8s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_STATUS[$i]}" "${STAGE_SECS[$i]}"
  done
} | tee "$SUMMARY"
echo
if [[ $FAILED -ne 0 ]]; then
  echo "CI FAILED" | tee -a "$SUMMARY"
  exit 1
fi
echo "CI OK (skipped stages listed above, if any)" | tee -a "$SUMMARY"
