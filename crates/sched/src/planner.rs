//! The planner: fleet placement and reliability-aware admission.
//!
//! Planning is a pure function of `(fleet, batch, policy)` — no clock,
//! no thread count — so a plan is bit-identical however the executor
//! later shards it. Three decisions are made per job, in submission
//! order:
//!
//! 1. **placement** — the job goes to the least-loaded chip (by
//!    predicted scheduled latency, ties to the lowest member index)
//!    *that can hold it* — members whose subarrays could never fit
//!    the job even when idle are skipped — and leases a
//!    `(subarray, row-range)` slot sized to the program's peak
//!    live-row footprint from [`dram_core::FleetSlots`]. When a
//!    chip's subarrays fill up, the chip rolls into its next *wave*:
//!    all of its slots are recycled and sequential reuse begins — the
//!    wave index is recorded so utilization reports stay honest.
//! 2. **re-pricing** — the submitted program is priced under the
//!    *assigned chip's* [`CostModel`] (see [`ChipProfile`]): the
//!    paper's chip-to-chip variation means a mapping optimal for the
//!    population mean may be too optimistic for a weak chip.
//! 3. **admission** — jobs whose expected success on their chip falls
//!    below the policy threshold are re-mapped to narrower native
//!    gates ([`fcsynth::SynthProgram::narrowed`]); if no narrowing
//!    reaches the threshold, the best variant runs anyway and the job
//!    is flagged in its outcome.

use crate::error::{Result, SchedError};
use crate::queue::{Batch, JobId};
use dram_core::fleet::{ChipSpec, FleetConfig, FleetSlot, FleetSlots};
use dram_core::math::{hash_to_unit, mix2};
use fcsynth::{CostModel, ProgramCost, SynthProgram};
use serde::{Deserialize, Serialize};

/// Scheduling policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedPolicy {
    /// Admission threshold: jobs predicted below this success
    /// probability on their assigned chip are re-mapped or flagged.
    pub min_success: f64,
    /// Extra per-job attempts the executor may spend re-running
    /// failed operations.
    pub retry_budget: u32,
    /// Whether below-threshold jobs may be re-mapped to narrower
    /// native gates (`false`: they are only flagged).
    pub allow_remap: bool,
    /// Worker threads the executor shards jobs over. `0` = one per
    /// available CPU; `1` = serial.
    pub shards: usize,
    /// Rows reserved at the top of every subarray for reference and
    /// constant scratch (the command sequences' working set).
    pub scratch_rows: usize,
    /// Which execution backend jobs run on: the cost-model-priced VM
    /// ([`fcexec::BackendKind::Vm`], the default) or command-schedule
    /// fidelity with cycle-accurate per-step latency at each chip's
    /// speed bin ([`fcexec::BackendKind::Bender`]). Functional results
    /// are identical on every backend.
    pub backend: fcexec::BackendKind,
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy {
            min_success: 0.85,
            retry_budget: 3,
            allow_remap: true,
            shards: 0,
            scratch_rows: simdram::MAX_FAN_IN,
            backend: fcexec::BackendKind::Vm,
        }
    }
}

impl SchedPolicy {
    /// Overrides the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> SchedPolicy {
        self.shards = shards;
        self
    }

    /// The shard count actually used for `jobs` jobs: the configured
    /// count, or one per available CPU when 0, never more than the
    /// job count and never less than 1.
    pub fn effective_shards(&self, jobs: usize) -> usize {
        let requested = if self.shards == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.shards
        };
        requested.min(jobs).max(1)
    }

    /// The worker threads the executor actually spawns for `jobs`
    /// jobs (ceil-division chunking can need fewer workers than
    /// [`effective_shards`](Self::effective_shards)).
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let shards = self.effective_shards(jobs);
        if shards <= 1 || jobs == 0 {
            1
        } else {
            jobs.div_ceil(jobs.div_ceil(shards))
        }
    }
}

/// One chip's scheduling view: its identity plus the per-chip derated
/// [`CostModel`] admission prices against.
///
/// The derating models the paper's chip-to-chip reliability spread at
/// scheduling granularity: every chip draws a *strain* factor
/// deterministically from its seed, and a logic entry's success rate
/// is raised to the power `1 + strain·(N−1)/15` — weak chips lose
/// disproportionately on many-row activations (the §6.2 scaling), so
/// narrowing a wide gate is a genuine remedy, while NOT (one
/// destination row here) keeps its population rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipProfile {
    /// Fleet member index.
    pub member: usize,
    /// Fleet display label (`module/cN`).
    pub label: String,
    /// The chip's deterministic seed (retry draws mix it in).
    pub chip_seed: u64,
    /// Strain factor in `[0, 3)`: 0 = population-mean chip.
    pub strain: f64,
    /// The part's speed bin (command-schedule latency is cycle-timed
    /// against it when serving on the bender backend).
    pub speed: dram_core::SpeedBin,
    /// The derated per-chip cost model.
    pub cost: CostModel,
}

impl ChipProfile {
    /// Derives the profile of fleet member `member` from its spec and
    /// the fleet-level base model.
    pub fn derive(member: usize, spec: &ChipSpec, base: &CostModel) -> ChipProfile {
        let chip_seed = spec.seed();
        // Squared unit draw: most chips near the population mean, a
        // thin tail of weak ones — the shape of the paper's per-chip
        // distributions.
        let strain = 3.0 * hash_to_unit(mix2(chip_seed, 0x57A1)).powi(2);
        let mut data = base.data().clone();
        data.source = format!("{} derated for {}", data.source, spec.label());
        for e in &mut data.entries {
            if e.op != "not" && e.inputs > 1 {
                let exponent = 1.0 + strain * (e.inputs - 1) as f64 / 15.0;
                e.success = e.success.powf(exponent);
            }
        }
        ChipProfile {
            member,
            label: spec.label(),
            chip_seed,
            strain,
            speed: spec.cfg.speed,
            cost: CostModel::from_data(data).expect("derating keeps the model valid"),
        }
    }
}

/// How admission control handled a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Admitted as submitted.
    Admitted,
    /// Re-mapped to native gates of at most this width to clear the
    /// admission threshold on the assigned chip.
    Remapped(usize),
    /// Below the threshold even after the best re-mapping; executed
    /// with the warning recorded.
    Flagged,
}

impl std::fmt::Display for Admission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Admission::Admitted => write!(f, "admitted"),
            Admission::Remapped(w) => write!(f, "remapped:{w}"),
            Admission::Flagged => write!(f, "flagged"),
        }
    }
}

/// One job's planned placement and the program that will actually run.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The job (submission index).
    pub job: JobId,
    /// Assigned fleet member.
    pub member: usize,
    /// Leased rows on that member.
    pub slot: FleetSlot,
    /// The member's wave (sequential slot-reuse generation) this job
    /// runs in.
    pub wave: usize,
    /// Admission outcome.
    pub admission: Admission,
    /// The program to execute (narrowed when `admission` is
    /// [`Admission::Remapped`], or the best attempt when flagged).
    pub program: SynthProgram,
    /// Predicted cost under the assigned chip's model.
    pub predicted: ProgramCost,
}

/// A complete batch plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Per-job assignments, in submission order.
    pub assignments: Vec<Assignment>,
    /// Per-member chip profiles, in fleet order.
    pub profiles: Vec<ChipProfile>,
    /// Total waves across the fleet (max per-member wave + 1).
    pub waves: usize,
}

/// Memoized admission results: one entry per distinct submitted
/// program, one slot per fleet member.
type AdmissionMemo = Vec<(
    SynthProgram,
    Vec<Option<(SynthProgram, Admission, ProgramCost)>>,
)>;

/// The planner.
#[derive(Debug, Clone)]
pub struct Planner<'a> {
    fleet: &'a FleetConfig,
    base: &'a CostModel,
    policy: &'a SchedPolicy,
}

impl<'a> Planner<'a> {
    /// A planner over `fleet` pricing against `base` (population-level
    /// cost model; each chip derates its own copy).
    pub fn new(
        fleet: &'a FleetConfig,
        base: &'a CostModel,
        policy: &'a SchedPolicy,
    ) -> Planner<'a> {
        Planner {
            fleet,
            base,
            policy,
        }
    }

    /// Plans a batch.
    ///
    /// # Errors
    ///
    /// Fails on an empty fleet or a job too large for *every* chip of
    /// the fleet.
    pub fn plan(&self, batch: &Batch) -> Result<Plan> {
        if self.fleet.is_empty() {
            return Err(SchedError::EmptyFleet);
        }
        let profiles: Vec<ChipProfile> = self
            .fleet
            .specs()
            .iter()
            .enumerate()
            .map(|(i, spec)| ChipProfile::derive(i, spec, self.base))
            .collect();
        let mut slots = FleetSlots::new(self.fleet, self.policy.scratch_rows);
        // Each member's largest-ever lease (an idle subarray's usable
        // rows): the fit ceiling candidate selection screens against.
        let capacity: Vec<usize> = (0..profiles.len())
            .map(|m| slots.largest_lease(m))
            .collect();
        let mut load = vec![0.0f64; profiles.len()];
        let mut wave = vec![0usize; profiles.len()];
        let mut assignments = Vec::with_capacity(batch.len());
        // Admission depends only on (submitted program, chip), so
        // batches cycling a small program mix admit each pair once
        // instead of once per job.
        let mut memo: AdmissionMemo = Vec::new();
        for job in batch.jobs() {
            // Candidate members by predicted load (ties to the lowest
            // index); a member whose subarrays can never hold the job
            // — even idle — is skipped rather than aborting the batch,
            // so a heterogeneous fleet places the job on a chip that
            // fits it.
            let mut order: Vec<usize> = (0..profiles.len()).collect();
            order.sort_by(|a, b| load[*a].total_cmp(&load[*b]).then(a.cmp(b)));
            let mut placed = None;
            'candidates: for member in order {
                let profile = &profiles[member];
                let admitted = self.admit_memoized(&mut memo, job, member, profile);
                // Narrowing only ever adds temporaries, so the
                // submitted program is the smallest footprint: try the
                // admitted (possibly narrowed) variant first, then
                // fall back to the submitted program when only the
                // narrowing made the job too big for this member —
                // feasibility beats the reliability re-map, and the
                // job is flagged instead.
                let submitted_fallback = if admitted.0 == job.program {
                    None
                } else {
                    Some((
                        job.program.clone(),
                        Admission::Flagged,
                        job.program.price(&profile.cost),
                    ))
                };
                for (program, admission, predicted) in
                    std::iter::once(admitted).chain(submitted_fallback)
                {
                    let rows = program.peak_live_rows();
                    if let Some(lease) = slots.lease_on(member, rows) {
                        placed = Some((member, lease, program, admission, predicted));
                        break 'candidates;
                    }
                    if capacity[member] >= rows {
                        // Wave rollover: the chip is full but fits the
                        // job when idle; recycle all of its slots for
                        // sequential reuse.
                        wave[member] += 1;
                        slots.reset_member(member);
                        let lease = slots
                            .lease_on(member, rows)
                            .expect("an idle member at capacity fits the job");
                        placed = Some((member, lease, program, admission, predicted));
                        break 'candidates;
                    }
                }
            }
            let Some((member, lease, program, admission, predicted)) = placed else {
                // Even the smallest variant (the submitted program)
                // fits no member, so the reported row count is the
                // job's true minimum footprint.
                return Err(SchedError::JobTooLarge {
                    job: job.label.clone(),
                    rows: job.program.peak_live_rows(),
                    largest: capacity.iter().max().copied().unwrap_or(0),
                });
            };
            load[member] += predicted.latency_ns;
            assignments.push(Assignment {
                job: job.id,
                member,
                slot: lease.slot,
                wave: wave[member],
                admission,
                program,
                predicted,
            });
            // The lease stays held in `slots` (dropped here without
            // release) until the member's wave rollover recycles it.
        }
        Ok(Plan {
            waves: wave.iter().max().copied().unwrap_or(0) + 1,
            assignments,
            profiles,
        })
    }

    /// Looks up (or computes and caches) the admission result for one
    /// (submitted program, member) pair.
    fn admit_memoized(
        &self,
        memo: &mut AdmissionMemo,
        job: &crate::queue::Job,
        member: usize,
        profile: &ChipProfile,
    ) -> (SynthProgram, Admission, ProgramCost) {
        let pi = match memo.iter().position(|(p, _)| *p == job.program) {
            Some(i) => i,
            None => {
                memo.push((job.program.clone(), Vec::new()));
                memo.len() - 1
            }
        };
        if memo[pi].1.len() <= member {
            memo[pi].1.resize(member + 1, None);
        }
        if let Some(hit) = &memo[pi].1[member] {
            return hit.clone();
        }
        let result = self.admit(&job.program, profile);
        memo[pi].1[member] = Some(result.clone());
        result
    }

    /// Admission control for one (program, chip) pair.
    fn admit(
        &self,
        submitted: &SynthProgram,
        profile: &ChipProfile,
    ) -> (SynthProgram, Admission, ProgramCost) {
        let as_is = submitted.price(&profile.cost);
        if as_is.expected_success >= self.policy.min_success {
            return (submitted.clone(), Admission::Admitted, as_is);
        }
        if !self.policy.allow_remap {
            return (submitted.clone(), Admission::Flagged, as_is);
        }
        // Try narrower native widths; keep the best expected success
        // (ties to the wider variant — fewer ops, lower latency).
        let mut best: Option<(usize, SynthProgram, ProgramCost)> = None;
        for width in [8usize, 4, 2] {
            let cand = submitted.narrowed(width);
            if &cand == submitted {
                continue; // no gate wider than `width` to rewrite
            }
            let c = cand.price(&profile.cost);
            if best
                .as_ref()
                .is_none_or(|(_, _, b)| c.expected_success > b.expected_success + 1e-15)
            {
                best = Some((width, cand, c));
            }
        }
        match best {
            Some((w, p, c)) if c.expected_success > as_is.expected_success + 1e-15 => {
                let admission = if c.expected_success >= self.policy.min_success {
                    Admission::Remapped(w)
                } else {
                    Admission::Flagged
                };
                (p, admission, c)
            }
            _ => (submitted.clone(), Admission::Flagged, as_is),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::batch_of;

    fn cost() -> CostModel {
        CostModel::table1_defaults()
    }

    #[test]
    fn plan_is_deterministic_and_spreads_load() {
        let fleet = FleetConfig::table1(4);
        let base = cost();
        let policy = SchedPolicy::default();
        let batch = batch_of(
            &["a & b", "a | b", "a ^ b", "!(a & b & c)", "a & b & c & d"],
            16,
            1,
        );
        let planner = Planner::new(&fleet, &base, &policy);
        let p1 = planner.plan(&batch).unwrap();
        let p2 = planner.plan(&batch).unwrap();
        assert_eq!(p1, p2, "planning is pure");
        assert_eq!(p1.assignments.len(), 5);
        let used: std::collections::BTreeSet<usize> =
            p1.assignments.iter().map(|a| a.member).collect();
        assert!(used.len() > 1, "multiple chips used: {used:?}");
        assert_eq!(p1.profiles.len(), 4);
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let fleet = FleetConfig {
            modules: vec![dram_core::config::table1().remove(0)],
            chips: 0,
            seed: 0,
        };
        let base = cost();
        let policy = SchedPolicy::default();
        let batch = batch_of(&["a & b"], 8, 0);
        assert_eq!(
            Planner::new(&fleet, &base, &policy).plan(&batch),
            Err(SchedError::EmptyFleet)
        );
    }

    #[test]
    fn chip_profiles_derate_wide_gates_more() {
        let fleet = FleetConfig::table1(8);
        let base = cost();
        for (i, spec) in fleet.specs().iter().enumerate() {
            let p = ChipProfile::derive(i, spec, &base);
            assert!((0.0..3.0).contains(&p.strain), "strain {}", p.strain);
            let n2 = p.cost.success(dram_core::LogicOp::And, 2);
            let n16 = p.cost.success(dram_core::LogicOp::And, 16);
            assert!(n2 <= base.success(dram_core::LogicOp::And, 2) + 1e-12);
            if p.strain > 0.05 {
                let base_ratio = base.success(dram_core::LogicOp::And, 16)
                    / base.success(dram_core::LogicOp::And, 2);
                assert!(
                    n16 / n2 < base_ratio + 1e-12,
                    "wide gates derate at least as much"
                );
            }
            assert_eq!(
                p.cost.not_success(),
                base.not_success(),
                "NOT keeps the population rate"
            );
        }
    }

    #[test]
    fn strict_threshold_remaps_or_flags() {
        let fleet = FleetConfig::table1(3);
        let base = cost();
        // Impossible threshold: nothing passes; everything is flagged
        // (or remapped if narrowing somehow reached 1.01 — it cannot).
        let strict = SchedPolicy {
            min_success: 1.01,
            ..SchedPolicy::default()
        };
        let batch = batch_of(&["a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p"], 8, 3);
        let plan = Planner::new(&fleet, &base, &strict).plan(&batch).unwrap();
        assert_eq!(plan.assignments[0].admission, Admission::Flagged);
        // Flagging still picks the best program for the chip.
        let no_remap = SchedPolicy {
            min_success: 1.01,
            allow_remap: false,
            ..SchedPolicy::default()
        };
        let plan2 = Planner::new(&fleet, &base, &no_remap).plan(&batch).unwrap();
        assert_eq!(plan2.assignments[0].admission, Admission::Flagged);
        assert_eq!(
            plan2.assignments[0].program,
            batch.jobs()[0].program,
            "remap disabled: the submitted program runs"
        );
    }

    #[test]
    fn waves_roll_over_on_a_saturated_chip() {
        let fleet = FleetConfig::table1(1);
        let base = cost();
        let g = fleet.spec(0).cfg.geometry();
        // Shrink every subarray to exactly one 3-row slot so the chip
        // holds `subarrays_per_bank` jobs per wave.
        let policy = SchedPolicy {
            scratch_rows: g.rows_per_subarray() - 3,
            ..SchedPolicy::default()
        };
        let slots_per_chip = g.subarrays_per_bank();
        let exprs: Vec<&str> = std::iter::repeat_n("a & b", slots_per_chip + 2).collect();
        let batch = batch_of(&exprs, 4, 9);
        let plan = Planner::new(&fleet, &base, &policy).plan(&batch).unwrap();
        assert!(
            plan.waves >= 2,
            "expected a wave rollover, got {}",
            plan.waves
        );
        let first_rolled = plan
            .assignments
            .iter()
            .find(|a| a.wave == 1)
            .expect("a wave-1 assignment exists");
        assert_eq!(
            first_rolled.slot.subarray, 0,
            "rollover recycles from the start"
        );
        // A job that fits no member errors clearly, reporting the
        // fleet-wide largest slot (placement already skipped every
        // member that could never hold it).
        let impossible = batch_of(&["a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p&q&r&s&t"], 4, 9);
        match Planner::new(&fleet, &base, &policy).plan(&impossible) {
            Err(SchedError::JobTooLarge { rows, largest, .. }) => {
                assert_eq!(largest, 3, "fleet-wide largest idle slot");
                assert!(rows > largest);
            }
            other => panic!("expected JobTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn effective_shards_clamp() {
        let p = SchedPolicy::default();
        assert_eq!(p.clone().with_shards(8).effective_shards(3), 3);
        assert_eq!(p.clone().with_shards(2).effective_shards(64), 2);
        assert!(p.clone().with_shards(0).effective_shards(64) >= 1);
        assert_eq!(p.clone().with_shards(5).effective_shards(0), 1);
        assert_eq!(p.with_shards(4).effective_workers(5), 3);
    }
}
