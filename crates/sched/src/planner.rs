//! The planner: fleet placement and reliability-aware admission.
//!
//! Planning is a pure function of `(fleet, batch, policy)` — no clock,
//! no thread count — so a plan is bit-identical however the executor
//! later shards it. Three decisions are made per job, in submission
//! order:
//!
//! 1. **placement** — the job goes to the least-loaded chip (by
//!    predicted scheduled latency, ties to the lowest member index)
//!    *that can hold it* — members whose subarrays could never fit
//!    the job even when idle are skipped — and leases a
//!    `(subarray, row-range)` slot sized to the program's peak
//!    live-row footprint from [`dram_core::FleetSlots`]. When a
//!    chip's subarrays fill up, the chip rolls into its next *wave*:
//!    all of its slots are recycled and sequential reuse begins — the
//!    wave index is recorded so utilization reports stay honest.
//! 2. **re-pricing** — the submitted program is priced under the
//!    *assigned chip's* [`CostModel`] (see [`ChipProfile`]): the
//!    paper's chip-to-chip variation means a mapping optimal for the
//!    population mean may be too optimistic for a weak chip.
//! 3. **admission** — jobs whose expected success on their chip falls
//!    below the policy threshold are re-mapped to narrower native
//!    gates ([`fcsynth::SynthProgram::narrowed`]); if no narrowing
//!    reaches the threshold, the best variant runs anyway and the job
//!    is flagged in its outcome.

use crate::error::{Result, SchedError};
use crate::health::{Dropout, FleetHealth, HealthEvent, MemberHealth};
use crate::queue::{Batch, Job, JobId};
use dram_core::fault::{hazard_rate, step_activations, DisturbanceState, FaultPlan};
use dram_core::fleet::{ChipSpec, FleetConfig, FleetSlot, FleetSlots};
use dram_core::math::{hash_to_unit, mix2};
use dram_core::Temperature;
use fcsynth::{CostModel, ProgramCost, SynthProgram};
use serde::{Deserialize, Serialize};

/// Scheduling policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedPolicy {
    /// Admission threshold: jobs predicted below this success
    /// probability on their assigned chip are re-mapped or flagged.
    pub min_success: f64,
    /// Extra per-job attempts the executor may spend re-running
    /// failed operations.
    pub retry_budget: u32,
    /// Whether below-threshold jobs may be re-mapped to narrower
    /// native gates (`false`: they are only flagged).
    pub allow_remap: bool,
    /// Worker threads the executor shards jobs over. `0` = one per
    /// available CPU; `1` = serial.
    pub shards: usize,
    /// Rows reserved at the top of every subarray for reference and
    /// constant scratch (the command sequences' working set).
    pub scratch_rows: usize,
    /// Which execution backend jobs run on: the cost-model-priced VM
    /// ([`fcexec::BackendKind::Vm`], the default) or command-schedule
    /// fidelity with cycle-accurate per-step latency at each chip's
    /// speed bin ([`fcexec::BackendKind::Bender`]). Functional results
    /// are identical on every backend.
    pub backend: fcexec::BackendKind,
    /// Whether the executor fuses groups of same-program jobs on
    /// the same fleet member through one shared backend —
    /// operands bulk-staged via [`fcexec::ExecBackend::stage_many`],
    /// one prepared plan reused across the run — and executes each
    /// job's prepared plan with fused engine visits. Reports are
    /// byte-identical either way (and across shard counts and
    /// backends); `false` exists for ablation. Recorded session logs
    /// carry the knob, and replays may override it freely — like
    /// `shards` and `backend`, it never moves a report byte.
    pub fuse: bool,
    /// Optional fault-injection scenario. When set, the planner runs
    /// the fleet through read-disturbance accumulation (mitigation
    /// stealing lease bandwidth), hazard-rate wear derating with
    /// reliability-aware diversion, and deterministic chip dropouts
    /// with in-flight job re-placement; the resulting
    /// [`FleetHealth`] rides on the plan and the batch report.
    pub faults: Option<FaultPlan>,
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy {
            min_success: 0.85,
            retry_budget: 3,
            allow_remap: true,
            shards: 0,
            scratch_rows: simdram::MAX_FAN_IN,
            backend: fcexec::BackendKind::Vm,
            fuse: true,
            faults: None,
        }
    }
}

impl SchedPolicy {
    /// Overrides the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> SchedPolicy {
        self.shards = shards;
        self
    }

    /// The shard count actually used for `jobs` jobs: the configured
    /// count, or one per available CPU when 0, never more than the
    /// job count and never less than 1.
    pub fn effective_shards(&self, jobs: usize) -> usize {
        let requested = if self.shards == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.shards
        };
        requested.min(jobs).max(1)
    }

    /// The worker threads the executor actually spawns for `jobs`
    /// jobs (ceil-division chunking can need fewer workers than
    /// [`effective_shards`](Self::effective_shards)).
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let shards = self.effective_shards(jobs);
        if shards <= 1 || jobs == 0 {
            1
        } else {
            jobs.div_ceil(jobs.div_ceil(shards))
        }
    }
}

/// One chip's scheduling view: its identity plus the per-chip derated
/// [`CostModel`] admission prices against.
///
/// The derating models the paper's chip-to-chip reliability spread at
/// scheduling granularity: every chip draws a *strain* factor
/// deterministically from its seed, and a logic entry's success rate
/// is raised to the power `1 + strain·(N−1)/15` — weak chips lose
/// disproportionately on many-row activations (the §6.2 scaling), so
/// narrowing a wide gate is a genuine remedy, while NOT (one
/// destination row here) keeps its population rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipProfile {
    /// Fleet member index.
    pub member: usize,
    /// Fleet display label (`module/cN`).
    pub label: String,
    /// The chip's deterministic seed (retry draws mix it in).
    pub chip_seed: u64,
    /// Strain factor in `[0, 3)`: 0 = population-mean chip.
    pub strain: f64,
    /// The part's speed bin (command-schedule latency is cycle-timed
    /// against it when serving on the bender backend).
    pub speed: dram_core::SpeedBin,
    /// The derated per-chip cost model.
    pub cost: CostModel,
}

impl ChipProfile {
    /// Derives the profile of fleet member `member` from its spec and
    /// the fleet-level base model.
    pub fn derive(member: usize, spec: &ChipSpec, base: &CostModel) -> ChipProfile {
        let chip_seed = spec.seed();
        // Squared unit draw: most chips near the population mean, a
        // thin tail of weak ones — the shape of the paper's per-chip
        // distributions.
        let strain = 3.0 * hash_to_unit(mix2(chip_seed, 0x57A1)).powi(2);
        let mut data = base.data().clone();
        data.source = format!("{} derated for {}", data.source, spec.label());
        for e in &mut data.entries {
            if e.op != "not" && e.inputs > 1 {
                let exponent = 1.0 + strain * (e.inputs - 1) as f64 / 15.0;
                e.success = e.success.powf(exponent);
            }
        }
        ChipProfile {
            member,
            label: spec.label(),
            chip_seed,
            strain,
            speed: spec.cfg.speed,
            cost: CostModel::from_data(data).expect("derating keeps the model valid"),
        }
    }
}

/// How admission control handled a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Admitted as submitted.
    Admitted,
    /// Re-mapped to native gates of at most this width to clear the
    /// admission threshold on the assigned chip.
    Remapped(usize),
    /// Below the threshold even after the best re-mapping; executed
    /// with the warning recorded.
    Flagged,
}

impl std::fmt::Display for Admission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Admission::Admitted => write!(f, "admitted"),
            Admission::Remapped(w) => write!(f, "remapped:{w}"),
            Admission::Flagged => write!(f, "flagged"),
        }
    }
}

/// One job's planned placement and the program that will actually run.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The job (submission index).
    pub job: JobId,
    /// Assigned fleet member.
    pub member: usize,
    /// Leased rows on that member.
    pub slot: FleetSlot,
    /// The member's wave (sequential slot-reuse generation) this job
    /// runs in.
    pub wave: usize,
    /// Admission outcome.
    pub admission: Admission,
    /// The program to execute (narrowed when `admission` is
    /// [`Admission::Remapped`], or the best attempt when flagged).
    pub program: SynthProgram,
    /// Predicted cost under the assigned chip's model.
    pub predicted: ProgramCost,
    /// Fault-model success derating: per-step success probabilities
    /// are raised to this exponent at execution time (`1.0` when no
    /// fault plan is active — a bit-exact no-op).
    pub success_exp: f64,
    /// Times this job was re-placed off a dying chip (each one costs
    /// a unit of the retry budget).
    pub replacements: u32,
    /// Modeled nanoseconds already burned on chips that died mid-job;
    /// charged to the job's executed latency.
    pub wasted_ns: f64,
    /// Modeled start of the job on its member's load clock,
    /// nanoseconds — the trace layer's span anchor. A pure planning
    /// quantity (cost-model load, never backend latency), so traces
    /// built from it stay backend-invariant.
    pub start_ns: f64,
}

/// A complete batch plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Per-job assignments, in submission order.
    pub assignments: Vec<Assignment>,
    /// Per-member chip profiles, in fleet order.
    pub profiles: Vec<ChipProfile>,
    /// Total waves across the fleet (max per-member wave + 1).
    pub waves: usize,
    /// Fleet-health ledger of the session (fault plans only).
    pub health: Option<FleetHealth>,
}

/// Memoized admission results: one entry per distinct submitted
/// program, one slot per fleet member.
type AdmissionMemo = Vec<(
    SynthProgram,
    Vec<Option<(SynthProgram, Admission, ProgramCost)>>,
)>;

/// The planner.
#[derive(Debug, Clone)]
pub struct Planner<'a> {
    fleet: &'a FleetConfig,
    base: &'a CostModel,
    policy: &'a SchedPolicy,
}

impl<'a> Planner<'a> {
    /// A planner over `fleet` pricing against `base` (population-level
    /// cost model; each chip derates its own copy).
    pub fn new(
        fleet: &'a FleetConfig,
        base: &'a CostModel,
        policy: &'a SchedPolicy,
    ) -> Planner<'a> {
        Planner {
            fleet,
            base,
            policy,
        }
    }

    /// Plans a batch.
    ///
    /// # Errors
    ///
    /// Fails on an empty fleet, a job too large for *every* chip of
    /// the fleet, or — under a fault plan — a fleet whose every member
    /// has dropped out.
    pub fn plan(&self, batch: &Batch) -> Result<Plan> {
        if self.fleet.is_empty() {
            return Err(SchedError::EmptyFleet);
        }
        let profiles: Vec<ChipProfile> = self
            .fleet
            .specs()
            .iter()
            .enumerate()
            .map(|(i, spec)| ChipProfile::derive(i, spec, self.base))
            .collect();
        let slots = FleetSlots::new(self.fleet, self.policy.scratch_rows);
        // Fault bookkeeping is seeded entirely from the plan and the
        // chip identities — nothing backend- or shard-dependent — so a
        // degradation scenario's health ledger is byte-identical on
        // every serving configuration.
        let faults = self.policy.faults.as_ref().map(|plan| {
            let specs = self.fleet.specs();
            FaultCtx {
                hazard: specs
                    .iter()
                    .map(|s| hazard_rate(s.cfg.density, Temperature::BASELINE, &plan.aging))
                    .collect(),
                fail_at: specs
                    .iter()
                    .enumerate()
                    .map(|(m, s)| {
                        plan.fail_at_ns(m, s.seed(), s.cfg.density, Temperature::BASELINE)
                    })
                    .collect(),
                disturb: specs
                    .iter()
                    .map(|s| DisturbanceState::new(s.cfg.geometry().subarrays_per_bank()))
                    .collect(),
                mitigation_ns: vec![0.0; specs.len()],
                diverted: vec![0; specs.len()],
                dead: vec![false; specs.len()],
                dropouts: Vec::new(),
                replaced_jobs: 0,
                timeline: Vec::new(),
                plan: plan.clone(),
            }
        });
        let n = batch.len();
        let mut ctx = PlanCtx {
            planner: self,
            // Each member's largest-ever lease (an idle subarray's
            // usable rows): the fit ceiling candidate selection
            // screens against.
            capacity: (0..profiles.len())
                .map(|m| slots.largest_lease(m))
                .collect(),
            load: vec![0.0f64; profiles.len()],
            wave: vec![0usize; profiles.len()],
            profiles,
            slots,
            memo: Vec::new(),
            faults,
            assignments: (0..n).map(|_| None).collect(),
            intervals: vec![None; n],
        };
        for idx in 0..n {
            ctx.place(batch.jobs(), idx, 0, 0.0)?;
        }
        let health = ctx.faults.take().map(|f| {
            let mut members: Vec<MemberHealth> = ctx
                .profiles
                .iter()
                .enumerate()
                .map(|(m, p)| MemberHealth {
                    member: m,
                    chip: p.label.clone(),
                    hazard_per_mhours: f.hazard[m],
                    fail_at_ns: f.fail_at[m],
                    disturbance_acts: f.disturb[m].lifetime_total(),
                    mitigations: f.disturb[m].mitigations_total(),
                    mitigation_ns: f.mitigation_ns[m],
                    diverted: f.diverted[m],
                    dropped_at_job: None,
                    dropped_at_ns: None,
                })
                .collect();
            for d in &f.dropouts {
                members[d.member].dropped_at_job = Some(d.job);
                members[d.member].dropped_at_ns = Some(d.at_ns);
            }
            FleetHealth {
                plan_seed: f.plan.seed,
                members,
                dropouts: f.dropouts,
                replaced_jobs: f.replaced_jobs,
                timeline: f.timeline,
            }
        });
        Ok(Plan {
            waves: ctx.wave.iter().max().copied().unwrap_or(0) + 1,
            assignments: ctx
                .assignments
                .into_iter()
                .map(|a| a.expect("every job placed"))
                .collect(),
            profiles: ctx.profiles,
            health,
        })
    }

    /// Looks up (or computes and caches) the admission result for one
    /// (submitted program, member) pair.
    fn admit_memoized(
        &self,
        memo: &mut AdmissionMemo,
        job: &crate::queue::Job,
        member: usize,
        profile: &ChipProfile,
    ) -> (SynthProgram, Admission, ProgramCost) {
        let pi = match memo.iter().position(|(p, _)| *p == job.program) {
            Some(i) => i,
            None => {
                memo.push((job.program.clone(), Vec::new()));
                memo.len() - 1
            }
        };
        if memo[pi].1.len() <= member {
            memo[pi].1.resize(member + 1, None);
        }
        if let Some(hit) = &memo[pi].1[member] {
            return hit.clone();
        }
        let result = self.admit(&job.program, profile);
        memo[pi].1[member] = Some(result.clone());
        result
    }

    /// Admission control for one (program, chip) pair.
    fn admit(
        &self,
        submitted: &SynthProgram,
        profile: &ChipProfile,
    ) -> (SynthProgram, Admission, ProgramCost) {
        let as_is = submitted.price(&profile.cost);
        if as_is.expected_success >= self.policy.min_success {
            return (submitted.clone(), Admission::Admitted, as_is);
        }
        if !self.policy.allow_remap {
            return (submitted.clone(), Admission::Flagged, as_is);
        }
        // Try narrower native widths; keep the best expected success
        // (ties to the wider variant — fewer ops, lower latency).
        let mut best: Option<(usize, SynthProgram, ProgramCost)> = None;
        for width in [8usize, 4, 2] {
            let cand = submitted.narrowed(width);
            if &cand == submitted {
                continue; // no gate wider than `width` to rewrite
            }
            let c = cand.price(&profile.cost);
            if best
                .as_ref()
                .is_none_or(|(_, _, b)| c.expected_success > b.expected_success + 1e-15)
            {
                best = Some((width, cand, c));
            }
        }
        match best {
            Some((w, p, c)) if c.expected_success > as_is.expected_success + 1e-15 => {
                let admission = if c.expected_success >= self.policy.min_success {
                    Admission::Remapped(w)
                } else {
                    Admission::Flagged
                };
                (p, admission, c)
            }
            _ => (submitted.clone(), Admission::Flagged, as_is),
        }
    }
}

/// Fault-scenario bookkeeping while a plan is built: one entry per
/// fleet member, all of it derived from the [`FaultPlan`] seed and the
/// chip identities.
struct FaultCtx {
    plan: FaultPlan,
    /// MIL-HDBK-217F part failure rate per member (per 10⁶ hours).
    hazard: Vec<f64>,
    /// Deterministic failure time per member, modeled nanoseconds.
    fail_at: Vec<Option<f64>>,
    /// Per-member read-disturbance counters (one zone per subarray).
    disturb: Vec<DisturbanceState>,
    /// Serving bandwidth stolen by mitigation per member.
    mitigation_ns: Vec<f64>,
    /// Placements diverted per member by wear derating.
    diverted: Vec<usize>,
    /// Members that have dropped out.
    dead: Vec<bool>,
    /// Dropout timeline, in occurrence order.
    dropouts: Vec<Dropout>,
    /// Total jobs re-placed off dying chips.
    replaced_jobs: usize,
    /// Unified fault timeline (mitigations, diversions, dropouts), in
    /// occurrence order.
    timeline: Vec<HealthEvent>,
}

/// The mutable state of one `plan()` call, factored out so dropout
/// handling can recursively re-place in-flight jobs through the same
/// candidate-selection path first placement uses.
struct PlanCtx<'p, 'a> {
    planner: &'p Planner<'a>,
    profiles: Vec<ChipProfile>,
    slots: FleetSlots,
    capacity: Vec<usize>,
    load: Vec<f64>,
    wave: Vec<usize>,
    memo: AdmissionMemo,
    faults: Option<FaultCtx>,
    /// Final assignment per job index (re-placement swaps entries).
    assignments: Vec<Option<Assignment>>,
    /// `(member, start, end)` of each job's modeled residency on its
    /// chip: the in-flight test a dropout uses to pick its victims.
    intervals: Vec<Option<(usize, f64, f64)>>,
}

impl PlanCtx<'_, '_> {
    /// Wear-derating exponent of `member` at its current served age:
    /// `1 + wear · min(age / failure time, 1)`, or `1.0` outside a
    /// fault scenario (and for members that never fail).
    fn wear_exp(&self, member: usize) -> f64 {
        let Some(f) = &self.faults else { return 1.0 };
        match f.fail_at[member] {
            Some(at) if at > 0.0 => 1.0 + f.plan.aging.wear * (self.load[member] / at).min(1.0),
            _ => 1.0,
        }
    }

    /// Places job `idx` (and settles its fault consequences, possibly
    /// recursively re-placing other jobs off a chip it kills).
    fn place(&mut self, jobs: &[Job], idx: usize, replacements: u32, wasted_ns: f64) -> Result<()> {
        let job = &jobs[idx];
        let policy = self.planner.policy;
        // Candidate members by predicted load (ties to the lowest
        // index); a member whose subarrays can never hold the job —
        // even idle — is skipped rather than aborting the batch, so a
        // heterogeneous fleet places the job on a chip that fits it.
        // Dead members are out of the pool entirely.
        let mut order: Vec<usize> = (0..self.profiles.len()).collect();
        if let Some(f) = &self.faults {
            order.retain(|&m| !f.dead[m]);
            if order.is_empty() {
                return Err(SchedError::FleetExhausted {
                    job: job.label.clone(),
                });
            }
        }
        order.sort_by(|a, b| self.load[*a].total_cmp(&self.load[*b]).then(a.cmp(b)));
        // Under a fault plan, placement runs two passes: pass 0 skips
        // members whose wear derating would push an admissible job
        // below the threshold (reliability-aware diversion); pass 1
        // accepts any live member — degraded service beats no service.
        let passes = if self.faults.is_some() { 2 } else { 1 };
        let mut placed = None;
        'passes: for pass in 0..passes {
            'candidates: for &member in &order {
                let admitted = self.planner.admit_memoized(
                    &mut self.memo,
                    job,
                    member,
                    &self.profiles[member],
                );
                if pass + 1 < passes {
                    let wexp = self.wear_exp(member);
                    let s = admitted.2.expected_success;
                    if wexp > 1.0 && s >= policy.min_success && s.powf(wexp) < policy.min_success {
                        if let Some(f) = &mut self.faults {
                            f.diverted[member] += 1;
                            f.timeline.push(HealthEvent {
                                kind: "diversion".into(),
                                member,
                                chip: self.profiles[member].label.clone(),
                                at_ns: self.load[member],
                                job: job.id,
                            });
                        }
                        continue 'candidates;
                    }
                }
                // Narrowing only ever adds temporaries, so the
                // submitted program is the smallest footprint: try the
                // admitted (possibly narrowed) variant first, then
                // fall back to the submitted program when only the
                // narrowing made the job too big for this member —
                // feasibility beats the reliability re-map, and the
                // job is flagged instead.
                let submitted_fallback = if admitted.0 == job.program {
                    None
                } else {
                    Some((
                        job.program.clone(),
                        Admission::Flagged,
                        job.program.price(&self.profiles[member].cost),
                    ))
                };
                for (program, admission, predicted) in
                    std::iter::once(admitted).chain(submitted_fallback)
                {
                    let rows = program.peak_live_rows();
                    if let Some(lease) = self.slots.lease_on(member, rows) {
                        placed = Some((member, lease, program, admission, predicted));
                        break 'passes;
                    }
                    if self.capacity[member] >= rows {
                        // Wave rollover: the chip is full but fits the
                        // job when idle; recycle all of its slots for
                        // sequential reuse.
                        self.wave[member] += 1;
                        self.slots.reset_member(member);
                        let lease = self
                            .slots
                            .lease_on(member, rows)
                            .expect("an idle member at capacity fits the job");
                        placed = Some((member, lease, program, admission, predicted));
                        break 'passes;
                    }
                }
            }
        }
        let Some((member, lease, program, admission, predicted)) = placed else {
            // Even the smallest variant (the submitted program) fits
            // no member, so the reported row count is the job's true
            // minimum footprint.
            return Err(SchedError::JobTooLarge {
                job: job.label.clone(),
                rows: job.program.peak_live_rows(),
                largest: self.capacity.iter().max().copied().unwrap_or(0),
            });
        };
        // Settle the placement: charge disturbance for the program's
        // activations to the leased subarray, derive the success
        // derating, schedule any mitigation (it steals the member's
        // serving bandwidth), then age the chip by the job.
        let wexp = self.wear_exp(member);
        let start = self.load[member];
        let mut success_exp = 1.0f64;
        let mut mitigation_steal = 0.0f64;
        if let Some(f) = &mut self.faults {
            let zone = lease.slot.subarray;
            let acts: u64 = program
                .steps
                .iter()
                .map(|s| step_activations(s.op.map(|_| s.args.len())))
                .sum();
            f.disturb[member].charge(zone, acts);
            success_exp = f.disturb[member].derate_exponent(zone, &f.plan.disturbance) * wexp;
            while f.disturb[member].needs_mitigation(zone, &f.plan.disturbance) {
                f.disturb[member].mitigate(zone, &f.plan.disturbance);
                f.timeline.push(HealthEvent {
                    kind: "mitigation".into(),
                    member,
                    chip: self.profiles[member].label.clone(),
                    at_ns: start + predicted.latency_ns + mitigation_steal,
                    job: job.id,
                });
                mitigation_steal += f.plan.disturbance.mitigation_ns;
            }
            f.mitigation_ns[member] += mitigation_steal;
        }
        self.load[member] += predicted.latency_ns;
        let end = self.load[member];
        self.load[member] += mitigation_steal;
        self.intervals[idx] = Some((member, start, end));
        self.assignments[idx] = Some(Assignment {
            job: job.id,
            member,
            slot: lease.slot,
            wave: self.wave[member],
            admission,
            program,
            predicted,
            success_exp,
            replacements,
            wasted_ns,
            start_ns: start,
        });
        // The lease stays held in `slots` (dropped here without
        // release) until the member's wave rollover recycles it.

        // Dropout: the job (or its mitigation tail) pushed the member
        // past its failure time. Jobs still resident at the moment of
        // death are re-placed deterministically, in submission order,
        // through this same placement path — which can cascade if the
        // extra load kills another chip (each dropout permanently
        // removes a member, so the cascade terminates).
        let mut dropped_at = None;
        let mut victims: Vec<usize> = Vec::new();
        if let Some(f) = &mut self.faults {
            if let Some(fa) = f.fail_at[member] {
                if !f.dead[member] && self.load[member] >= fa {
                    f.dead[member] = true;
                    victims = self
                        .intervals
                        .iter()
                        .enumerate()
                        .filter(|(_, iv)| matches!(iv, Some((m, _, e)) if *m == member && *e > fa))
                        .map(|(j, _)| j)
                        .collect();
                    f.dropouts.push(Dropout {
                        member,
                        chip: self.profiles[member].label.clone(),
                        job: job.id,
                        at_ns: fa,
                        replaced: victims.len(),
                    });
                    f.timeline.push(HealthEvent {
                        kind: "dropout".into(),
                        member,
                        chip: self.profiles[member].label.clone(),
                        at_ns: fa,
                        job: job.id,
                    });
                    f.replaced_jobs += victims.len();
                    dropped_at = Some(fa);
                }
            }
        }
        if let Some(fa) = dropped_at {
            for j in victims {
                let (_, s, _) = self.intervals[j].take().expect("victim has an interval");
                let prev = self.assignments[j].take().expect("victim was placed");
                self.place(
                    jobs,
                    j,
                    prev.replacements + 1,
                    prev.wasted_ns + (fa - s).max(0.0),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::batch_of;

    fn cost() -> CostModel {
        CostModel::table1_defaults()
    }

    #[test]
    fn plan_is_deterministic_and_spreads_load() {
        let fleet = FleetConfig::table1(4);
        let base = cost();
        let policy = SchedPolicy::default();
        let batch = batch_of(
            &["a & b", "a | b", "a ^ b", "!(a & b & c)", "a & b & c & d"],
            16,
            1,
        );
        let planner = Planner::new(&fleet, &base, &policy);
        let p1 = planner.plan(&batch).unwrap();
        let p2 = planner.plan(&batch).unwrap();
        assert_eq!(p1, p2, "planning is pure");
        assert_eq!(p1.assignments.len(), 5);
        let used: std::collections::BTreeSet<usize> =
            p1.assignments.iter().map(|a| a.member).collect();
        assert!(used.len() > 1, "multiple chips used: {used:?}");
        assert_eq!(p1.profiles.len(), 4);
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let fleet = FleetConfig {
            modules: vec![dram_core::config::table1().remove(0)],
            chips: 0,
            seed: 0,
        };
        let base = cost();
        let policy = SchedPolicy::default();
        let batch = batch_of(&["a & b"], 8, 0);
        assert_eq!(
            Planner::new(&fleet, &base, &policy).plan(&batch),
            Err(SchedError::EmptyFleet)
        );
    }

    #[test]
    fn chip_profiles_derate_wide_gates_more() {
        let fleet = FleetConfig::table1(8);
        let base = cost();
        for (i, spec) in fleet.specs().iter().enumerate() {
            let p = ChipProfile::derive(i, spec, &base);
            assert!((0.0..3.0).contains(&p.strain), "strain {}", p.strain);
            let n2 = p.cost.success(dram_core::LogicOp::And, 2);
            let n16 = p.cost.success(dram_core::LogicOp::And, 16);
            assert!(n2 <= base.success(dram_core::LogicOp::And, 2) + 1e-12);
            if p.strain > 0.05 {
                let base_ratio = base.success(dram_core::LogicOp::And, 16)
                    / base.success(dram_core::LogicOp::And, 2);
                assert!(
                    n16 / n2 < base_ratio + 1e-12,
                    "wide gates derate at least as much"
                );
            }
            assert_eq!(
                p.cost.not_success(),
                base.not_success(),
                "NOT keeps the population rate"
            );
        }
    }

    #[test]
    fn strict_threshold_remaps_or_flags() {
        let fleet = FleetConfig::table1(3);
        let base = cost();
        // Impossible threshold: nothing passes; everything is flagged
        // (or remapped if narrowing somehow reached 1.01 — it cannot).
        let strict = SchedPolicy {
            min_success: 1.01,
            ..SchedPolicy::default()
        };
        let batch = batch_of(&["a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p"], 8, 3);
        let plan = Planner::new(&fleet, &base, &strict).plan(&batch).unwrap();
        assert_eq!(plan.assignments[0].admission, Admission::Flagged);
        // Flagging still picks the best program for the chip.
        let no_remap = SchedPolicy {
            min_success: 1.01,
            allow_remap: false,
            ..SchedPolicy::default()
        };
        let plan2 = Planner::new(&fleet, &base, &no_remap).plan(&batch).unwrap();
        assert_eq!(plan2.assignments[0].admission, Admission::Flagged);
        assert_eq!(
            plan2.assignments[0].program,
            batch.jobs()[0].program,
            "remap disabled: the submitted program runs"
        );
    }

    #[test]
    fn waves_roll_over_on_a_saturated_chip() {
        let fleet = FleetConfig::table1(1);
        let base = cost();
        let g = fleet.spec(0).cfg.geometry();
        // Shrink every subarray to exactly one 3-row slot so the chip
        // holds `subarrays_per_bank` jobs per wave.
        let policy = SchedPolicy {
            scratch_rows: g.rows_per_subarray() - 3,
            ..SchedPolicy::default()
        };
        let slots_per_chip = g.subarrays_per_bank();
        let exprs: Vec<&str> = std::iter::repeat_n("a & b", slots_per_chip + 2).collect();
        let batch = batch_of(&exprs, 4, 9);
        let plan = Planner::new(&fleet, &base, &policy).plan(&batch).unwrap();
        assert!(
            plan.waves >= 2,
            "expected a wave rollover, got {}",
            plan.waves
        );
        let first_rolled = plan
            .assignments
            .iter()
            .find(|a| a.wave == 1)
            .expect("a wave-1 assignment exists");
        assert_eq!(
            first_rolled.slot.subarray, 0,
            "rollover recycles from the start"
        );
        // A job that fits no member errors clearly, reporting the
        // fleet-wide largest slot (placement already skipped every
        // member that could never hold it).
        let impossible = batch_of(&["a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p&q&r&s&t"], 4, 9);
        match Planner::new(&fleet, &base, &policy).plan(&impossible) {
            Err(SchedError::JobTooLarge { rows, largest, .. }) => {
                assert_eq!(largest, 3, "fleet-wide largest idle slot");
                assert!(rows > largest);
            }
            other => panic!("expected JobTooLarge, got {other:?}"),
        }
    }

    /// A script-only fault plan (hazard disabled) so tests control the
    /// dropout time exactly.
    fn scripted_faults(member: usize, after_ns: f64) -> dram_core::FaultPlan {
        dram_core::FaultPlan {
            aging: dram_core::AgingPolicy {
                acceleration: 0.0,
                ..dram_core::AgingPolicy::default()
            },
            dropouts: vec![dram_core::PlannedDropout { member, after_ns }],
            ..dram_core::FaultPlan::demo()
        }
    }

    fn mix_batch(seed: u64) -> crate::queue::Batch {
        let exprs: Vec<&str> = ["a & b", "a | b", "a ^ b", "!(a & b & c)", "a & b & c & d"]
            .into_iter()
            .cycle()
            .take(20)
            .collect();
        batch_of(&exprs, 16, seed)
    }

    #[test]
    fn no_fault_plan_leaves_assignments_underated() {
        let fleet = FleetConfig::table1(3);
        let base = cost();
        let plan = Planner::new(&fleet, &base, &SchedPolicy::default())
            .plan(&mix_batch(7))
            .unwrap();
        assert!(plan.health.is_none());
        for a in &plan.assignments {
            assert_eq!(a.success_exp, 1.0);
            assert_eq!(a.replacements, 0);
            assert_eq!(a.wasted_ns, 0.0);
        }
    }

    #[test]
    fn scripted_dropout_replaces_in_flight_jobs_deterministically() {
        let fleet = FleetConfig::table1(3);
        let base = cost();
        let policy = SchedPolicy {
            faults: Some(scripted_faults(1, 400.0)),
            ..SchedPolicy::default()
        };
        let planner = Planner::new(&fleet, &base, &policy);
        let plan = planner.plan(&mix_batch(7)).unwrap();
        assert_eq!(
            plan,
            planner.plan(&mix_batch(7)).unwrap(),
            "planning is pure"
        );
        let health = plan.health.as_ref().expect("fault plan yields health");
        assert_eq!(health.dropouts.len(), 1, "{:?}", health.dropouts);
        let d = &health.dropouts[0];
        assert_eq!(d.member, 1);
        assert_eq!(d.at_ns, 400.0);
        assert!(d.replaced >= 1, "a mid-job death re-places its victims");
        assert_eq!(health.replaced_jobs, d.replaced);
        assert_eq!(
            health.members[1].dropped_at_ns,
            Some(400.0),
            "ledger mirrors the timeline"
        );
        let replaced: Vec<&Assignment> = plan
            .assignments
            .iter()
            .filter(|a| a.replacements > 0)
            .collect();
        assert_eq!(replaced.len(), d.replaced);
        for a in &replaced {
            assert_ne!(a.member, 1, "victims land on surviving members");
            assert!(a.wasted_ns >= 0.0);
        }
        assert!(
            replaced.iter().map(|a| a.wasted_ns).sum::<f64>() > 0.0,
            "time burned on the dead chip is charged"
        );
        // Work placed on member 1 before the death stays there.
        let kept = plan.assignments.iter().filter(|a| a.member == 1).count();
        assert!(kept >= 1, "completed jobs are not re-placed");
    }

    #[test]
    fn disturbance_threshold_schedules_mitigation_bandwidth() {
        let fleet = FleetConfig::table1(2);
        let base = cost();
        let mut faults = scripted_faults(0, f64::MAX);
        faults.dropouts.clear();
        faults.disturbance.threshold = 48; // a couple of jobs per zone
        let policy = SchedPolicy {
            faults: Some(faults),
            ..SchedPolicy::default()
        };
        let plan = Planner::new(&fleet, &base, &policy)
            .plan(&mix_batch(3))
            .unwrap();
        let health = plan.health.as_ref().unwrap();
        assert!(
            health.total_mitigations() > 0,
            "threshold 48 must trigger mitigations: {health:?}"
        );
        assert!(health.total_mitigation_ns() > 0.0);
        assert_eq!(health.dropouts.len(), 0);
        assert!(
            health.total_disturbance() > 0,
            "activations are charged to the ledger"
        );
        // Pressure derates at least one assignment past 1.0.
        assert!(plan.assignments.iter().any(|a| a.success_exp > 1.0));
    }

    #[test]
    fn dead_fleet_is_reported_as_exhausted() {
        let fleet = FleetConfig::table1(1);
        let base = cost();
        let policy = SchedPolicy {
            faults: Some(scripted_faults(0, 1.0)),
            ..SchedPolicy::default()
        };
        match Planner::new(&fleet, &base, &policy).plan(&mix_batch(1)) {
            Err(SchedError::FleetExhausted { .. }) => {}
            other => panic!("expected FleetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn effective_shards_clamp() {
        let p = SchedPolicy::default();
        assert_eq!(p.clone().with_shards(8).effective_shards(3), 3);
        assert_eq!(p.clone().with_shards(2).effective_shards(64), 2);
        assert!(p.clone().with_shards(0).effective_shards(64) >= 1);
        assert_eq!(p.clone().with_shards(5).effective_shards(0), 1);
        assert_eq!(p.with_shards(4).effective_workers(5), 3);
    }
}
