//! # fcsched — throughput-grade scheduling of FCDRAM programs
//!
//! PR1–3 built the execution engine, the chip fleet, and the compiler;
//! this crate is the layer that serves *many* workloads at once: it
//! accepts batches of synthesized programs ([`fcsynth::Mapping`] jobs
//! with packed operands), plans them onto a [`dram_core::FleetConfig`]
//! fleet, and executes the plan over scoped worker threads.
//!
//! The pipeline, one module each:
//!
//! 1. **[`queue`]** — validated job batches in submission order;
//! 2. **[`planner`]** — placement (least-loaded chip + a
//!    `(subarray, row-range)` slot lease from
//!    [`dram_core::FleetSlots`], with wave rollover when a chip
//!    saturates) and reliability-aware admission: every job is
//!    re-priced under its *assigned chip's* derated [`CostModel`];
//!    jobs below the policy threshold are re-mapped to narrower
//!    native gates or flagged;
//! 3. **[`executor`]** — functional execution through the unified
//!    [`fcexec`] engine, generic over any [`fcexec::ExecBackend`]
//!    (host-exact results on every shipping backend), plus
//!    deterministic per-operation retry modeling against the chip's
//!    success rates, sharded over scoped threads with outcomes
//!    reassembled in submission order; the policy's
//!    [`fcexec::BackendKind`] selects cost-model pricing (`vm`) or
//!    cycle-accurate command-schedule latency at each chip's speed
//!    bin (`bender`);
//! 4. **[`report`]** — success/retry/latency/energy rollups
//!    ([`fcdram::SuccessAccumulator`]), exact latency percentiles,
//!    per-chip utilization, and a deterministic JSON view.
//!
//! ## Fidelity invariant
//!
//! *Scheduling never changes answers.* A job's result bits are a pure
//! function of its program and operands — bit-identical for every
//! shard count and fleet layout, and equal to serial per-job execution
//! on a fleet of one (`tests/sched_equivalence.rs` pins this, and the
//! CI determinism gate diffs the report bytes). Retry accounting is a
//! pure function of `(batch seed, jobs, fleet, policy)`.
//!
//! ## Quickstart
//!
//! ```
//! use fcsched::{serve_batch, Batch, SchedPolicy};
//! use dram_core::FleetConfig;
//! use fcsynth::CostModel;
//!
//! let cost = CostModel::table1_defaults();
//! let majority = fcsynth::compile("(a & b) | (a & c) | (b & c)", &cost, 16)?;
//! let lanes = 64;
//! let operands: Vec<fcdram::PackedBits> = (0..3)
//!     .map(|i| {
//!         let mut p = fcdram::PackedBits::zeros(lanes);
//!         for l in 0..lanes {
//!             p.set(l, dram_core::math::mix2(i, l as u64) & 1 == 1);
//!         }
//!         p
//!     })
//!     .collect();
//! let mut batch = Batch::new(0xF1EE7);
//! for _ in 0..8 {
//!     batch.push("majority", &majority.mapping, operands.clone(), lanes)?;
//! }
//! let report = serve_batch(
//!     &FleetConfig::table1(4),
//!     &cost,
//!     &SchedPolicy::default(),
//!     &batch,
//! )?;
//! assert_eq!(report.jobs(), 8);
//! assert!(report.native_ops() >= 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod executor;
pub mod health;
pub mod planner;
pub mod queue;
pub mod report;

pub use error::{Result, SchedError};
pub use executor::{
    execute_plan, execute_plan_traced, fused_jobs, ideal_cost, run_job_on, run_job_recorded,
    serve_batch, JobOutcome, StepTrace, TraceCtx,
};
pub use health::{Dropout, FleetHealth, HealthEvent, MemberHealth};
pub use planner::{Admission, Assignment, ChipProfile, Plan, Planner, SchedPolicy};
pub use queue::{Batch, Job, JobId};
pub use report::{digest, BatchReport, LatencySummary, MemberUsage};

// Re-exported for doc examples and downstream convenience.
pub use dram_core::{AgingPolicy, DisturbancePolicy, FaultPlan, PlannedDropout};
pub use fcexec::BackendKind;
pub use fcsynth::CostModel;

/// Shared test fixtures (the one place the operand-derivation
/// convention for test batches lives).
#[cfg(test)]
pub(crate) mod testutil {
    use crate::queue::Batch;
    use fcdram::PackedBits;
    use fcsynth::CostModel;

    /// Builds a batch whose operand *data* derives from `data_seed`
    /// while retry draws derive from `batch_seed` — so tests can vary
    /// one without the other.
    pub(crate) fn batch_of_seeded(
        exprs: &[&str],
        lanes: usize,
        data_seed: u64,
        batch_seed: u64,
    ) -> Batch {
        let cost = CostModel::table1_defaults();
        let mut b = Batch::new(batch_seed);
        for (i, text) in exprs.iter().enumerate() {
            let compiled = fcsynth::compile(text, &cost, 16).unwrap();
            let n = compiled.circuit.inputs().len();
            let ops: Vec<PackedBits> = (0..n)
                .map(|k| {
                    let mut p = PackedBits::zeros(lanes);
                    for l in 0..lanes {
                        p.set(
                            l,
                            dram_core::math::mix3(data_seed ^ i as u64, k as u64, l as u64) & 1
                                == 1,
                        );
                    }
                    p
                })
                .collect();
            b.push(*text, &compiled.mapping, ops, lanes).unwrap();
        }
        b
    }

    /// [`batch_of_seeded`] with one seed for both roles.
    pub(crate) fn batch_of(exprs: &[&str], lanes: usize, seed: u64) -> Batch {
        batch_of_seeded(exprs, lanes, seed, seed)
    }
}
