//! Fleet-health accounting for fault-injected serving sessions.
//!
//! When a [`crate::SchedPolicy`] carries a [`dram_core::FaultPlan`],
//! the planner tracks — per fleet member — read-disturbance pressure,
//! mitigation bandwidth stolen from the slot leases, hazard-rate
//! lifetimes, reliability diversions, and chip dropouts with their
//! deterministic in-flight job re-placements. Everything in this
//! module is a pure function of `(fleet, batch, policy)`: like the
//! plan itself it is bit-identical across shard counts *and* across
//! execution backends (the planner prices load with the cost model,
//! never the backend's latency), which is what lets CI byte-diff the
//! health tables across all four `{vm,bender} × {1,5}-shard` runs.

use serde::{Deserialize, Serialize};

/// One fleet member's degradation ledger over a served session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberHealth {
    /// Fleet member index.
    pub member: usize,
    /// The member's display label (`module/cN`).
    pub chip: String,
    /// MIL-HDBK-217F part failure rate, failures per 10⁶ hours.
    pub hazard_per_mhours: f64,
    /// Deterministic modeled failure time (served nanoseconds), when
    /// it falls inside the fault horizon.
    pub fail_at_ns: Option<f64>,
    /// Lifetime activation-rows charged to the member's subarrays.
    pub disturbance_acts: u64,
    /// Mitigation operations the planner scheduled on the member.
    pub mitigations: u64,
    /// Serving bandwidth the mitigations stole, nanoseconds.
    pub mitigation_ns: f64,
    /// Placements diverted away from this member because wear derating
    /// pushed a job below the admission threshold.
    pub diverted: usize,
    /// The job being placed when the member dropped out, if it did.
    pub dropped_at_job: Option<usize>,
    /// Modeled time of the dropout, nanoseconds.
    pub dropped_at_ns: Option<f64>,
}

/// One chip death during a served session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dropout {
    /// Fleet member that died.
    pub member: usize,
    /// The member's display label.
    pub chip: String,
    /// The job whose placement pushed the member past its failure
    /// time.
    pub job: usize,
    /// Modeled time of death, nanoseconds.
    pub at_ns: f64,
    /// In-flight jobs deterministically re-placed onto surviving
    /// members.
    pub replaced: usize,
}

/// One entry of the unified fault timeline: a mitigation, diversion,
/// or dropout, stamped with the member and the modeled time it
/// happened. The trace layer turns these into `fault`-category
/// instants, which is what gives the `serve-dropouts` table ordering
/// context on the batch timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthEvent {
    /// Event kind: `"mitigation"`, `"diversion"`, or `"dropout"`.
    pub kind: String,
    /// Fleet member the event happened on.
    pub member: usize,
    /// The member's display label.
    pub chip: String,
    /// Modeled time of the event on the member's load clock,
    /// nanoseconds.
    pub at_ns: f64,
    /// The job being placed when the event fired.
    pub job: usize,
}

/// The fleet-wide health report of one fault-injected session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetHealth {
    /// Seed of the [`dram_core::FaultPlan`] that produced this ledger
    /// (replaying it with the same fleet and batch reproduces every
    /// number below).
    pub plan_seed: u64,
    /// Per-member ledgers, in fleet order (every member, even unused).
    pub members: Vec<MemberHealth>,
    /// Dropout timeline, in occurrence (submission-time) order.
    pub dropouts: Vec<Dropout>,
    /// Total jobs re-placed off dying chips.
    pub replaced_jobs: usize,
    /// Unified fault timeline (mitigations, diversions, dropouts), in
    /// occurrence order — a pure function of the plan, so
    /// byte-identical on every serving configuration.
    pub timeline: Vec<HealthEvent>,
}

impl FleetHealth {
    /// Mitigations scheduled across the fleet.
    pub fn total_mitigations(&self) -> u64 {
        self.members.iter().map(|m| m.mitigations).sum()
    }

    /// Lifetime activation-rows charged across the fleet.
    pub fn total_disturbance(&self) -> u64 {
        self.members.iter().map(|m| m.disturbance_acts).sum()
    }

    /// Serving bandwidth stolen by mitigation across the fleet,
    /// nanoseconds.
    pub fn total_mitigation_ns(&self) -> f64 {
        self.members.iter().map(|m| m.mitigation_ns).sum()
    }

    /// Placements diverted by wear derating across the fleet.
    pub fn total_diverted(&self) -> usize {
        self.members.iter().map(|m| m.diverted).sum()
    }

    /// Serializes the health report as pretty JSON — the artifact the
    /// CI determinism gate byte-diffs across shard counts and
    /// backends.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("health report serializes")
    }
}
