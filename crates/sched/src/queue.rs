//! The job queue: validated batches of synthesized programs.
//!
//! A [`Job`] is one compiled FCDRAM program ([`fcsynth::SynthProgram`])
//! plus its bit-packed input operands — one [`PackedBits`] row per
//! program input, one SIMD lane per batch element. A [`Batch`] is the
//! unit of submission: jobs keep their submission order (job ids are
//! submission indices), and every scheduler guarantee — bit-identical
//! results for every shard count and fleet layout, deterministic retry
//! accounting — is stated per batch.

use crate::error::{Result, SchedError};
use fcdram::PackedBits;
use fcsynth::{Mapping, SynthProgram};

/// Submission index of a job within its batch.
pub type JobId = usize;

/// One schedulable unit: a synthesized program with staged operands.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Submission index within the batch.
    pub id: JobId,
    /// Caller-supplied display label (e.g. the source expression).
    pub label: String,
    /// The program as submitted (the planner may narrow a copy for an
    /// unreliable chip; the submitted program is never mutated). The
    /// mapper's own success prediction is deliberately *not* carried:
    /// the planner always re-prices under the assigned chip's model.
    pub program: SynthProgram,
    /// Packed operands, one per program input, `lanes` bits each.
    pub operands: Vec<PackedBits>,
    /// SIMD lanes (batch elements) this job computes at once.
    pub lanes: usize,
}

/// An ordered batch of jobs plus the batch-level seed every
/// deterministic draw (retry Bernoulli trials) derives from.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    seed: u64,
    jobs: Vec<Job>,
}

impl Batch {
    /// An empty batch. All retry draws derive from `seed`, so two
    /// batches with the same seed, jobs, and fleet account
    /// identically.
    pub fn new(seed: u64) -> Batch {
        Batch {
            seed,
            jobs: Vec::new(),
        }
    }

    /// The batch seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Submits one job: a compiled [`Mapping`] plus its packed
    /// operands (`lanes` bits per operand; pass the intended lane
    /// count explicitly so constant programs with zero operands are
    /// well-formed too). Returns the job's submission index.
    ///
    /// # Errors
    ///
    /// Fails when the operand count does not match the program's input
    /// count or any operand's lane count differs from `lanes`.
    pub fn push(
        &mut self,
        label: impl Into<String>,
        mapping: &Mapping,
        operands: Vec<PackedBits>,
        lanes: usize,
    ) -> Result<JobId> {
        let label = label.into();
        if operands.len() != mapping.program.inputs.len() {
            return Err(SchedError::OperandMismatch {
                job: label,
                expected: mapping.program.inputs.len(),
                got: operands.len(),
            });
        }
        if let Some(bad) = operands.iter().find(|o| o.len() != lanes) {
            return Err(SchedError::RaggedLanes {
                job: label,
                expected: lanes,
                got: bad.len(),
            });
        }
        let id = self.jobs.len();
        self.jobs.push(Job {
            id,
            label,
            program: mapping.program.clone(),
            operands,
            lanes,
        });
        Ok(id)
    }

    /// The jobs, in submission order.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs submitted.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total native operations across all submitted programs.
    pub fn native_ops(&self) -> usize {
        self.jobs.iter().map(|j| j.program.steps.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcsynth::CostModel;

    fn mapping(text: &str) -> Mapping {
        let cost = CostModel::table1_defaults();
        fcsynth::compile(text, &cost, 16).unwrap().mapping
    }

    fn operands(n: usize, lanes: usize) -> Vec<PackedBits> {
        (0..n)
            .map(|i| {
                let mut p = PackedBits::zeros(lanes);
                for l in 0..lanes {
                    p.set(l, (i + l) % 3 == 0);
                }
                p
            })
            .collect()
    }

    #[test]
    fn push_assigns_submission_order_ids() {
        let mut b = Batch::new(7);
        let m = mapping("a & b");
        assert_eq!(b.push("j0", &m, operands(2, 8), 8).unwrap(), 0);
        assert_eq!(b.push("j1", &m, operands(2, 8), 8).unwrap(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.seed(), 7);
        assert_eq!(b.native_ops(), 2);
        assert_eq!(b.jobs()[1].id, 1);
    }

    #[test]
    fn operand_validation() {
        let mut b = Batch::new(0);
        let m = mapping("a & b & c");
        assert!(matches!(
            b.push("short", &m, operands(2, 8), 8),
            Err(SchedError::OperandMismatch {
                expected: 3,
                got: 2,
                ..
            })
        ));
        let mut ragged = operands(3, 8);
        ragged[1] = PackedBits::zeros(9);
        assert!(matches!(
            b.push("ragged", &m, ragged, 8),
            Err(SchedError::RaggedLanes {
                expected: 8,
                got: 9,
                ..
            })
        ));
        assert!(b.is_empty(), "rejected jobs are not enqueued");
    }

    #[test]
    fn constant_job_with_zero_operands() {
        let mut b = Batch::new(0);
        let m = mapping("a & !a");
        assert_eq!(m.program.inputs.len(), 1, "input table is kept");
        // A truly 0-input mapping: constant expression.
        let cost = CostModel::table1_defaults();
        let c = fcsynth::compile("1", &cost, 16).unwrap().mapping;
        assert!(b.push("const", &c, Vec::new(), 16).is_ok());
        assert_eq!(b.jobs()[0].lanes, 16);
    }
}
