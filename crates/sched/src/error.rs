//! Scheduler error type.
//!
//! Execution failures arrive as [`fcexec::ExecError`] — the one error
//! type every backend reports through — and are carried intact rather
//! than flattened to strings, so callers can still see whether a
//! batch died to row exhaustion, a lane mismatch, or a command-stream
//! violation.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SchedError>;

/// Everything that can go wrong between submission and the report.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A job's operand count does not match its program's input count.
    OperandMismatch {
        /// Job label.
        job: String,
        /// Program input count.
        expected: usize,
        /// Operands supplied.
        got: usize,
    },
    /// A job's operands disagree on lane count.
    RaggedLanes {
        /// Job label.
        job: String,
        /// Declared lane count.
        expected: usize,
        /// Offending operand's lane count.
        got: usize,
    },
    /// The fleet has no chips to schedule onto.
    EmptyFleet,
    /// A job's live-row footprint exceeds every subarray of every
    /// fleet member, even when the chips are idle.
    JobTooLarge {
        /// Job label.
        job: String,
        /// Rows the job needs at once.
        rows: usize,
        /// Largest lease any fleet member can ever satisfy.
        largest: usize,
    },
    /// Every fleet member has dropped out under the active fault plan
    /// before this job could be (re-)placed.
    FleetExhausted {
        /// Job label.
        job: String,
    },
    /// An execution-backend failure during a job's run.
    Exec(fcexec::ExecError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::OperandMismatch { job, expected, got } => {
                write!(
                    f,
                    "job '{job}': program wants {expected} operand(s), got {got}"
                )
            }
            SchedError::RaggedLanes { job, expected, got } => {
                write!(
                    f,
                    "job '{job}': operand has {got} lanes, batch declared {expected}"
                )
            }
            SchedError::EmptyFleet => write!(f, "cannot schedule onto an empty fleet"),
            SchedError::JobTooLarge { job, rows, largest } => write!(
                f,
                "job '{job}' needs {rows} simultaneous rows; the fleet's largest \
                 subarray slot is {largest}"
            ),
            SchedError::FleetExhausted { job } => write!(
                f,
                "job '{job}': every fleet member dropped out under the fault plan"
            ),
            SchedError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fcexec::ExecError> for SchedError {
    fn from(e: fcexec::ExecError) -> Self {
        SchedError::Exec(e)
    }
}
