//! Batch outcome accounting: rollups, percentiles, deterministic JSON.
//!
//! Everything in a [`BatchReport`] except the `shards` field is a pure
//! function of `(fleet, batch, policy)`; [`BatchReport::to_json`]
//! deliberately excludes `shards` and any wall-clock measurement, so
//! the serialized report is **byte-identical across shard counts** —
//! the property the CI determinism gate diffs for. Wall-clock
//! throughput belongs next to the report (the `characterize serve`
//! CLI prints it to stderr), never inside it.

use crate::executor::JobOutcome;
use crate::health::FleetHealth;
use crate::planner::Admission;
use fcdram::{PackedBits, SuccessAccumulator};
use serde::{Deserialize, Serialize};

/// A 64-bit order-sensitive digest of a result row: what the JSON
/// report records instead of the (arbitrarily wide) result bits.
pub fn digest(bits: &PackedBits) -> u64 {
    let mut h = 0x00D1_6E57_u64 ^ (bits.len() as u64);
    for w in bits.words() {
        h = dram_core::math::mix2(h, *w);
    }
    h
}

/// Exact modeled-latency distribution over a batch's jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean per-job modeled latency, nanoseconds.
    pub mean_ns: f64,
    /// Median (nearest rank).
    pub p50_ns: f64,
    /// 90th percentile (nearest rank).
    pub p90_ns: f64,
    /// 99th percentile (nearest rank).
    pub p99_ns: f64,
    /// Fastest job.
    pub min_ns: f64,
    /// Slowest job.
    pub max_ns: f64,
}

impl LatencySummary {
    /// Summarizes a set of modeled latencies (nearest-rank
    /// percentiles; all zeros for an empty set). Public because the
    /// `fcserve` daemon's rolling per-tenant SLO windows reuse the
    /// exact same percentile machinery, so live p99 tracking and
    /// batch reports can never disagree on definition.
    pub fn of(mut values: Vec<f64>) -> LatencySummary {
        if values.is_empty() {
            return LatencySummary {
                mean_ns: 0.0,
                p50_ns: 0.0,
                p90_ns: 0.0,
                p99_ns: 0.0,
                min_ns: 0.0,
                max_ns: 0.0,
            };
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let rank = |q: f64| values[((q * (n - 1) as f64).round() as usize).min(n - 1)];
        LatencySummary {
            mean_ns: values.iter().sum::<f64>() / n as f64,
            p50_ns: rank(0.50),
            p90_ns: rank(0.90),
            p99_ns: rank(0.99),
            min_ns: values[0],
            max_ns: values[n - 1],
        }
    }
}

/// Per-fleet-member utilization rollup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberUsage {
    /// Fleet member index.
    pub member: usize,
    /// The member's display label (`module/cN`).
    pub chip: String,
    /// Jobs hosted.
    pub jobs: usize,
    /// Native operations executed (first attempts).
    pub ops: usize,
    /// Retry attempts consumed on this member.
    pub retries: u64,
    /// Jobs flagged by admission control.
    pub flagged: usize,
    /// Summed modeled latency, nanoseconds.
    pub latency_ns: f64,
}

/// The merged outcome of one scheduled batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-job outcomes, in submission order (independent of
    /// sharding).
    pub outcomes: Vec<JobOutcome>,
    /// Worker threads actually used (excluded from [`Self::to_json`]).
    pub shards: usize,
    /// Waves (slot-reuse generations) the plan needed.
    pub waves: usize,
    /// Fleet size the batch was planned onto.
    pub chips: usize,
    /// The batch seed.
    pub seed: u64,
    /// Fleet-health ledger (fault scenarios only).
    pub health: Option<FleetHealth>,
}

impl BatchReport {
    /// Jobs in the batch.
    pub fn jobs(&self) -> usize {
        self.outcomes.len()
    }

    /// Jobs whose every operation passed within the retry budget.
    pub fn succeeded(&self) -> usize {
        self.outcomes.iter().filter(|o| o.succeeded).count()
    }

    /// Jobs flagged by admission control.
    pub fn flagged(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.admission == Admission::Flagged)
            .count()
    }

    /// Jobs re-mapped to narrower gates for their chip.
    pub fn remapped(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.admission, Admission::Remapped(_)))
            .count()
    }

    /// Native operations executed across the batch (first attempts).
    pub fn native_ops(&self) -> usize {
        self.outcomes.iter().map(|o| o.ops).sum()
    }

    /// Retry attempts consumed across the batch.
    pub fn total_retries(&self) -> u64 {
        self.outcomes.iter().map(|o| u64::from(o.retries)).sum()
    }

    /// Jobs with at least one operation left failed after the budget.
    pub fn failed_jobs(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.succeeded).count()
    }

    /// Operations that exhausted the retry budget across the batch.
    pub fn total_failed_ops(&self) -> usize {
        self.outcomes.iter().map(|o| o.failed_ops).sum()
    }

    /// Jobs that consumed at least one retry.
    pub fn retried_jobs(&self) -> usize {
        self.outcomes.iter().filter(|o| o.retries > 0).count()
    }

    /// Re-placements off dying chips across the batch (fault
    /// scenarios; always 0 otherwise).
    pub fn total_replacements(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| u64::from(o.replacements))
            .sum()
    }

    /// Summed modeled latency (submission order, so bit-stable).
    pub fn total_latency_ns(&self) -> f64 {
        self.outcomes.iter().map(|o| o.latency_ns).sum()
    }

    /// Summed modeled energy (submission order, so bit-stable).
    pub fn total_energy_pj(&self) -> f64 {
        self.outcomes.iter().map(|o| o.energy_pj).sum()
    }

    /// Per-job predicted-success rollup (merged in submission order).
    pub fn predicted_success(&self) -> SuccessAccumulator {
        let mut acc = SuccessAccumulator::new();
        acc.extend_from(self.outcomes.iter().map(|o| o.predicted_success));
        acc
    }

    /// Per-job retry-rate rollup: retries over total attempts, one
    /// value in `[0, 1)` per job (0 = clean first-attempt run).
    pub fn retry_rate(&self) -> SuccessAccumulator {
        let mut acc = SuccessAccumulator::new();
        acc.extend_from(self.outcomes.iter().map(|o| {
            let attempts = o.ops as f64 + f64::from(o.retries);
            if attempts > 0.0 {
                f64::from(o.retries) / attempts
            } else {
                0.0
            }
        }));
        acc
    }

    /// Exact per-job modeled-latency distribution.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::of(self.outcomes.iter().map(|o| o.latency_ns).collect())
    }

    /// Per-member utilization, for members that hosted at least one
    /// job, in member order.
    pub fn member_usage(&self) -> Vec<MemberUsage> {
        let mut rows: Vec<MemberUsage> = Vec::new();
        for o in &self.outcomes {
            let row = match rows.iter_mut().find(|r| r.member == o.member) {
                Some(r) => r,
                None => {
                    rows.push(MemberUsage {
                        member: o.member,
                        chip: o.chip.clone(),
                        jobs: 0,
                        ops: 0,
                        retries: 0,
                        flagged: 0,
                        latency_ns: 0.0,
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.jobs += 1;
            row.ops += o.ops;
            row.retries += u64::from(o.retries);
            row.flagged += usize::from(o.admission == Admission::Flagged);
            row.latency_ns += o.latency_ns;
        }
        rows.sort_by_key(|r| r.member);
        rows
    }

    /// Serializes the deterministic view of the report: batch-level
    /// rollups plus one row per job (results as digests). `shards`
    /// and wall-clock are deliberately absent — the bytes must be
    /// identical for every shard count.
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct JsonJob {
            id: usize,
            label: String,
            chip: String,
            wave: usize,
            admission: String,
            succeeded: bool,
            ops: usize,
            retries: u32,
            failed_ops: usize,
            replacements: u32,
            predicted_success: f64,
            latency_ns: f64,
            energy_pj: f64,
            result_digest: u64,
        }
        #[derive(Serialize)]
        struct JsonReport {
            jobs: usize,
            chips: usize,
            waves: usize,
            seed: u64,
            succeeded: usize,
            failed_jobs: usize,
            remapped: usize,
            flagged: usize,
            native_ops: usize,
            retries: u64,
            retried_jobs: usize,
            failed_ops: usize,
            replacements: u64,
            latency_ns: f64,
            energy_pj: f64,
            latency: LatencySummary,
            members: Vec<MemberUsage>,
            health: Option<FleetHealth>,
            outcomes: Vec<JsonJob>,
        }
        let doc = JsonReport {
            jobs: self.jobs(),
            chips: self.chips,
            waves: self.waves,
            seed: self.seed,
            succeeded: self.succeeded(),
            failed_jobs: self.failed_jobs(),
            remapped: self.remapped(),
            flagged: self.flagged(),
            native_ops: self.native_ops(),
            retries: self.total_retries(),
            retried_jobs: self.retried_jobs(),
            failed_ops: self.total_failed_ops(),
            replacements: self.total_replacements(),
            latency_ns: self.total_latency_ns(),
            energy_pj: self.total_energy_pj(),
            latency: self.latency(),
            members: self.member_usage(),
            health: self.health.clone(),
            outcomes: self
                .outcomes
                .iter()
                .map(|o| JsonJob {
                    id: o.job,
                    label: o.label.clone(),
                    chip: o.chip.clone(),
                    wave: o.wave,
                    admission: o.admission.to_string(),
                    succeeded: o.succeeded,
                    ops: o.ops,
                    retries: o.retries,
                    failed_ops: o.failed_ops,
                    replacements: o.replacements,
                    predicted_success: o.predicted_success,
                    latency_ns: o.latency_ns,
                    energy_pj: o.energy_pj,
                    result_digest: digest(&o.result),
                })
                .collect(),
        };
        serde_json::to_string_pretty(&doc).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::serve_batch;
    use crate::planner::SchedPolicy;
    use crate::testutil::batch_of;
    use dram_core::FleetConfig;
    use fcsynth::CostModel;

    fn small_report(shards: usize) -> BatchReport {
        let cost = CostModel::table1_defaults();
        let batch = batch_of(
            &["a & b", "a ^ b", "!(a | b | c)", "a&b&c&d&e&f&g&h"],
            16,
            5,
        );
        serve_batch(
            &FleetConfig::table1(2),
            &cost,
            &SchedPolicy::default().with_shards(shards),
            &batch,
        )
        .unwrap()
    }

    #[test]
    fn rollups_are_consistent() {
        let r = small_report(1);
        assert_eq!(r.jobs(), 4);
        assert_eq!(
            r.succeeded() + r.outcomes.iter().filter(|o| !o.succeeded).count(),
            4
        );
        assert_eq!(r.native_ops(), r.outcomes.iter().map(|o| o.ops).sum());
        assert_eq!(r.predicted_success().count(), 4);
        assert_eq!(r.retry_rate().count(), 4);
        let lat = r.latency();
        assert!(lat.min_ns <= lat.p50_ns && lat.p50_ns <= lat.p99_ns);
        assert!(lat.p99_ns <= lat.max_ns);
        let usage = r.member_usage();
        assert_eq!(usage.iter().map(|u| u.jobs).sum::<usize>(), 4);
        assert_eq!(usage.iter().map(|u| u.ops).sum::<usize>(), r.native_ops());
    }

    #[test]
    fn json_is_shard_invariant_and_excludes_shards() {
        let serial = small_report(1);
        let sharded = small_report(3);
        assert_ne!(serial.shards, sharded.shards);
        assert_eq!(
            serial.to_json(),
            sharded.to_json(),
            "JSON must be byte-identical across shard counts"
        );
        assert!(!serial.to_json().contains("\"shards\""));
    }

    #[test]
    fn digest_distinguishes_rows() {
        let mut a = PackedBits::zeros(70);
        let b = a.clone();
        assert_eq!(digest(&a), digest(&b));
        a.set(69, true);
        assert_ne!(digest(&a), digest(&b));
        assert_ne!(
            digest(&PackedBits::zeros(64)),
            digest(&PackedBits::zeros(65))
        );
    }

    #[test]
    fn empty_latency_summary_is_safe() {
        let l = LatencySummary::of(Vec::new());
        assert_eq!(l.mean_ns, 0.0);
        assert_eq!(l.max_ns, 0.0);
    }
}
