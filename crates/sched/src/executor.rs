//! The sharded executor: runs a planned batch and accounts for it.
//!
//! ## Execution model
//!
//! Jobs run through the unified [`fcexec`] engine, generically over
//! any [`ExecBackend`] ([`run_job_on`]); the shipping configurations
//! are selected by [`SchedPolicy::backend`]:
//!
//! * [`BackendKind::Vm`] — every job runs on its own
//!   `SimdVm<HostSubstrate>` (the workspace's golden model) and is
//!   priced by the assigned chip's derated cost model.
//! * [`BackendKind::Bender`] — the same host-exact engine wrapped in
//!   [`fcexec::ScheduleTimed`]: per-operation latency is the
//!   *cycle-accurate DDR4 command schedule* of each step at the
//!   assigned chip's speed bin (the schedule the `fcexec`
//!   `BenderBackend` executes), so fleets of mixed speed bins serve
//!   at command-schedule fidelity.
//!
//! On every backend a job's output bits are a pure function of its
//! program and operands — independent of the assigned chip, the fleet
//! layout, and the shard count. That is the scheduler's fidelity
//! invariant: *scheduling never changes answers*
//! (`tests/sched_equivalence.rs`), and it is why batch reports are
//! byte-identical across backends modulo the declared latency-model
//! fields (per-job `latency_ns` and every rollup derived from it).
//!
//! Reliability is modeled on top, per native operation: each executed
//! step draws a deterministic Bernoulli trial against the assigned
//! chip's derated success rate ([`crate::planner::ChipProfile`]),
//! keyed by `(batch seed, job id, step, attempt)` — identical across
//! backends. Failed draws consume the job's retry budget (latency and
//! energy are charged per attempt); an exhausted budget marks the
//! operation — and the job — as failed while execution continues, so
//! one bad gate does not silence the rest of the accounting.
//!
//! ## Sharding discipline
//!
//! Jobs are split into contiguous submission-order chunks, one scoped
//! worker thread per chunk (the PR2 fleet-sweep discipline); outcomes
//! are reassembled in submission order. Per-job work depends only on
//! `(job, assignment, profile, batch seed, backend)`, so the report is
//! bit-identical for every shard count — threading is purely a
//! wall-clock optimization.

use crate::error::Result;
use crate::planner::{Admission, Assignment, Plan, SchedPolicy};
use crate::queue::{Batch, Job, JobId};
use crate::report::BatchReport;
use dram_core::math::{hash_to_unit, mix3};
use fcdram::PackedBits;
use fcexec::{BackendKind, ExecBackend, ScheduleTimed};
use fcsynth::ProgramCost;
use simdram::{HostSubstrate, SimdVm};

/// Everything measured about one executed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job (submission index).
    pub job: JobId,
    /// The job's display label.
    pub label: String,
    /// Fleet member that hosted the job.
    pub member: usize,
    /// The member's display label (`module/cN`).
    pub chip: String,
    /// The member's wave the job ran in.
    pub wave: usize,
    /// Admission outcome.
    pub admission: Admission,
    /// Whether every operation passed within the retry budget.
    pub succeeded: bool,
    /// Native operations executed (first attempts).
    pub ops: usize,
    /// Retry attempts consumed.
    pub retries: u32,
    /// Operations that exhausted the budget and stayed failed.
    pub failed_ops: usize,
    /// Times the job was re-placed off a dying chip before this run
    /// (fault scenarios only; each one cost a unit of retry budget).
    pub replacements: u32,
    /// Predicted success under the chip's model (the admission price).
    pub predicted_success: f64,
    /// Modeled latency including retries, nanoseconds.
    pub latency_ns: f64,
    /// Modeled energy including retries, picojoules.
    pub energy_pj: f64,
    /// The job's result bits (host-exact).
    pub result: PackedBits,
}

/// One step of a recorded job execution, as the trace layer sees it.
///
/// Every field is derived from the cost model, the step shape, and the
/// deterministic retry draws — never from
/// [`ExecBackend::step_latency_ns`] — so recorded traces are
/// byte-identical across backends (determinism invariant #4).
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// Op-shape name (`and16`, `nor2`, `not`).
    pub name: String,
    /// Cost-model latency of one attempt, nanoseconds.
    pub model_ns: f64,
    /// Cost-model energy of one attempt, picojoules.
    pub energy_pj: f64,
    /// Attempts executed (1 + retries spent on this step).
    pub attempts: u32,
    /// Modeled device activations per attempt.
    pub acts: u64,
    /// Whether the step exhausted the budget and stayed failed.
    pub failed: bool,
}

/// Runs one job on `backend` under its assigned chip profile — the
/// backend-generic core every serving configuration calls. Pure
/// function of `(job, assignment, profile cost, batch_seed, backend)`.
///
/// Per-step latency comes from [`ExecBackend::step_latency_ns`] when
/// the backend declares one (command-schedule fidelity), from the
/// chip's cost model otherwise; success probabilities and energy are
/// always the cost model's.
///
/// # Errors
///
/// Propagates backend failures (row exhaustion, lane mismatch).
pub fn run_job_on<B: ExecBackend>(
    backend: &mut B,
    job: &Job,
    asg: &Assignment,
    profile: &crate::planner::ChipProfile,
    retry_budget: u32,
    batch_seed: u64,
) -> Result<JobOutcome> {
    run_job_on_rec(backend, job, asg, profile, retry_budget, batch_seed, None).map(|(o, _)| o)
}

/// [`run_job_on`] with per-step trace records: the observability entry
/// point. The outcome is bit-identical to the unrecorded run.
///
/// # Errors
///
/// Propagates backend failures (row exhaustion, lane mismatch).
pub fn run_job_recorded<B: ExecBackend>(
    backend: &mut B,
    job: &Job,
    asg: &Assignment,
    profile: &crate::planner::ChipProfile,
    retry_budget: u32,
    batch_seed: u64,
) -> Result<(JobOutcome, Vec<StepTrace>)> {
    let mut steps = Vec::new();
    let out = run_job_on_rec(
        backend,
        job,
        asg,
        profile,
        retry_budget,
        batch_seed,
        Some(&mut steps),
    )?;
    Ok((out.0, steps))
}

/// The shared engine loop behind [`run_job_on`] / [`run_job_recorded`]:
/// `record = None` is the exact pre-observability path.
#[allow(clippy::too_many_arguments)]
fn run_job_on_rec<B: ExecBackend>(
    backend: &mut B,
    job: &Job,
    asg: &Assignment,
    profile: &crate::planner::ChipProfile,
    retry_budget: u32,
    batch_seed: u64,
    record: Option<&mut Vec<StepTrace>>,
) -> Result<(JobOutcome, ())> {
    // Prepared once per job: the row plan (and, on command-schedule
    // backends, the program templates) is compiled a single time and
    // reused across every retry attempt the loop below charges —
    // operands are staged once per job, never per attempt.
    let prep = backend.prepare(&asg.program)?;
    run_job_with_prep(
        backend,
        job,
        asg,
        profile,
        retry_budget,
        batch_seed,
        &prep,
        None,
        record,
    )
}

/// The accounting loop proper, over an already-prepared plan — and,
/// for cross-job fused runs, over an operand lease the caller staged
/// through [`ExecBackend::stage_many`] and still owns. Outcomes are a
/// pure function of `(job, assignment, profile cost, batch seed,
/// backend kind)` whether or not the backend is shared across a run:
/// retry draws key on the batch seed and job id (never on backend
/// instance state), and results are host-exact.
#[allow(clippy::too_many_arguments)]
fn run_job_with_prep<B: ExecBackend>(
    backend: &mut B,
    job: &Job,
    asg: &Assignment,
    profile: &crate::planner::ChipProfile,
    retry_budget: u32,
    batch_seed: u64,
    prep: &fcexec::PreparedProgram,
    lease: Option<&B::Lease>,
    mut record: Option<&mut Vec<StepTrace>>,
) -> Result<(JobOutcome, ())> {
    let prog = &asg.program;
    let seed = mix3(batch_seed, job.id as u64, profile.chip_seed);
    let cost = &profile.cost;
    // Latency per step, resolved before execution (the observer runs
    // while the backend is mutably borrowed).
    let step_latency: Vec<Option<f64>> = prog
        .steps
        .iter()
        .map(|s| backend.step_latency_ns(s))
        .collect();
    let mut retries = 0u32;
    let mut failed_ops = 0usize;
    // Time already burned on chips that died mid-job is part of the
    // job's served latency; re-placements also consumed retry budget.
    let mut latency = asg.wasted_ns;
    let mut energy = 0.0f64;
    let observer = |i: usize, step: &fcsynth::Step| {
        let (mut p, model_l, e) = match step.op {
            None => (
                cost.not_success(),
                cost.not_latency_ns(),
                cost.not_energy_pj(),
            ),
            Some(op) => {
                let n = step.args.len();
                (
                    cost.success(op, n),
                    cost.latency_ns(op, n),
                    cost.energy_pj(op, n),
                )
            }
        };
        if asg.success_exp != 1.0 {
            // Fault-model derating (disturbance pressure × wear): the
            // guard keeps the no-fault path bit-identical.
            p = p.powf(asg.success_exp);
        }
        let l = step_latency[i].unwrap_or(model_l);
        let mut attempt = 0u64;
        let mut attempts = 0u32;
        let mut step_failed = false;
        loop {
            attempts += 1;
            latency += l;
            energy += e;
            let draw = hash_to_unit(mix3(seed, i as u64, attempt));
            if draw < p {
                break;
            }
            if retries < retry_budget {
                retries += 1;
                attempt += 1;
            } else {
                failed_ops += 1;
                step_failed = true;
                break;
            }
        }
        if let Some(rec) = record.as_deref_mut() {
            rec.push(StepTrace {
                name: fcexec::obs::step_name(step),
                model_ns: model_l,
                energy_pj: e,
                attempts,
                acts: fcexec::obs::step_acts(step),
                failed: step_failed,
            });
        }
    };
    let result = match lease {
        None => backend.run_prepared(prep, &job.operands, observer)?,
        Some(l) => backend.run_prepared_leased(prep, l, &job.operands, observer)?,
    };
    Ok((
        JobOutcome {
            job: job.id,
            label: job.label.clone(),
            member: asg.member,
            chip: profile.label.clone(),
            wave: asg.wave,
            admission: asg.admission,
            succeeded: failed_ops == 0,
            ops: prog.steps.len(),
            retries,
            failed_ops,
            replacements: asg.replacements,
            predicted_success: asg.predicted.expected_success,
            latency_ns: latency,
            energy_pj: energy,
            result,
        },
        (),
    ))
}

/// Builds the policy-selected backend for one job and runs it,
/// recording step traces when `record` is set.
fn run_job(
    job: &Job,
    asg: &Assignment,
    profile: &crate::planner::ChipProfile,
    policy: &SchedPolicy,
    batch_seed: u64,
    record: bool,
) -> Result<(JobOutcome, Vec<StepTrace>)> {
    let prog = &asg.program;
    let capacity = (prog.n_regs + job.operands.len() + 4).max(8);
    let mut vm =
        SimdVm::new(HostSubstrate::new(job.lanes, capacity)).map_err(fcexec::ExecError::from)?;
    // Re-placements off dying chips already spent part of the job's
    // retry budget: the policy budget is honored across the whole
    // served life of the job, not per placement.
    let budget = policy.retry_budget.saturating_sub(asg.replacements);
    if record {
        match policy.backend {
            BackendKind::Vm => run_job_recorded(&mut vm, job, asg, profile, budget, batch_seed),
            BackendKind::Bender => {
                let mut timed = ScheduleTimed::new(vm, profile.speed);
                run_job_recorded(&mut timed, job, asg, profile, budget, batch_seed)
            }
        }
    } else {
        match policy.backend {
            BackendKind::Vm => run_job_on(&mut vm, job, asg, profile, budget, batch_seed),
            BackendKind::Bender => {
                let mut timed = ScheduleTimed::new(vm, profile.speed);
                run_job_on(&mut timed, job, asg, profile, budget, batch_seed)
            }
        }
        .map(|o| (o, Vec::new()))
    }
}

/// Whether two planned jobs can share one fused run: same fleet
/// member (same profile, same chip seed), same mapped program (same
/// prepared plan), same lane count (same staging shape).
fn fusable(a: (&Job, &Assignment), b: (&Job, &Assignment)) -> bool {
    a.1.member == b.1.member && a.0.lanes == b.0.lanes && a.1.program == b.1.program
}

/// Jobs that belong to a cross-job fused run under serial submission
/// order: the sum of sizes of fusion groups (size ≥ 2) when the whole
/// batch is grouped by `fusable` key — adjacency is irrelevant, so
/// a round-robin mix of templates fuses just as well as a sorted one.
/// A pure function of the batch and the plan — independent of the
/// fuse knob, the shard count, and the backend — so observability
/// counters derived from it byte-diff cleanly across all of those.
pub fn fused_jobs(batch: &Batch, plan: &Plan) -> usize {
    let jobs = batch.jobs();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..jobs.len() {
        let found = groups.iter().position(|g| {
            fusable(
                (&jobs[g[0]], &plan.assignments[g[0]]),
                (&jobs[i], &plan.assignments[i]),
            )
        });
        match found {
            Some(gi) => groups[gi].push(i),
            None => groups.push(vec![i]),
        }
    }
    groups
        .into_iter()
        .filter(|g| g.len() >= 2)
        .map(|g| g.len())
        .sum()
}

/// Runs one fused group on a shared backend: one prepared plan, every
/// job's operands bulk-staged up front through
/// [`ExecBackend::stage_many`], then each job executed over its own
/// lease in submission order. Returns `None` when the bulk setup
/// fails — the caller falls back to the per-job path, which would
/// surface the same per-job errors (results are identical on both
/// paths).
fn run_group_on<B: ExecBackend>(
    backend: &mut B,
    jobs: &[&Job],
    asgs: &[&Assignment],
    profile: &crate::planner::ChipProfile,
    policy: &SchedPolicy,
    batch_seed: u64,
    record: bool,
) -> Option<Vec<JobRun>> {
    let prep = backend.prepare(&asgs[0].program).ok()?;
    let batches: Vec<&[PackedBits]> = jobs.iter().map(|j| j.operands.as_slice()).collect();
    let leases = backend.stage_many(&batches).ok()?;
    let mut out = Vec::with_capacity(jobs.len());
    for ((&job, &asg), lease) in jobs.iter().zip(asgs).zip(leases) {
        let budget = policy.retry_budget.saturating_sub(asg.replacements);
        let run = if record {
            let mut steps = Vec::new();
            run_job_with_prep(
                backend,
                job,
                asg,
                profile,
                budget,
                batch_seed,
                &prep,
                Some(&lease),
                Some(&mut steps),
            )
            .map(|(o, ())| (o, steps))
        } else {
            run_job_with_prep(
                backend,
                job,
                asg,
                profile,
                budget,
                batch_seed,
                &prep,
                Some(&lease),
                None,
            )
            .map(|(o, ())| (o, Vec::new()))
        };
        backend.end_stage(lease);
        out.push(run);
    }
    Some(out)
}

/// Builds the policy-selected backend for one fused group and runs it.
/// `None` (setup failure) sends the caller to the per-job path.
fn run_group(
    jobs: &[&Job],
    asgs: &[&Assignment],
    profile: &crate::planner::ChipProfile,
    policy: &SchedPolicy,
    batch_seed: u64,
    record: bool,
) -> Option<Vec<JobRun>> {
    let prog = &asgs[0].program;
    // Room for every job's staged lease at once, plus the running
    // job's register arena (capacity only bounds the pool — host
    // results never depend on it).
    let capacity = (prog.n_regs + jobs.len() * jobs[0].operands.len() + 4).max(8);
    let vm = SimdVm::new(HostSubstrate::new(jobs[0].lanes, capacity)).ok()?;
    match policy.backend {
        BackendKind::Vm => {
            let mut vm = vm;
            run_group_on(&mut vm, jobs, asgs, profile, policy, batch_seed, record)
        }
        BackendKind::Bender => {
            let mut timed = ScheduleTimed::new(vm, profile.speed);
            run_group_on(&mut timed, jobs, asgs, profile, policy, batch_seed, record)
        }
    }
}

/// Runs one contiguous submission-order chunk of jobs. With
/// [`SchedPolicy::fuse`] on, jobs sharing a fusion key ([`fusable`]:
/// same fleet member, mapped program, and lane count) are grouped
/// *regardless of adjacency* — a round-robin template mix fuses as
/// well as a sorted one — and each group of two or more runs through
/// one shared backend: one prepared plan, one bulk staging, jobs in
/// submission order within the group, results scattered back to their
/// submission-order slots. Outcomes are byte-identical to the per-job
/// path either way: every job's retry draws and modeled costs key on
/// the job and its assignment alone, never on its neighbours.
fn run_chunk(
    jobs: &[Job],
    asgs: &[Assignment],
    profiles: &[crate::planner::ChipProfile],
    policy: &SchedPolicy,
    batch_seed: u64,
    record: bool,
) -> Vec<JobRun> {
    // Group chunk-local indices by fusion key: a linear scan over
    // group representatives (programs compare structurally, and
    // chunks are small enough that a map keyed on serialized programs
    // would cost more than it saves).
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..jobs.len() {
        let found = if policy.fuse {
            groups
                .iter()
                .position(|g| fusable((&jobs[g[0]], &asgs[g[0]]), (&jobs[i], &asgs[i])))
        } else {
            None
        };
        match found {
            Some(gi) => groups[gi].push(i),
            None => groups.push(vec![i]),
        }
    }
    let mut out: Vec<Option<JobRun>> = (0..jobs.len()).map(|_| None).collect();
    for g in &groups {
        let fused = if g.len() >= 2 {
            let gj: Vec<&Job> = g.iter().map(|&i| &jobs[i]).collect();
            let ga: Vec<&Assignment> = g.iter().map(|&i| &asgs[i]).collect();
            run_group(
                &gj,
                &ga,
                &profiles[asgs[g[0]].member],
                policy,
                batch_seed,
                record,
            )
        } else {
            None
        };
        match fused {
            Some(runs) => {
                for (&i, r) in g.iter().zip(runs) {
                    out[i] = Some(r);
                }
            }
            None => {
                for &i in g {
                    out[i] = Some(run_job(
                        &jobs[i],
                        &asgs[i],
                        &profiles[asgs[i].member],
                        policy,
                        batch_seed,
                        record,
                    ));
                }
            }
        }
    }
    out.into_iter()
        .map(|r| r.expect("every chunk job executed"))
        .collect()
}

/// Executes a planned batch, sharding jobs over scoped worker threads.
///
/// # Errors
///
/// Fails when a job's execution fails at the substrate level (row
/// exhaustion, lane mismatch); the error of the earliest-submitted
/// failing job is returned.
///
/// # Panics
///
/// Panics when `plan` was built for a different batch (assignment
/// count mismatch) or a worker thread panics.
pub fn execute_plan(batch: &Batch, plan: &Plan, policy: &SchedPolicy) -> Result<BatchReport> {
    execute_plan_impl(batch, plan, policy, false).map(|(report, _)| report)
}

/// [`execute_plan`] with trace emission: job and step spans on the
/// modeled clock, plus the plan's fault timeline, written to `sink`
/// in submission order *after* shard reassembly — never in thread
/// completion order — so the emitted stream is identical for every
/// shard count. All span durations come from the cost model and the
/// deterministic retry draws (see [`StepTrace`]), so the stream is
/// also identical across vm/bender backends. The report is
/// byte-identical to [`execute_plan`]'s.
///
/// # Errors
///
/// Same failure modes as [`execute_plan`].
///
/// # Panics
///
/// Same as [`execute_plan`].
pub fn execute_plan_traced(
    batch: &Batch,
    plan: &Plan,
    policy: &SchedPolicy,
    ctx: &TraceCtx,
    sink: &mut dyn fcobs::TraceSink,
) -> Result<BatchReport> {
    let record = sink.enabled();
    let (report, traces) = execute_plan_impl(batch, plan, policy, record)?;
    if record {
        emit_batch_events(batch, plan, &report, &traces, ctx, sink);
    }
    Ok(report)
}

/// Modeled-clock context for [`execute_plan_traced`]: where this batch
/// sits on the daemon timeline. Standalone batches use the default
/// (tick 0 at 0 ns).
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    /// Daemon tick the batch ran in (ordering key, major).
    pub tick: u64,
    /// Modeled nanoseconds at the start of the tick.
    pub base_ns: f64,
    /// Per-job modeled queue wait, nanoseconds (empty = all zero).
    pub queue_wait_ns: Vec<f64>,
}

/// What one job's worker hands back: its outcome plus the recorded
/// per-step traces (empty unless recording).
type JobRun = Result<(JobOutcome, Vec<StepTrace>)>;

/// The shared sharded loop behind [`execute_plan`] /
/// [`execute_plan_traced`]: `record = false` is the exact
/// pre-observability path (per-job traces stay empty).
fn execute_plan_impl(
    batch: &Batch,
    plan: &Plan,
    policy: &SchedPolicy,
    record: bool,
) -> Result<(BatchReport, Vec<Vec<StepTrace>>)> {
    assert_eq!(
        plan.assignments.len(),
        batch.len(),
        "plan does not match batch"
    );
    let n = batch.len();
    let workers = policy.effective_workers(n);
    let mut results: Vec<Option<JobRun>> = (0..n).map(|_| None).collect();
    if workers <= 1 {
        let runs = run_chunk(
            batch.jobs(),
            &plan.assignments,
            &plan.profiles,
            policy,
            batch.seed(),
            record,
        );
        for (i, r) in runs.into_iter().enumerate() {
            results[i] = Some(r);
        }
    } else {
        let shards = policy.effective_shards(n);
        let chunk = n.div_ceil(shards);
        let jobs = batch.jobs();
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .zip(plan.assignments.chunks(chunk))
                .enumerate()
                .map(|(si, (job_chunk, asg_chunk))| {
                    s.spawn(move || {
                        run_chunk(
                            job_chunk,
                            asg_chunk,
                            &plan.profiles,
                            policy,
                            batch.seed(),
                            record,
                        )
                        .into_iter()
                        .enumerate()
                        .map(|(j, r)| (si * chunk + j, r))
                        .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("executor shard panicked") {
                    results[i] = Some(r);
                }
            }
        });
    }
    let mut outcomes = Vec::with_capacity(n);
    let mut traces = Vec::with_capacity(n);
    for r in results {
        let (outcome, steps) = r.expect("every job executed")?;
        outcomes.push(outcome);
        traces.push(steps);
    }
    Ok((
        BatchReport {
            outcomes,
            shards: workers,
            waves: plan.waves,
            chips: plan.profiles.len(),
            seed: batch.seed(),
            health: plan.health.clone(),
        },
        traces,
    ))
}

/// Emits the batch's trace stream: one `batch` span, the fault
/// timeline, then per job a `sched` span and its `exec` step spans.
/// Called once, in submission order, after shard reassembly.
fn emit_batch_events(
    batch: &Batch,
    plan: &Plan,
    report: &BatchReport,
    traces: &[Vec<StepTrace>],
    ctx: &TraceCtx,
    sink: &mut dyn fcobs::TraceSink,
) {
    use fcobs::{Phase, TraceEvent};
    let base = ctx.base_ns;
    let mut batch_end = 0.0f64;
    for (idx, ((asg, steps), out)) in plan
        .assignments
        .iter()
        .zip(traces)
        .zip(&report.outcomes)
        .enumerate()
    {
        let who = plan.profiles[asg.member].label.clone();
        let wait = ctx.queue_wait_ns.get(idx).copied().unwrap_or(0.0);
        let served_ns: f64 = asg.wasted_ns
            + steps
                .iter()
                .map(|s| s.model_ns * f64::from(s.attempts))
                .sum::<f64>();
        batch_end = batch_end.max(asg.start_ns + served_ns);
        sink.record(TraceEvent {
            phase: Phase::Span,
            cat: "sched".into(),
            name: out.label.clone(),
            who: who.clone(),
            track: 1 + asg.member as u64,
            tick: ctx.tick,
            job: 1 + idx as u64,
            step: 0,
            ts_ns: base + asg.start_ns,
            dur_ns: served_ns,
            args: vec![
                ("member".into(), asg.member as f64),
                ("wave".into(), asg.wave as f64),
                ("retries".into(), f64::from(out.retries)),
                ("failed".into(), f64::from(u8::from(!out.succeeded))),
                ("queue_wait_ns".into(), wait),
                ("predicted_ns".into(), asg.predicted.latency_ns),
                ("wasted_ns".into(), asg.wasted_ns),
            ],
        });
        let mut cursor = base + asg.start_ns + asg.wasted_ns;
        let mut step_starts = Vec::with_capacity(steps.len() + 1);
        for (i, s) in steps.iter().enumerate() {
            let dur = s.model_ns * f64::from(s.attempts);
            step_starts.push(cursor);
            sink.record(TraceEvent {
                phase: Phase::Span,
                cat: "exec".into(),
                name: s.name.clone(),
                who: who.clone(),
                track: 1 + asg.member as u64,
                tick: ctx.tick,
                job: 1 + idx as u64,
                step: 1 + i as u64,
                ts_ns: cursor,
                dur_ns: dur,
                args: vec![
                    ("attempts".into(), f64::from(s.attempts)),
                    ("acts".into(), s.acts as f64),
                    ("energy_pj".into(), s.energy_pj * f64::from(s.attempts)),
                    ("failed".into(), f64::from(u8::from(s.failed))),
                ],
            });
            cursor += dur;
        }
        step_starts.push(cursor);
        // One span per fused engine visit — derived from the program's
        // step plan and the modeled step clock, so the emitted stream
        // is identical whether execution actually fused, on every
        // backend, at every shard count.
        for (v, &(start, end)) in fcexec::fused_visits_of(&asg.program).iter().enumerate() {
            sink.record(TraceEvent {
                phase: Phase::Span,
                cat: "engine".into(),
                name: "visit".into(),
                who: who.clone(),
                track: 1 + asg.member as u64,
                tick: ctx.tick,
                job: 1 + idx as u64,
                step: 1000 + v as u64,
                ts_ns: step_starts[start],
                dur_ns: step_starts[end] - step_starts[start],
                args: vec![
                    ("steps".into(), (end - start) as f64),
                    ("first_step".into(), start as f64),
                ],
            });
        }
    }
    sink.record(TraceEvent {
        phase: Phase::Span,
        cat: "sched".into(),
        name: "batch".into(),
        who: "scheduler".into(),
        track: 0,
        tick: ctx.tick,
        job: 0,
        step: 2,
        ts_ns: base,
        dur_ns: batch_end,
        args: vec![
            ("jobs".into(), batch.len() as f64),
            ("waves".into(), plan.waves as f64),
            ("chips".into(), plan.profiles.len() as f64),
        ],
    });
    if let Some(health) = &plan.health {
        for (k, ev) in health.timeline.iter().enumerate() {
            sink.record(TraceEvent {
                phase: Phase::Instant,
                cat: "fault".into(),
                name: ev.kind.clone(),
                who: ev.chip.clone(),
                track: 1 + ev.member as u64,
                tick: ctx.tick,
                job: 0,
                step: 50 + k as u64,
                ts_ns: base + ev.at_ns,
                dur_ns: 0.0,
                args: vec![
                    ("member".into(), ev.member as f64),
                    // "job" is a reserved Chrome-args key (the
                    // ordering key rides there); the placement index
                    // gets its own name.
                    ("at_job".into(), ev.job as f64),
                ],
            });
        }
    }
}

/// Plans and executes a batch in one call: the scheduler's front door.
///
/// # Errors
///
/// Propagates planning ([`crate::planner::Planner::plan`]) and
/// execution ([`execute_plan`]) failures.
pub fn serve_batch(
    fleet: &dram_core::FleetConfig,
    base: &fcsynth::CostModel,
    policy: &SchedPolicy,
    batch: &Batch,
) -> Result<BatchReport> {
    let plan = crate::planner::Planner::new(fleet, base, policy).plan(batch)?;
    execute_plan(batch, &plan, policy)
}

/// The cost a perfectly-reliable serial baseline would predict for a
/// batch (no retries, population-mean model): used by reports to show
/// the reliability overhead scheduling absorbed.
pub fn ideal_cost(batch: &Batch, base: &fcsynth::CostModel) -> ProgramCost {
    let mut success = 1.0f64;
    let mut latency = 0.0f64;
    let mut energy = 0.0f64;
    for job in batch.jobs() {
        let c = job.program.price(base);
        success *= c.expected_success;
        latency += c.latency_ns;
        energy += c.energy_pj;
    }
    ProgramCost {
        expected_success: success,
        latency_ns: latency,
        energy_pj: energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{batch_of, batch_of_seeded};
    use dram_core::FleetConfig;
    use fcsynth::CostModel;

    const MIX: [&str; 5] = [
        "a & b",
        "a ^ b ^ c",
        "(a & b) | (c & d)",
        "!(a | b | c | d)",
        "a&b&c&d&e&f&g&h",
    ];

    #[test]
    fn results_are_host_exact() {
        let fleet = FleetConfig::table1(3);
        let base = CostModel::table1_defaults();
        let policy = SchedPolicy::default().with_shards(1);
        let batch = batch_of(&MIX, 33, 0xBA7C);
        let report = serve_batch(&fleet, &base, &policy, &batch).unwrap();
        assert_eq!(report.outcomes.len(), MIX.len());
        for (job, out) in batch.jobs().iter().zip(&report.outcomes) {
            // Reference: direct packed execution of the submitted
            // program on a fresh host VM.
            let mut vm =
                SimdVm::new(HostSubstrate::new(job.lanes, job.program.n_regs + 8)).unwrap();
            let expect = fcexec::execute_packed(&mut vm, &job.program, &job.operands).unwrap();
            assert_eq!(out.result, expect, "{}", job.label);
            assert!(out.ops >= 1);
            assert!(out.latency_ns > 0.0);
        }
    }

    #[test]
    fn sharded_report_is_bit_identical_to_serial() {
        let fleet = FleetConfig::table1(4);
        let base = CostModel::table1_defaults();
        let batch = batch_of(&MIX, 17, 42);
        let serial = serve_batch(
            &fleet,
            &base,
            &SchedPolicy::default().with_shards(1),
            &batch,
        )
        .unwrap();
        for shards in [2usize, 3, 5] {
            let sharded = serve_batch(
                &fleet,
                &base,
                &SchedPolicy::default().with_shards(shards),
                &batch,
            )
            .unwrap();
            assert_eq!(
                serial.outcomes, sharded.outcomes,
                "shard count {shards} changed outcomes"
            );
        }
    }

    #[test]
    fn retry_accounting_is_deterministic_and_seed_sensitive() {
        let fleet = FleetConfig::table1(2);
        let base = CostModel::table1_defaults();
        let policy = SchedPolicy::default().with_shards(2);
        let a = serve_batch(&fleet, &base, &policy, &batch_of(&MIX, 16, 11)).unwrap();
        let b = serve_batch(&fleet, &base, &policy, &batch_of(&MIX, 16, 11)).unwrap();
        assert_eq!(a.outcomes, b.outcomes, "fixed seed, fixed accounting");
        // Same operand data, different *batch* seed: only the retry
        // draws may move.
        let c = serve_batch(&fleet, &base, &policy, &batch_of_seeded(&MIX, 16, 11, 12)).unwrap();
        // Results stay identical (host-exact)...
        for (x, y) in a.outcomes.iter().zip(&c.outcomes) {
            assert_eq!(x.result, y.result, "results are seed-independent");
        }
        // ...but a long-run batch under a different seed draws
        // different retry trajectories somewhere.
        let retries_a: u32 = a.outcomes.iter().map(|o| o.retries).sum();
        let retries_c: u32 = c.outcomes.iter().map(|o| o.retries).sum();
        let lat_a: f64 = a.outcomes.iter().map(|o| o.latency_ns).sum();
        let lat_c: f64 = c.outcomes.iter().map(|o| o.latency_ns).sum();
        assert!(
            retries_a != retries_c || (lat_a - lat_c).abs() > 1e-9 || retries_a == 0,
            "different seeds should perturb accounting (a={retries_a}, c={retries_c})"
        );
    }

    #[test]
    fn zero_retry_budget_marks_failures() {
        let fleet = FleetConfig::table1(1);
        let base = CostModel::table1_defaults();
        let policy = SchedPolicy {
            retry_budget: 0,
            shards: 1,
            ..SchedPolicy::default()
        };
        // Many wide gates: with no retries some op eventually draws a
        // failure under the derated chip model.
        let exprs: Vec<&str> = std::iter::repeat_n("a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p", 24).collect();
        let batch = batch_of(&exprs, 8, 0x5EED);
        let report = serve_batch(&fleet, &base, &policy, &batch).unwrap();
        let failed = report.outcomes.iter().filter(|o| !o.succeeded).count();
        assert!(failed > 0, "no failures across {} wide jobs", exprs.len());
        assert!(report.outcomes.iter().all(|o| o.retries == 0));
        for o in &report.outcomes {
            assert_eq!(o.succeeded, o.failed_ops == 0);
        }
    }

    #[test]
    fn retries_reuse_the_prepared_staging() {
        // Two-phase API regression: the retry loop charges modeled
        // attempts, but the device executes the prepared program
        // exactly once per job — raising the budget must not add a
        // single native operation or host transfer, and operands are
        // staged once per job, never per attempt.
        let fleet = FleetConfig::table1(1);
        let base = CostModel::table1_defaults();
        let policy = SchedPolicy::default().with_shards(1);
        let exprs: Vec<&str> = std::iter::repeat_n("a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p", 24).collect();
        let batch = batch_of(&exprs, 8, 0x5EED);
        let plan = crate::planner::Planner::new(&fleet, &base, &policy)
            .plan(&batch)
            .unwrap();
        let run_budget = |budget: u32| {
            batch
                .jobs()
                .iter()
                .zip(&plan.assignments)
                .map(|(job, asg)| {
                    let capacity = (asg.program.n_regs + job.operands.len() + 4).max(8);
                    let mut vm = SimdVm::new(HostSubstrate::new(job.lanes, capacity)).unwrap();
                    vm.clear_trace();
                    let out = run_job_on(
                        &mut vm,
                        job,
                        asg,
                        &plan.profiles[asg.member],
                        budget,
                        batch.seed(),
                    )
                    .unwrap();
                    let writes = vm
                        .trace()
                        .entries()
                        .iter()
                        .filter(|e| e.op == simdram::NativeOp::HostWrite)
                        .count();
                    assert_eq!(writes, job.operands.len(), "operands staged once per job");
                    (
                        out.result.clone(),
                        out.retries,
                        vm.trace().entries().to_vec(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let zero = run_budget(0);
        let five = run_budget(5);
        let retried: u32 = five.iter().map(|(_, r, _)| *r).sum();
        assert!(retried > 0, "budget 5 must actually spend retries here");
        for ((ra, _, ea), (rb, _, eb)) in zero.iter().zip(&five) {
            assert_eq!(ra, rb, "results are budget-independent");
            assert_eq!(ea, eb, "device-call stream moved with the retry budget");
        }
    }

    #[test]
    fn bender_backend_moves_latency_and_nothing_else() {
        let fleet = FleetConfig::table1(3);
        let base = CostModel::table1_defaults();
        let batch = batch_of(&MIX, 24, 0xC0DE);
        let vm = serve_batch(
            &fleet,
            &base,
            &SchedPolicy::default().with_shards(1),
            &batch,
        )
        .unwrap();
        let bender_policy = SchedPolicy {
            backend: BackendKind::Bender,
            shards: 2,
            ..SchedPolicy::default()
        };
        let bender = serve_batch(&fleet, &base, &bender_policy, &batch).unwrap();
        assert!(vm.outcomes != bender.outcomes, "latency models must differ");
        for (a, b) in vm.outcomes.iter().zip(&bender.outcomes) {
            assert_eq!(a.result, b.result, "{}: backend changed answers", a.label);
            assert_eq!(a.retries, b.retries, "retry draws are backend-independent");
            assert_eq!(a.succeeded, b.succeeded);
            assert_eq!(a.energy_pj, b.energy_pj, "energy stays the cost model's");
            assert_ne!(
                a.latency_ns, b.latency_ns,
                "{}: command schedules price differently",
                a.label
            );
        }
    }

    #[test]
    fn faulted_serve_is_host_exact_and_shard_invariant() {
        let fleet = FleetConfig::table1(3);
        let base = CostModel::table1_defaults();
        let faults = dram_core::FaultPlan {
            aging: dram_core::AgingPolicy {
                acceleration: 0.0,
                ..dram_core::AgingPolicy::default()
            },
            dropouts: vec![dram_core::PlannedDropout {
                member: 1,
                after_ns: 400.0,
            }],
            ..dram_core::FaultPlan::demo()
        };
        let exprs: Vec<&str> = MIX.into_iter().cycle().take(20).collect();
        let batch = batch_of(&exprs, 16, 0xDE6);
        let serial = serve_batch(
            &fleet,
            &base,
            &SchedPolicy {
                faults: Some(faults.clone()),
                shards: 1,
                ..SchedPolicy::default()
            },
            &batch,
        )
        .unwrap();
        let sharded = serve_batch(
            &fleet,
            &base,
            &SchedPolicy {
                faults: Some(faults),
                shards: 5,
                ..SchedPolicy::default()
            },
            &batch,
        )
        .unwrap();
        assert_eq!(
            serial.to_json(),
            sharded.to_json(),
            "faulted report is byte-identical across shard counts"
        );
        let health = serial.health.as_ref().expect("health rides the report");
        assert_eq!(health.dropouts.len(), 1);
        assert!(
            serial.outcomes.iter().any(|o| o.replacements > 0),
            "the dropout re-placed at least one in-flight job"
        );
        // Every job — including the re-placed ones — stays host-exact.
        for (job, out) in batch.jobs().iter().zip(&serial.outcomes) {
            let mut vm =
                SimdVm::new(HostSubstrate::new(job.lanes, job.program.n_regs + 8)).unwrap();
            let expect = fcexec::execute_packed(&mut vm, &job.program, &job.operands).unwrap();
            assert_eq!(out.result, expect, "{}", job.label);
        }
    }

    #[test]
    fn traced_execution_is_invariant_and_changes_nothing() {
        let fleet = FleetConfig::table1(3);
        let base = CostModel::table1_defaults();
        let batch = batch_of(&MIX, 16, 0x0B5);
        let collect = |shards: usize, backend: BackendKind| {
            let policy = SchedPolicy {
                backend,
                shards,
                ..SchedPolicy::default()
            };
            let plan = crate::planner::Planner::new(&fleet, &base, &policy)
                .plan(&batch)
                .unwrap();
            let mut buf = fcobs::TraceBuffer::new(1 << 14);
            let report =
                execute_plan_traced(&batch, &plan, &policy, &TraceCtx::default(), &mut buf)
                    .unwrap();
            (report, buf.finish())
        };
        let (r1, t1) = collect(1, BackendKind::Vm);
        assert!(!t1.is_empty());
        assert!(t1.iter().any(|e| e.cat == "exec"), "step spans present");
        assert!(t1.iter().any(|e| e.name == "batch"), "batch span present");
        // The trace stream is identical across shard counts AND
        // backends (determinism invariant #4): every traced duration
        // comes from the cost model, never the backend's latency.
        for (shards, backend) in [
            (5, BackendKind::Vm),
            (1, BackendKind::Bender),
            (5, BackendKind::Bender),
        ] {
            let (_, t) = collect(shards, backend);
            assert_eq!(t, t1, "trace moved under shards={shards} {backend:?}");
        }
        // Tracing never changes the report; a disabled sink takes the
        // exact untraced path.
        let policy = SchedPolicy::default().with_shards(1);
        let plan = crate::planner::Planner::new(&fleet, &base, &policy)
            .plan(&batch)
            .unwrap();
        let untraced = execute_plan(&batch, &plan, &policy).unwrap();
        assert_eq!(r1.outcomes, untraced.outcomes);
        let mut null = fcobs::NullSink;
        let nulled =
            execute_plan_traced(&batch, &plan, &policy, &TraceCtx::default(), &mut null).unwrap();
        assert_eq!(nulled.outcomes, untraced.outcomes);
    }

    #[test]
    fn ideal_cost_sums_the_batch() {
        let base = CostModel::table1_defaults();
        let batch = batch_of(&["a & b", "a | b"], 8, 0);
        let ideal = ideal_cost(&batch, &base);
        assert!(ideal.latency_ns > 0.0);
        assert!(ideal.expected_success > 0.9);
    }
}
