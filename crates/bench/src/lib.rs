//! Shared helpers for the per-figure Criterion benchmarks.
//!
//! Each bench regenerates one paper artifact end to end (fleet →
//! operations → statistics) at a reduced scale, so `cargo bench`
//! exercises every reproduction pipeline and tracks its cost.

use characterize::runner::{ModuleCtx, Scale};
use criterion::Criterion;
use dram_core::Temperature;

/// The scale used by benchmarks: small enough that a single experiment
/// iteration is tens of milliseconds.
pub fn bench_scale() -> Scale {
    Scale {
        cols: 16,
        map_budget: 512,
        entries_per_shape: 2,
        execs_per_condition: 1,
        input_draws: 1,
        temps: vec![Temperature::celsius(50.0), Temperature::celsius(95.0)],
    }
}

/// A three-module fleet (two SK Hynix dies + one Samsung part)
/// representative of the experiment populations.
pub fn bench_fleet(scale: &Scale) -> Vec<ModuleCtx> {
    let all = dram_core::config::table1();
    let picks = [
        "hynix-4Gb-M-2666-#0",
        "hynix-4Gb-A-2133-#0",
        "samsung-8Gb-D-2133-#0",
    ];
    picks
        .iter()
        .map(|name| {
            let cfg = all.iter().find(|m| &m.name == name).expect("known module");
            ModuleCtx::build(cfg, scale).expect("context builds")
        })
        .collect()
}

/// A fleet covering all three Hynix speed bins (for fig11/fig20/fig21).
pub fn speed_fleet(scale: &Scale) -> Vec<ModuleCtx> {
    let all = dram_core::config::table1();
    let picks = [
        "hynix-4Gb-M-2666-#0",
        "hynix-4Gb-A-2133-#0",
        "hynix-4Gb-A-2400-#0",
        "hynix-8Gb-A-2400-#0",
        "hynix-8Gb-A-2666-#0",
        "hynix-8Gb-M-2666-#0",
    ];
    picks
        .iter()
        .map(|name| {
            let cfg = all.iter().find(|m| &m.name == name).expect("known module");
            ModuleCtx::build(cfg, scale).expect("context builds")
        })
        .collect()
}

/// Criterion configuration tuned for experiment-sized iterations.
pub fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

/// Runs one experiment by id and asserts it produced rows (so the
/// bench fails loudly if the pipeline regresses).
pub fn run_and_check(id: &str, fleet: &mut [ModuleCtx], scale: &Scale) {
    let table = characterize::experiments::run_experiment(id, fleet, scale)
        .unwrap_or_else(|| panic!("unknown experiment {id}"));
    assert!(!table.rows.is_empty(), "{id} produced no rows");
    criterion::black_box(table);
}
