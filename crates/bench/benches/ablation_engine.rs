//! Ablation: the bulk bitwise engine.
//!
//! Measures end-to-end in-DRAM operation latency through the full
//! stack (library → command programs → device model) and the cost of
//! the repetition-voting reliability knob.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::{BankId, SubarrayId};
use fcdram::{BulkEngine, Fcdram};

fn engine(cols: usize) -> BulkEngine {
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(cols);
    BulkEngine::new(Fcdram::new(cfg), BankId(0), SubarrayId(0)).expect("engine builds")
}

fn bench(c: &mut Criterion) {
    let mut e = engine(64);
    let a = e.alloc().unwrap();
    let bv = e.alloc().unwrap();
    let out = e.alloc().unwrap();
    let bits = e.capacity_bits();
    let da: Vec<bool> = (0..bits).map(|i| i % 3 == 0).collect();
    let db: Vec<bool> = (0..bits).map(|i| i % 5 != 0).collect();
    e.write(&a, &da).unwrap();
    e.write(&bv, &db).unwrap();

    c.bench_function("engine_write_read_roundtrip", |b| {
        b.iter(|| {
            e.write(&a, &da).unwrap();
            black_box(e.read(&a).unwrap())
        });
    });

    c.bench_function("engine_not", |b| {
        b.iter(|| black_box(e.not(&a, &out).unwrap()));
    });

    for n in [2usize, 4, 8] {
        c.bench_function(&format!("engine_and_{n}_inputs"), |b| {
            let ins: Vec<&fcdram::BitVecHandle> =
                std::iter::repeat(&a).take(n - 1).chain([&bv]).collect();
            b.iter(|| black_box(e.and(&ins, &out).unwrap()));
        });
    }

    // Repetition ablation: k executions cost ≈ k× but raise accuracy.
    let mut group = c.benchmark_group("engine_repetition");
    for k in [1usize, 3, 9] {
        group.bench_function(&*format!("vote_{k}"), |b| {
            e.set_repetition(k);
            b.iter(|| {
                let stats = e.and(&[&a, &bv], &out).unwrap();
                assert_eq!(stats.executions, k);
                black_box(stats)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
