//! Ablation: the bulk bitwise engine.
//!
//! Measures end-to-end in-DRAM operation latency through the full
//! stack (library → command programs → device model), the cost of the
//! repetition-voting reliability knob, and — via the column-width
//! sweep — the columnar fast path at full row width (8192 columns)
//! with the per-cell telemetry mode alongside for comparison. Emits a
//! `BENCH_engine.json` summary at the repository root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::{BankId, SubarrayId};
use fcdram::{BulkEngine, Fcdram};

fn engine(cols: usize) -> BulkEngine {
    let cfg = dram_core::config::table1()
        .remove(0)
        .with_modeled_cols(cols);
    BulkEngine::new(Fcdram::new(cfg), BankId(0), SubarrayId(0)).expect("engine builds")
}

fn bench(c: &mut Criterion) {
    let mut e = engine(64);
    let a = e.alloc().unwrap();
    let bv = e.alloc().unwrap();
    let out = e.alloc().unwrap();
    let bits = e.capacity_bits();
    let da: Vec<bool> = (0..bits).map(|i| i % 3 == 0).collect();
    let db: Vec<bool> = (0..bits).map(|i| i % 5 != 0).collect();
    e.write(&a, &da).unwrap();
    e.write(&bv, &db).unwrap();

    c.bench_function("engine_write_read_roundtrip", |b| {
        b.iter(|| {
            e.write(&a, &da).unwrap();
            black_box(e.read(&a).unwrap())
        });
    });

    c.bench_function("engine_not", |b| {
        b.iter(|| black_box(e.not(&a, &out).unwrap()));
    });

    for n in [2usize, 4, 8] {
        c.bench_function(format!("engine_and_{n}_inputs"), |b| {
            let ins: Vec<&fcdram::BitVecHandle> =
                std::iter::repeat_n(&a, n - 1).chain([&bv]).collect();
            b.iter(|| black_box(e.and(&ins, &out).unwrap()));
        });
    }

    // Repetition ablation: k executions cost ≈ k× but raise accuracy.
    let mut group = c.benchmark_group("engine_repetition");
    for k in [1usize, 3, 9] {
        group.bench_function(format!("vote_{k}"), |b| {
            e.set_repetition(k);
            b.iter(|| {
                let stats = e.and(&[&a, &bv], &out).unwrap();
                assert_eq!(stats.executions, k);
                black_box(stats)
            });
        });
    }
    group.finish();
}

/// Column-width sweep: NOT and AND-8 at 64 / 1024 / 8192 modeled
/// columns, in the fast fidelity mode (the engine default) and with
/// full per-cell telemetry for comparison.
///
/// Note: *both* fidelity modes run the columnar kernels — the
/// `full_telemetry` rows measure only the cost of materializing
/// per-cell records, NOT the pre-rewrite per-cell path. The
/// pre-rewrite comparison is the `logic_model_scalar_per_cell` vs
/// `logic_model_columnar_cached` pair below, which reproduces the
/// per-cell model evaluation the old inner loops performed on every
/// operation (≈7× slower than the cached columnar form at 1024 cols).
fn width_sweep(c: &mut Criterion) {
    for cols in [64usize, 1024, 8192] {
        let mut e = engine(cols);
        let a = e.alloc().unwrap();
        let bv = e.alloc().unwrap();
        let out = e.alloc().unwrap();
        let bits = e.capacity_bits();
        let da: Vec<bool> = (0..bits).map(|i| i % 3 == 0).collect();
        let db: Vec<bool> = (0..bits).map(|i| i % 5 != 0).collect();
        e.write(&a, &da).unwrap();
        e.write(&bv, &db).unwrap();
        let ins8: Vec<&fcdram::BitVecHandle> = std::iter::repeat_n(&a, 7).chain([&bv]).collect();

        c.bench_function(format!("engine_not/{cols}cols"), |b| {
            b.iter(|| black_box(e.not(&a, &out).unwrap()));
        });
        c.bench_function(format!("engine_and_8_inputs/{cols}cols"), |b| {
            b.iter(|| black_box(e.and(&ins8, &out).unwrap()));
        });

        // Same operations with per-cell telemetry records retained.
        e.configure(dram_core::SimConfig::full());
        c.bench_function(
            format!("engine_and_8_inputs_full_telemetry/{cols}cols"),
            |b| {
                b.iter(|| black_box(e.and(&ins8, &out).unwrap()));
            },
        );
    }
    cell_model_reference(c);
    write_summary();
}

/// Reference microbenchmark for the model-evaluation rewrite: the
/// pre-columnar path re-derived every cell's variation z-scores (three
/// 64-bit mixes + an inverse-normal each) inside the column loop on
/// every operation; the columnar path amortizes them through the
/// per-row cache and the z-prefix decomposition. Measured over the
/// same 8 result rows × 1024 columns an AND-8 touches.
fn cell_model_reference(c: &mut Criterion) {
    use dram_core::reliability::{SIGMA_CELL_LOGIC, SIGMA_SA_LOGIC};
    use dram_core::{
        BankId, CellRef, Col, LocalRow, LogicEvent, LogicOp, MarginClass, ProcessVariation,
        SubarrayId, Temperature,
    };
    let cols = 1024usize;
    let cfg = dram_core::config::table1()
        .remove(0)
        .with_modeled_cols(cols);
    let chip = dram_core::Chip::new(cfg, dram_core::ChipId(0));
    let model = chip.reliability().clone();
    let rows: Vec<LocalRow> = (0..8).map(LocalRow).collect();

    c.bench_function("logic_model_scalar_per_cell/1024cols", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for row in &rows {
                for col in 0..cols {
                    let ev = LogicEvent {
                        op: LogicOp::And,
                        n: 8,
                        margin_class: MarginClass::Comfortable,
                        neighbor_mismatch: 0.5,
                        com_dist: 0.4,
                        ref_dist: 0.6,
                        temperature: Temperature::BASELINE,
                    };
                    let cell = CellRef {
                        bank: BankId(0),
                        subarray: SubarrayId(1),
                        row: *row,
                        col: Col(col),
                        stripe: 1,
                    };
                    acc += model.logic_success_prob(&ev, cell);
                }
            }
            black_box(acc)
        });
    });

    c.bench_function("logic_model_columnar_cached/1024cols", |b| {
        let variation = ProcessVariation::new(12345);
        let mut cache = dram_core::VariationCache::new();
        let sa = cache.sa_z(&variation, BankId(0), 1, cols);
        let prefix = model.logic_z_prefix(LogicOp::And, 8).unwrap();
        let dist = dram_core::ReliabilityModel::logic_dist_term(LogicOp::And, 0.4, 0.6);
        let tterm = dram_core::ReliabilityModel::logic_temp_term(Temperature::BASELINE);
        let cpl = dram_core::ReliabilityModel::coupling(LogicOp::And);
        b.iter(|| {
            let mut acc = 0.0f64;
            for row in &rows {
                let lz = cache.logic_z(&variation, BankId(0), SubarrayId(1), *row, cols);
                for col in 0..cols {
                    let z = prefix - cpl * 0.5 + dist - tterm
                        + SIGMA_CELL_LOGIC * lz[col]
                        + SIGMA_SA_LOGIC * sa[col];
                    acc += dram_core::math::normal_cdf(z).clamp(0.0, 1.0);
                }
            }
            black_box(acc)
        });
    });
}

/// Writes every engine benchmark measurement to `BENCH_engine.json`
/// at the repository root.
fn write_summary() {
    let results = criterion::results();
    let entries: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::Value::Object(vec![
                ("id".to_string(), serde_json::Value::Str(r.id.clone())),
                ("mean_ns".to_string(), serde_json::Value::Float(r.mean_ns)),
                (
                    "median_ns".to_string(),
                    serde_json::Value::Float(r.median_ns),
                ),
                (
                    "iterations".to_string(),
                    serde_json::Value::UInt(r.iterations),
                ),
            ])
        })
        .collect();
    let json = serde_json::to_string_pretty(&entries).expect("summary serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, json).expect("summary written");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench, width_sweep
}
criterion_main!(benches);
