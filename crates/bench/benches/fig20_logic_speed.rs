//! Criterion benchmark: regenerates the paper's `fig20` artifact end
//! to end (fleet construction excluded; measured per experiment run).

use criterion::{criterion_group, criterion_main, Criterion};
use fcdram_bench::{bench_scale, config, run_and_check, speed_fleet};

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut fleet = speed_fleet(&scale);
    c.bench_function("fig20_logic_speed", |b| {
        b.iter(|| run_and_check("fig20", &mut fleet, &scale));
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
