//! Ablation: job-scheduler throughput across fleet sizes.
//!
//! Serves a 48-job heterogeneous batch (the `characterize serve` demo
//! mix) on fleets of 1 / 4 / 16 chips, serial (1 shard) and sharded
//! over the available CPUs, and writes a `BENCH_sched.json` summary at
//! the repository root in the same shape as `BENCH_engine.json`.
//!
//! Derived entries:
//!
//! * `sched_jobs_per_sec/<N>chips` — batch size over the sharded mean
//!   wall time (dimensionless throughput in `mean_ns`);
//! * `sched_speedup/<N>chips` — serial/sharded mean-time ratio, with
//!   the worker-thread count in `iterations`. Per-job work is
//!   embarrassingly parallel, so on a multi-core host the ratio tracks
//!   the CPU count; on a single-core host the sharded run can only
//!   timeslice and the ratio honestly degrades to ≈1.0;
//! * `sched_jobs/mix` and `sched_native_ops/mix` — **deterministic**
//!   scheduled-batch shape (jobs in `mean_ns`, with native ops
//!   executed for the ops entry). `tools/bench_check.rs` gates on
//!   these, so a planner or admission regression that changes what
//!   gets scheduled fails CI even though wall time varies by machine;
//! * `sched_fused_jobs/mix` — **deterministic** count of jobs in
//!   fusion groups (size ≥ 2) of the 4-chip plan — same chip, mapped
//!   program, and lane count, adjacency-independent (exact-gated: the
//!   cross-job fusion shape the executor and the daemon's
//!   `fc_fused_jobs_total` counter derive from).
//!
//! The serial configuration is additionally measured with cross-job
//! fusion off (`sched_batch_unfused/<N>chips`, `policy.fuse =
//! false`): the fused/unfused delta is the service-time drop operand
//! fusion buys, with byte-identical reports either way.

use characterize::serve::{build_batch, DEMO_MIX};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::FleetConfig;
use fcsched::{serve_batch, Batch, SchedPolicy};
use fcsynth::CostModel;

/// Fleet sizes swept by the ablation.
const CHIP_COUNTS: [usize; 3] = [1, 4, 16];
/// Batch size: enough jobs that every fleet size has real multi-tenant
/// contention.
const JOBS: usize = 48;
/// SIMD lanes per job.
const LANES: usize = 256;

/// Worker threads for the sharded configuration: one per CPU, floored
/// at 2 so the threaded path is exercised even on one core.
fn worker_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .clamp(2, 16)
}

fn demo_batch(cost: &CostModel) -> Batch {
    let exprs: Vec<String> = DEMO_MIX.iter().map(|s| s.to_string()).collect();
    build_batch(&exprs, JOBS, LANES, 0xBA7C4, cost, 16).expect("demo mix compiles")
}

/// One full schedule+execute pass; returns the retry count so the
/// work cannot be optimized away. `fuse` selects cross-job operand
/// fusion (the default) or per-job execution (ablation); the report
/// is byte-identical either way.
fn serve(batch: &Batch, cost: &CostModel, chips: usize, shards: usize, fuse: bool) -> u64 {
    let fleet = FleetConfig::table1(chips);
    let policy = SchedPolicy {
        fuse,
        ..SchedPolicy::default().with_shards(shards)
    };
    let report = serve_batch(&fleet, cost, &policy, batch).expect("batch schedules");
    assert_eq!(report.jobs(), JOBS);
    report.total_retries()
}

fn bench(c: &mut Criterion) {
    let cost = CostModel::table1_defaults();
    let batch = demo_batch(&cost);
    let threads = worker_threads();
    for chips in CHIP_COUNTS {
        c.bench_function(format!("sched_batch_serial/{chips}chips"), |b| {
            b.iter(|| black_box(serve(&batch, &cost, chips, 1, true)));
        });
        c.bench_function(format!("sched_batch_unfused/{chips}chips"), |b| {
            b.iter(|| black_box(serve(&batch, &cost, chips, 1, false)));
        });
        c.bench_function(format!("sched_batch_sharded/{chips}chips"), |b| {
            b.iter(|| black_box(serve(&batch, &cost, chips, threads, true)));
        });
    }
    write_summary(&cost, &batch, threads);
}

/// Writes the wall-clock measurements plus derived throughput and
/// deterministic batch-shape entries to `BENCH_sched.json`.
fn write_summary(cost: &CostModel, batch: &Batch, threads: usize) {
    let results = criterion::results();
    let mean_of =
        |id: &str| -> Option<f64> { results.iter().find(|r| r.id == id).map(|r| r.mean_ns) };
    let mut entries: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::Value::Object(vec![
                ("id".to_string(), serde_json::Value::Str(r.id.clone())),
                ("mean_ns".to_string(), serde_json::Value::Float(r.mean_ns)),
                (
                    "median_ns".to_string(),
                    serde_json::Value::Float(r.median_ns),
                ),
                (
                    "iterations".to_string(),
                    serde_json::Value::UInt(r.iterations),
                ),
            ])
        })
        .collect();
    let mut derived = |id: String, value: f64, iterations: u64| {
        entries.push(serde_json::Value::Object(vec![
            ("id".to_string(), serde_json::Value::Str(id)),
            ("mean_ns".to_string(), serde_json::Value::Float(value)),
            ("median_ns".to_string(), serde_json::Value::Float(value)),
            (
                "iterations".to_string(),
                serde_json::Value::UInt(iterations),
            ),
        ]));
    };
    for chips in CHIP_COUNTS {
        let serial = mean_of(&format!("sched_batch_serial/{chips}chips"));
        let sharded = mean_of(&format!("sched_batch_sharded/{chips}chips"));
        if let (Some(s), Some(p)) = (serial, sharded) {
            let speedup = s / p;
            let jobs_per_sec = JOBS as f64 / (p / 1e9);
            println!(
                "sched at {chips} chips: {jobs_per_sec:.0} jobs/s sharded, \
                 {speedup:.2}x over {threads} thread(s)"
            );
            derived(
                format!("sched_jobs_per_sec/{chips}chips"),
                jobs_per_sec,
                threads as u64,
            );
            derived(
                format!("sched_speedup/{chips}chips"),
                speedup,
                threads as u64,
            );
        }
    }
    // Deterministic batch shape under the default policy on the
    // 4-chip fleet: what got scheduled, independent of wall clock.
    let fleet = FleetConfig::table1(4);
    let policy = SchedPolicy::default().with_shards(1);
    let report = serve_batch(&fleet, cost, &policy, batch).expect("batch schedules");
    println!(
        "sched_jobs/mix: {} jobs, {} native ops, {} remapped, {} flagged, {} retries",
        report.jobs(),
        report.native_ops(),
        report.remapped(),
        report.flagged(),
        report.total_retries()
    );
    derived(
        "sched_jobs/mix".to_string(),
        report.jobs() as f64,
        report.succeeded() as u64,
    );
    derived(
        "sched_native_ops/mix".to_string(),
        report.native_ops() as f64,
        report.total_retries(),
    );
    // Deterministic cross-job fusion shape of the same plan: how many
    // jobs sit in same-(chip, program, lanes) fusion groups of two or
    // more, adjacency-independent. A pure function of (fleet, batch,
    // policy) — independent of the fuse knob, shard count, and
    // backend — so the daemon's `fc_fused_jobs_total` counter is
    // pinned here.
    let plan = fcsched::Planner::new(&fleet, cost, &policy)
        .plan(batch)
        .expect("batch plans");
    let fused = fcsched::fused_jobs(batch, &plan);
    println!(
        "sched_fused_jobs/mix: {fused} of {} jobs in fused runs",
        report.jobs()
    );
    derived("sched_fused_jobs/mix".to_string(), fused as f64, 1);
    let json = serde_json::to_string_pretty(&entries).expect("summary serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    std::fs::write(path, json).expect("summary written");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
