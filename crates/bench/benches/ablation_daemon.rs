//! Ablation: the always-on serving daemon end to end.
//!
//! Runs the built-in `characterize daemon` demo session — four tenants
//! across all three SLO tiers on the 12-chip Table-1 fleet — as a live
//! session (producer threads, admission control, micro-batching,
//! drain) and as a deterministic replay of the recorded log, then
//! writes a `BENCH_daemon.json` summary at the repository root in the
//! same shape as `BENCH_sched.json`.
//!
//! Derived entries:
//!
//! * `daemon_replay_overhead/demo` — replay/live mean-time ratio: what
//!   the channel plumbing and producer threads cost over re-executing
//!   the recorded event stream (wall-clock, machine-dependent —
//!   reported, not gated);
//! * `daemon_admitted/{gold,silver,bronze}`, `daemon_shed/bronze`,
//!   `daemon_narrowed/bronze`, `daemon_rejected/total`,
//!   `daemon_batches/total` — **deterministic** admission-ledger
//!   counts (value in `mean_ns`). The daemon report is a pure function
//!   of `(session log, fleet, cost model)`, so these are exact on
//!   every machine; `tools/bench_check.rs` gates them in both
//!   directions — an admission, placement, or traffic-model change
//!   that admits one job more *or* less fails CI until the baseline is
//!   bumped deliberately.

use characterize::daemon::demo_tenants;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::FleetConfig;
use fcserve::{daemon, DaemonConfig, DaemonReport, SessionLog};
use fcsynth::CostModel;

/// Fleet size: the Table-1 dozen, wide enough that full micro-batches
/// reach the strained tail members that narrow the bronze 16-AND.
const CHIPS: usize = 12;

fn config() -> DaemonConfig {
    DaemonConfig::default()
}

/// One full live session; returns the completed count so the work
/// cannot be optimized away.
fn live(fleet: &FleetConfig, cost: &CostModel) -> (SessionLog, DaemonReport) {
    daemon::run_live(fleet, cost, &config(), &demo_tenants()).expect("demo session runs")
}

fn bench(c: &mut Criterion) {
    let cost = CostModel::table1_defaults();
    let fleet = FleetConfig::table1(CHIPS);
    let (log, report) = live(&fleet, &cost);
    assert!(report.totals.completed > 0, "demo session completes work");
    c.bench_function("daemon_live/demo", |b| {
        b.iter(|| black_box(live(&fleet, &cost).1.totals.completed));
    });
    c.bench_function("daemon_replay/demo", |b| {
        b.iter(|| {
            let replayed = daemon::replay(&fleet, &cost, &log, None, None).expect("replay runs");
            black_box(replayed.totals.completed)
        });
    });
    write_summary(&log, &report);
}

/// Writes the wall-clock measurements plus the deterministic
/// admission-ledger counts to `BENCH_daemon.json`.
fn write_summary(log: &SessionLog, report: &DaemonReport) {
    let results = criterion::results();
    let mean_of =
        |id: &str| -> Option<f64> { results.iter().find(|r| r.id == id).map(|r| r.mean_ns) };
    let mut entries: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::Value::Object(vec![
                ("id".to_string(), serde_json::Value::Str(r.id.clone())),
                ("mean_ns".to_string(), serde_json::Value::Float(r.mean_ns)),
                (
                    "median_ns".to_string(),
                    serde_json::Value::Float(r.median_ns),
                ),
                (
                    "iterations".to_string(),
                    serde_json::Value::UInt(r.iterations),
                ),
            ])
        })
        .collect();
    let mut derived = |id: String, value: f64, iterations: u64| {
        entries.push(serde_json::Value::Object(vec![
            ("id".to_string(), serde_json::Value::Str(id)),
            ("mean_ns".to_string(), serde_json::Value::Float(value)),
            ("median_ns".to_string(), serde_json::Value::Float(value)),
            (
                "iterations".to_string(),
                serde_json::Value::UInt(iterations),
            ),
        ]));
    };
    if let (Some(live), Some(replay)) = (mean_of("daemon_live/demo"), mean_of("daemon_replay/demo"))
    {
        let overhead = replay / live;
        println!("daemon replay/live time ratio: {overhead:.3}x");
        derived("daemon_replay_overhead/demo".to_string(), overhead, 1);
    }
    // Deterministic admission ledger of the demo session: what the
    // daemon admitted, shed, rejected, and narrowed, independent of
    // wall clock. The report is a pure function of the session log.
    let t = &report.totals;
    println!(
        "daemon/demo ledger: {} submitted, {} admitted, {} shed, {} rejected, \
         {} narrowed, {} micro-batches over {} events",
        t.submitted,
        t.admitted,
        t.shed,
        t.rejected,
        t.narrowed,
        t.batches,
        log.events.len()
    );
    let jobs = t.submitted as u64;
    for (tier, admitted, shed, narrowed) in report.tier_counts() {
        derived(format!("daemon_admitted/{tier}"), admitted as f64, jobs);
        if tier == fcserve::TierClass::Bronze {
            derived(format!("daemon_shed/{tier}"), shed as f64, jobs);
            derived(format!("daemon_narrowed/{tier}"), narrowed as f64, jobs);
        }
    }
    derived("daemon_rejected/total".to_string(), t.rejected as f64, jobs);
    derived("daemon_batches/total".to_string(), t.batches as f64, jobs);
    let json = serde_json::to_string_pretty(&entries).expect("summary serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_daemon.json");
    std::fs::write(path, json).expect("summary written");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
