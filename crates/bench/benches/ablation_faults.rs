//! Ablation: serving cost and degradation bookkeeping under the demo
//! fault plan.
//!
//! Serves the 48-job `characterize serve` demo mix on a 6-chip fleet
//! with and without `FaultPlan::demo()` and writes a
//! `BENCH_faults.json` summary at the repository root in the same
//! shape as `BENCH_sched.json`.
//!
//! Derived entries:
//!
//! * `faults_overhead/demo` — faulted/clean mean-time ratio: what the
//!   disturbance charging, derated retries, mitigation scheduling, and
//!   dropout re-placement cost on top of a clean serve (wall-clock,
//!   machine-dependent — reported, not gated);
//! * `faults_mitigations/demo`, `faults_dropouts/demo`,
//!   `faults_replaced/demo`, `faults_diverted/demo`,
//!   `faults_disturbance/demo` — **deterministic** degradation-ledger
//!   counts (value in `mean_ns`). The planner derives the fleet-health
//!   ledger from `(fleet, batch, policy)` alone, so these are exact on
//!   every machine; `tools/bench_check.rs` gates them in both
//!   directions — a fault-model change that schedules one mitigation
//!   more *or* less fails CI until the baseline is bumped
//!   deliberately.

use characterize::serve::{build_batch, DEMO_MIX};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::FleetConfig;
use fcsched::{serve_batch, Batch, FaultPlan, SchedPolicy};
use fcsynth::CostModel;

/// Fleet size: enough members that the demo dropout leaves headroom.
const CHIPS: usize = 6;
/// Batch size: the `characterize serve` demo scale.
const JOBS: usize = 48;
/// SIMD lanes per job.
const LANES: usize = 256;

fn demo_batch(cost: &CostModel) -> Batch {
    let exprs: Vec<String> = DEMO_MIX.iter().map(|s| s.to_string()).collect();
    build_batch(&exprs, JOBS, LANES, 0xBA7C4, cost, 16).expect("demo mix compiles")
}

fn policy(faults: Option<FaultPlan>) -> SchedPolicy {
    SchedPolicy {
        faults,
        ..SchedPolicy::default().with_shards(1)
    }
}

/// One full schedule+execute pass; returns the retry count so the
/// work cannot be optimized away.
fn serve(batch: &Batch, cost: &CostModel, faults: Option<FaultPlan>) -> u64 {
    let fleet = FleetConfig::table1(CHIPS);
    let report = serve_batch(&fleet, cost, &policy(faults), batch).expect("batch schedules");
    assert_eq!(report.jobs(), JOBS);
    report.total_retries()
}

fn bench(c: &mut Criterion) {
    let cost = CostModel::table1_defaults();
    let batch = demo_batch(&cost);
    c.bench_function("faults_serve/clean", |b| {
        b.iter(|| black_box(serve(&batch, &cost, None)));
    });
    c.bench_function("faults_serve/demo", |b| {
        b.iter(|| black_box(serve(&batch, &cost, Some(FaultPlan::demo()))));
    });
    write_summary(&cost, &batch);
}

/// Writes the wall-clock measurements plus the deterministic
/// degradation-ledger counts to `BENCH_faults.json`.
fn write_summary(cost: &CostModel, batch: &Batch) {
    let results = criterion::results();
    let mean_of =
        |id: &str| -> Option<f64> { results.iter().find(|r| r.id == id).map(|r| r.mean_ns) };
    let mut entries: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::Value::Object(vec![
                ("id".to_string(), serde_json::Value::Str(r.id.clone())),
                ("mean_ns".to_string(), serde_json::Value::Float(r.mean_ns)),
                (
                    "median_ns".to_string(),
                    serde_json::Value::Float(r.median_ns),
                ),
                (
                    "iterations".to_string(),
                    serde_json::Value::UInt(r.iterations),
                ),
            ])
        })
        .collect();
    let mut derived = |id: String, value: f64, iterations: u64| {
        entries.push(serde_json::Value::Object(vec![
            ("id".to_string(), serde_json::Value::Str(id)),
            ("mean_ns".to_string(), serde_json::Value::Float(value)),
            ("median_ns".to_string(), serde_json::Value::Float(value)),
            (
                "iterations".to_string(),
                serde_json::Value::UInt(iterations),
            ),
        ]));
    };
    if let (Some(clean), Some(faulted)) =
        (mean_of("faults_serve/clean"), mean_of("faults_serve/demo"))
    {
        let overhead = faulted / clean;
        println!("fault-plan serving overhead: {overhead:.3}x over clean");
        derived("faults_overhead/demo".to_string(), overhead, 1);
    }
    // Deterministic degradation ledger of the demo plan on the 6-chip
    // fleet: what the planner scheduled, independent of wall clock.
    let fleet = FleetConfig::table1(CHIPS);
    let report = serve_batch(&fleet, cost, &policy(Some(FaultPlan::demo())), batch)
        .expect("batch schedules");
    let health = report.health.as_ref().expect("fault plan yields health");
    println!(
        "faults/demo ledger: {} disturbance acts, {} mitigations, {} diverted, \
         {} dropout(s), {} job(s) re-placed",
        health.total_disturbance(),
        health.total_mitigations(),
        health.total_diverted(),
        health.dropouts.len(),
        health.replaced_jobs
    );
    derived(
        "faults_mitigations/demo".to_string(),
        health.total_mitigations() as f64,
        JOBS as u64,
    );
    derived(
        "faults_dropouts/demo".to_string(),
        health.dropouts.len() as f64,
        CHIPS as u64,
    );
    derived(
        "faults_replaced/demo".to_string(),
        health.replaced_jobs as f64,
        JOBS as u64,
    );
    derived(
        "faults_diverted/demo".to_string(),
        health.total_diverted() as f64,
        JOBS as u64,
    );
    derived(
        "faults_disturbance/demo".to_string(),
        health.total_disturbance() as f64,
        JOBS as u64,
    );
    let json = serde_json::to_string_pretty(&entries).expect("summary serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(path, json).expect("summary written");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
