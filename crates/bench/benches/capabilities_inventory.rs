//! Criterion benchmark: regenerates the per-module capability
//! inventory (extended-version artifact) end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use fcdram_bench::{bench_fleet, bench_scale, config, run_and_check};

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut fleet = bench_fleet(&scale);
    c.bench_function("capabilities_inventory", |b| {
        b.iter(|| run_and_check("capabilities", &mut fleet, &scale));
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
