//! Ablation: the analog charge-sharing model.
//!
//! Measures the cost of the per-column analog pipeline (charge share →
//! differential → margin classification → success probability) and
//! shows how the bitline-to-cell capacitance ratio `C_b/C_c` — a key
//! modeling constant — shrinks sensing margins as input count grows.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::analog::classify_margin;
use dram_core::{AnalogParams, CellRef, Chip, ChipId, LogicEvent, LogicOp, MarginClass};

fn bench(c: &mut Criterion) {
    let p = AnalogParams::ddr4_default();

    c.bench_function("analog_charge_share_16_cells", |b| {
        let cells: Vec<f64> = (0..16)
            .map(|i| if i % 3 == 0 { 1.2 } else { 0.0 })
            .collect();
        b.iter(|| black_box(p.bitline_after_share(&cells)));
    });

    c.bench_function("analog_margin_classification", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let diff = ((i % 800) as f64 - 400.0) / 100.0;
            black_box(classify_margin(
                diff,
                if i.is_multiple_of(2) { 0.9 } else { 0.1 },
            ))
        });
    });

    // C_b/C_c ablation: the margin in volts for the hardest AND
    // pattern shrinks with both the ratio and the input count.
    let mut group = c.benchmark_group("analog_cb_cc_ratio");
    for ratio in [4.0f64, 6.0, 8.0] {
        let params = AnalogParams {
            cb_over_cc: ratio,
            ..AnalogParams::ddr4_default()
        };
        group.bench_function(format!("ratio_{ratio}"), |b| {
            b.iter(|| {
                let mut worst = f64::MAX;
                for n in [2usize, 4, 8, 16] {
                    let margin = 0.48 * params.cell_unit(n);
                    worst = worst.min(margin);
                }
                assert!(worst > 0.0);
                black_box(worst)
            });
        });
    }
    group.finish();

    // End-to-end per-cell probability evaluation (the hot inner loop
    // of every experiment).
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(16);
    let chip = Chip::new(cfg, ChipId(0));
    c.bench_function("reliability_logic_cell_prob", |b| {
        let ev = LogicEvent {
            op: LogicOp::And,
            n: 8,
            margin_class: MarginClass::Comfortable,
            neighbor_mismatch: 1.0,
            com_dist: 0.4,
            ref_dist: 0.6,
            temperature: dram_core::Temperature::BASELINE,
        };
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let cell = CellRef {
                bank: dram_core::BankId(0),
                subarray: dram_core::SubarrayId(1),
                row: dram_core::LocalRow(i % 512),
                col: dram_core::Col(i % 16),
                stripe: 1,
            };
            black_box(chip.reliability().logic_success_prob(&ev, cell))
        });
    });
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
