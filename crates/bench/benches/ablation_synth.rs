//! Ablation: logic-synthesis compile throughput and mapping quality.
//!
//! Compiles three representative workloads — a small expression
//! (3-input majority), a medium one (8-bit parity XOR chain), and a
//! large truth table (8-input parity, 128 minterms of 8-input ANDs) —
//! through the full `fcsynth` pipeline (parse → DAG optimize →
//! reliability-aware map) and writes a `BENCH_synth.json` summary at
//! the repository root in the same shape as `BENCH_engine.json`.
//!
//! Besides the `synth_compile/<size>` wall-clock entries, derived
//! `synth_mapped_ops/<size>` entries record the **deterministic**
//! mapped native-op count in `mean_ns` (and the naive 2-input-tree op
//! count in `iterations`); `tools/bench_check.rs` gates on those, so
//! an optimizer or mapper regression that inflates emitted programs
//! fails CI even though compile times vary by machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fcsynth::{compile_expr, CostModel, Expr, Mapper};

/// The three compile workloads: (label, expression producer).
fn workloads() -> Vec<(&'static str, Expr)> {
    let majority = Expr::parse("(a & b) | (a & c) | (b & c)").expect("parses");
    let parity8 = Expr::parse("b0 ^ b1 ^ b2 ^ b3 ^ b4 ^ b5 ^ b6 ^ b7").expect("parses");
    let bits: Vec<bool> = (0..256u32).map(|m| (m.count_ones() % 2) == 1).collect();
    let table8 = Expr::from_truth_table(8, &bits).expect("valid table");
    vec![("small", majority), ("medium", parity8), ("large", table8)]
}

fn bench(c: &mut Criterion) {
    let cost = CostModel::table1_defaults();
    for (label, expr) in workloads() {
        c.bench_function(format!("synth_compile/{label}"), |b| {
            b.iter(|| {
                let compiled = compile_expr(black_box(expr.clone()), &cost, 16);
                black_box(compiled.mapping.native_ops)
            });
        });
    }
    write_summary(&cost);
}

/// Writes the compile-time measurements plus derived deterministic
/// op-count entries to `BENCH_synth.json`.
fn write_summary(cost: &CostModel) {
    let mut entries: Vec<serde_json::Value> = criterion::results()
        .iter()
        .map(|r| {
            serde_json::Value::Object(vec![
                ("id".to_string(), serde_json::Value::Str(r.id.clone())),
                ("mean_ns".to_string(), serde_json::Value::Float(r.mean_ns)),
                (
                    "median_ns".to_string(),
                    serde_json::Value::Float(r.median_ns),
                ),
                (
                    "iterations".to_string(),
                    serde_json::Value::UInt(r.iterations),
                ),
            ])
        })
        .collect();
    for (label, expr) in workloads() {
        let compiled = compile_expr(expr, cost, 16);
        let naive = Mapper::naive(cost).map(&compiled.circuit);
        println!(
            "synth_mapped_ops/{label}: {} native ops (naive {}), expected success {:.2}%",
            compiled.mapping.native_ops,
            naive.native_ops,
            compiled.mapping.expected_success * 100.0
        );
        entries.push(serde_json::Value::Object(vec![
            (
                "id".to_string(),
                serde_json::Value::Str(format!("synth_mapped_ops/{label}")),
            ),
            (
                "mean_ns".to_string(),
                serde_json::Value::Float(compiled.mapping.native_ops as f64),
            ),
            (
                "median_ns".to_string(),
                serde_json::Value::Float(compiled.mapping.native_ops as f64),
            ),
            (
                "iterations".to_string(),
                serde_json::Value::UInt(naive.native_ops as u64),
            ),
        ]));
    }
    let json = serde_json::to_string_pretty(&entries).expect("summary serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_synth.json");
    std::fs::write(path, json).expect("summary written");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
