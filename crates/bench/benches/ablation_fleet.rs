//! Ablation: fleet characterization sweep throughput.
//!
//! Sweeps seeded Table-1 fleets of 4 / 16 / 64 chips through the
//! minimal characterization grid, serial (1 shard) and sharded over
//! the available CPUs, and writes a `BENCH_fleet.json` summary at the
//! repository root in the same shape as `BENCH_engine.json`.
//!
//! Derived `fleet_sweep_speedup/<N>chips` entries record the
//! dimensionless serial/sharded mean-time ratio in `mean_ns` and
//! `median_ns`, and the worker-thread count in `iterations`. The
//! per-chip work is embarrassingly parallel, so on a multi-core host
//! the 16-chip speedup tracks the CPU count (≥2x from 2 cores up); on
//! a single-core host the sharded sweep still runs ≥2 worker threads
//! but can only timeslice, so the ratio honestly degrades to ≈1.0.

use characterize::sweep::{run_fleet_sweep, SweepConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::FleetConfig;

/// Chip counts swept by the ablation.
const CHIP_COUNTS: [usize; 3] = [4, 16, 64];

/// Worker threads for the sharded configuration: one per CPU, floored
/// at 2 so the threaded path is exercised even on one core.
fn worker_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .clamp(2, 16)
}

/// One full fleet sweep; returns the measured cell count so the work
/// cannot be optimized away.
fn sweep(chips: usize, shards: usize) -> u64 {
    let fleet = FleetConfig::table1(chips);
    let cfg = SweepConfig::bench().with_shards(shards);
    let report = run_fleet_sweep(&fleet, &cfg);
    assert_eq!(report.chips.len(), chips);
    report
        .chips
        .iter()
        .map(|c| c.not.count() + c.logic.count())
        .sum()
}

fn bench(c: &mut Criterion) {
    let threads = worker_threads();
    for chips in CHIP_COUNTS {
        c.bench_function(format!("fleet_sweep_serial/{chips}chips"), |b| {
            b.iter(|| black_box(sweep(chips, 1)));
        });
        c.bench_function(format!("fleet_sweep_sharded/{chips}chips"), |b| {
            b.iter(|| black_box(sweep(chips, threads)));
        });
    }
    write_summary(threads);
}

/// Writes the fleet measurements plus derived speedup entries to
/// `BENCH_fleet.json`.
fn write_summary(threads: usize) {
    let results = criterion::results();
    let mean_of =
        |id: &str| -> Option<f64> { results.iter().find(|r| r.id == id).map(|r| r.mean_ns) };
    let mut entries: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::Value::Object(vec![
                ("id".to_string(), serde_json::Value::Str(r.id.clone())),
                ("mean_ns".to_string(), serde_json::Value::Float(r.mean_ns)),
                (
                    "median_ns".to_string(),
                    serde_json::Value::Float(r.median_ns),
                ),
                (
                    "iterations".to_string(),
                    serde_json::Value::UInt(r.iterations),
                ),
            ])
        })
        .collect();
    for chips in CHIP_COUNTS {
        let serial = mean_of(&format!("fleet_sweep_serial/{chips}chips"));
        let sharded = mean_of(&format!("fleet_sweep_sharded/{chips}chips"));
        if let (Some(s), Some(p)) = (serial, sharded) {
            let speedup = s / p;
            println!(
                "fleet sweep speedup at {chips} chips: {speedup:.2}x over {threads} thread(s)"
            );
            entries.push(serde_json::Value::Object(vec![
                (
                    "id".to_string(),
                    serde_json::Value::Str(format!("fleet_sweep_speedup/{chips}chips")),
                ),
                ("mean_ns".to_string(), serde_json::Value::Float(speedup)),
                ("median_ns".to_string(), serde_json::Value::Float(speedup)),
                (
                    "iterations".to_string(),
                    serde_json::Value::UInt(threads as u64),
                ),
            ]));
        }
    }
    let json = serde_json::to_string_pretty(&entries).expect("summary serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, json).expect("summary written");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
