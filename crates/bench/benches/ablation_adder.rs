//! Ablation: full-adder circuit choice on the in-DRAM substrate.
//!
//! The carry of a ripple adder can come from the functionally-complete
//! gate set (3 extra gates after the shared XOR subterms; 9 ops/bit
//! total) or from Ambit-style in-subarray majority (1 native MAJ;
//! 7 ops/bit). This bench compares the two on the same simulated
//! SK Hynix part: wall time per 4-bit add, native-op counts, modeled
//! DDR4 cost, and the analytic lane-accuracy estimate.

use criterion::{criterion_group, criterion_main, Criterion};
use fcdram_bench::config;
use simdram::{reliability, AdderKind, CostModel, DramSubstrate, SimdVm};

fn dram_vm() -> SimdVm<DramSubstrate> {
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(32);
    let engine = fcdram::BulkEngine::with_budget(
        fcdram::Fcdram::new(cfg),
        dram_core::BankId(0),
        dram_core::SubarrayId(0),
        2_048,
    )
    .expect("engine");
    SimdVm::new(DramSubstrate::new(engine)).expect("dram vm")
}

fn report(kind: AdderKind) {
    let mut vm = dram_vm();
    vm.set_adder(kind);
    let speed = vm.substrate().engine().config().speed;
    let lanes = vm.lanes();
    let a = vm.alloc_uint(4).unwrap();
    let b = vm.alloc_uint(4).unwrap();
    vm.clear_trace();
    let s = vm.add(&a, &b).unwrap();
    vm.free_uint(s);
    let ops = vm.trace().in_dram_ops();
    let acc = reliability::expected_lane_accuracy(vm.trace());
    let cost = CostModel::new(speed, lanes).trace_cost(vm.trace());
    println!(
        "adder {kind:?}: {ops} native ops, predicted lane accuracy {:.1}%, \
         {:.0} ns, {:.0} pJ, {} commands",
        acc * 100.0,
        cost.latency_ns,
        cost.energy_pj,
        cost.commands
    );
}

fn bench(c: &mut Criterion) {
    report(AdderKind::FcGates);
    report(AdderKind::FusedMaj);

    let mut group = c.benchmark_group("adder_ablation");
    for kind in [AdderKind::FcGates, AdderKind::FusedMaj] {
        group.bench_function(format!("{kind:?}_add_w4"), |b| {
            let mut vm = dram_vm();
            vm.set_adder(kind);
            let x = vm.alloc_uint(4).unwrap();
            let y = vm.alloc_uint(4).unwrap();
            b.iter(|| {
                let s = vm.add(&x, &y).unwrap();
                vm.free_uint(criterion::black_box(s));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
