//! Criterion benchmark: the `simdram` word-arithmetic extension.
//!
//! Measures (a) gate-synthesis throughput on the exact host substrate
//! across widths, (b) the in-DRAM execution path (every native gate is
//! a full simulated command sequence), and (c) the `arith` experiment
//! pipeline end to end at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use fcdram_bench::{bench_fleet, bench_scale, config, run_and_check};
use simdram::{DramSubstrate, HostSubstrate, SimdVm};

fn host_vm(lanes: usize) -> SimdVm<HostSubstrate> {
    SimdVm::new(HostSubstrate::new(lanes, 16_384)).expect("host vm")
}

fn dram_vm() -> SimdVm<DramSubstrate> {
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(32);
    let engine = fcdram::BulkEngine::with_budget(
        fcdram::Fcdram::new(cfg),
        dram_core::BankId(0),
        dram_core::SubarrayId(0),
        2_048,
    )
    .expect("engine");
    SimdVm::new(DramSubstrate::new(engine)).expect("dram vm")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_host");
    for width in [8usize, 16, 32] {
        group.bench_function(format!("add_w{width}"), |b| {
            let mut vm = host_vm(64);
            let x = vm.alloc_uint(width).unwrap();
            let y = vm.alloc_uint(width).unwrap();
            b.iter(|| {
                let s = vm.add(&x, &y).unwrap();
                vm.free_uint(criterion::black_box(s));
            });
        });
    }
    group.bench_function("mul_w8x8", |b| {
        let mut vm = host_vm(64);
        let x = vm.alloc_uint(8).unwrap();
        let y = vm.alloc_uint(8).unwrap();
        b.iter(|| {
            let p = vm.mul(&x, &y).unwrap();
            vm.free_uint(criterion::black_box(p));
        });
    });
    group.bench_function("popcount_w16", |b| {
        let mut vm = host_vm(64);
        let x = vm.alloc_uint(16).unwrap();
        b.iter(|| {
            let p = vm.popcount(&x).unwrap();
            vm.free_uint(criterion::black_box(p));
        });
    });
    group.finish();

    let mut group = c.benchmark_group("simd_dram");
    group.bench_function("xor", |b| {
        let mut vm = dram_vm();
        let x = vm.alloc_row().unwrap();
        let y = vm.alloc_row().unwrap();
        b.iter(|| {
            let r = vm.xor(x, y).unwrap();
            vm.release(criterion::black_box(r));
        });
    });
    group.bench_function("add_w4", |b| {
        let mut vm = dram_vm();
        let x = vm.alloc_uint(4).unwrap();
        let y = vm.alloc_uint(4).unwrap();
        b.iter(|| {
            let s = vm.add(&x, &y).unwrap();
            vm.free_uint(criterion::black_box(s));
        });
    });
    group.finish();

    let scale = bench_scale();
    let mut fleet = bench_fleet(&scale);
    c.bench_function("arith_experiment", |b| {
        b.iter(|| run_and_check("arith", &mut fleet, &scale));
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
