//! Ablation: the unified execution-backend layer.
//!
//! Executes the `characterize serve` demo mix through the one
//! `fcexec` engine on its three shipping configurations — the host
//! golden model (`SimdVm<HostSubstrate>`), the characterized device
//! model (`SimdVm<DramSubstrate>`), and the command-schedule
//! `BenderBackend` — and writes a `BENCH_exec.json` summary at the
//! repository root in the same shape as `BENCH_engine.json`.
//!
//! The timed loops use the two-phase API the way a serving deployment
//! does: every program is [`ExecBackend::prepare`]d once outside the
//! measurement loop, and the loop times [`ExecBackend::run_prepared`]
//! alone — the per-execution cost a scheduler pays after compiling a
//! job once. `tools/bench_check.rs` gates the device backends as
//! *ratios* against `exec_host/mix` from the same run
//! (wall-clock-free, so a slow CI container cannot fail them).
//!
//! Derived entries:
//!
//! * `exec_native_ops/vm` and `exec_native_ops/bender` —
//!   **deterministic** in-DRAM operation counts of one pass of the mix
//!   on the VM device backend (trace) and the command-schedule backend
//!   (executed schedules). `tools/bench_check.rs` exact-gates both
//!   against the committed baseline, so the two backends walking a
//!   different operation sequence — in either direction — fails CI:
//!   the bit-identity proof in `tests/exec_equivalence.rs` rests on
//!   that sequence being the same.
//! * `exec_schedule_ns/mix` — **deterministic** summed cycle-accurate
//!   command-schedule latency of the mix's programs (pure function of
//!   the programs and the speed bin; exact-gated too, pinning the
//!   latency model the scheduler's bender mode charges).
//! * `exec_prepared_templates/mix` and `exec_arena_slots/mix` —
//!   **deterministic** shape of the prepared plans: the total number
//!   of cached per-`(op family, N)` Bender command-program templates
//!   across the mix, and the summed peak arena width (simultaneously
//!   live rows) of the row plans. Exact-gated: template-cache or
//!   lifetime-analysis drift in either direction is an API-shape
//!   change, not noise.
//! * `exec_fused_visits/mix` — **deterministic** fused-visit count of
//!   the mix's step plans (pure function of the programs; exact-gated
//!   so the visit segmentation observability counters derive from
//!   cannot drift silently).
//!
//! The device backends are additionally measured *unfused*
//! (`exec_vm_dram_unfused/mix`, `exec_bender_unfused/mix`,
//! `set_fuse(false)`): the fused/unfused delta is what same-subarray
//! visit batching buys, with bit-identical results either way.

use characterize::serve::DEMO_MIX;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::{BankId, SubarrayId};
use fcdram::{BulkEngine, Fcdram, PackedBits};
use fcexec::{BenderBackend, ExecBackend, PreparedProgram, ScheduleLatency};
use fcsynth::{CostModel, SynthProgram};
use simdram::{DramSubstrate, HostSubstrate, SimdVm};

/// Modeled row width of the simulated device backends (32 lanes).
const DEVICE_COLS: usize = 64;

fn programs() -> Vec<(SynthProgram, usize)> {
    let cost = CostModel::table1_defaults();
    DEMO_MIX
        .iter()
        .map(|text| {
            let c = fcsynth::compile(text, &cost, 16).expect("demo mix compiles");
            (c.mapping.program, c.circuit.inputs().len())
        })
        .collect()
}

fn operands(n: usize, lanes: usize, seed: u64) -> Vec<PackedBits> {
    (0..n)
        .map(|i| {
            let mut p = PackedBits::zeros(lanes);
            for l in 0..lanes {
                p.set(l, dram_core::math::mix3(seed, i as u64, l as u64) & 1 == 1);
            }
            p
        })
        .collect()
}

fn engine() -> BulkEngine {
    let cfg = dram_core::config::table1()
        .remove(0)
        .with_modeled_cols(DEVICE_COLS);
    BulkEngine::new(Fcdram::new(cfg), BankId(0), SubarrayId(0))
        .unwrap()
        .with_sim_config(dram_core::SimConfig::fast())
}

/// Prepares every program of the mix once on `backend` — the
/// compile-once half of the two-phase API, hoisted out of the timed
/// loops. `fuse` selects fused-visit execution (the default) or the
/// step-by-step ablation path; results are bit-identical either way.
fn prepare_mix<B: ExecBackend>(
    backend: &mut B,
    progs: &[(SynthProgram, usize)],
    fuse: bool,
) -> Vec<(PreparedProgram, usize)> {
    progs
        .iter()
        .map(|(prog, n)| {
            let mut prep = backend.prepare(prog).expect("mix prepares");
            prep.set_fuse(fuse);
            (prep, *n)
        })
        .collect()
}

/// One pass of the mix through the prepared plans; returns a result
/// word so the work cannot be optimized away.
fn run_mix<B: ExecBackend>(backend: &mut B, preps: &[(PreparedProgram, usize)]) -> u64 {
    let lanes = backend.lanes();
    let mut acc = 0u64;
    for (i, (prep, n)) in preps.iter().enumerate() {
        let ops = operands(*n, lanes, 0xE0_0E ^ i as u64);
        let out = backend
            .run_prepared(prep, &ops, |_, _| {})
            .expect("mix executes");
        acc ^= out.words().first().copied().unwrap_or(0);
    }
    acc
}

fn bench(c: &mut Criterion) {
    let progs = programs();

    let mut host = SimdVm::new(HostSubstrate::new(256, 512)).unwrap();
    let host_preps = prepare_mix(&mut host, &progs, true);
    c.bench_function("exec_host/mix", |b| {
        b.iter(|| black_box(run_mix(&mut host, &host_preps)));
    });

    // Fused (default) and unfused (step-by-step ablation) side by
    // side on both device backends: the delta is what same-subarray
    // visit batching buys — one engine borrow, one activation-map
    // flush, deferred result writes riding the next step's program.
    let mut vm_dram = SimdVm::new(DramSubstrate::new(engine())).unwrap();
    let vm_preps = prepare_mix(&mut vm_dram, &progs, true);
    c.bench_function("exec_vm_dram/mix", |b| {
        b.iter(|| black_box(run_mix(&mut vm_dram, &vm_preps)));
    });
    let vm_unfused = prepare_mix(&mut vm_dram, &progs, false);
    c.bench_function("exec_vm_dram_unfused/mix", |b| {
        b.iter(|| black_box(run_mix(&mut vm_dram, &vm_unfused)));
    });

    let mut bender = BenderBackend::new(engine()).unwrap();
    let bender_preps = prepare_mix(&mut bender, &progs, true);
    c.bench_function("exec_bender/mix", |b| {
        b.iter(|| black_box(run_mix(&mut bender, &bender_preps)));
    });
    let bender_unfused = prepare_mix(&mut bender, &progs, false);
    c.bench_function("exec_bender_unfused/mix", |b| {
        b.iter(|| black_box(run_mix(&mut bender, &bender_unfused)));
    });

    write_summary(&progs);
}

/// Writes the wall-clock measurements plus the deterministic
/// backend-parity entries to `BENCH_exec.json`.
fn write_summary(progs: &[(SynthProgram, usize)]) {
    let results = criterion::results();
    let mut entries: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::Value::Object(vec![
                ("id".to_string(), serde_json::Value::Str(r.id.clone())),
                ("mean_ns".to_string(), serde_json::Value::Float(r.mean_ns)),
                (
                    "median_ns".to_string(),
                    serde_json::Value::Float(r.median_ns),
                ),
                (
                    "iterations".to_string(),
                    serde_json::Value::UInt(r.iterations),
                ),
            ])
        })
        .collect();
    let mut derived = |id: String, value: f64, iterations: u64| {
        entries.push(serde_json::Value::Object(vec![
            ("id".to_string(), serde_json::Value::Str(id)),
            ("mean_ns".to_string(), serde_json::Value::Float(value)),
            ("median_ns".to_string(), serde_json::Value::Float(value)),
            (
                "iterations".to_string(),
                serde_json::Value::UInt(iterations),
            ),
        ]));
    };

    // Deterministic parity counts: one pass of the mix on a fresh
    // device through each backend's prepared path (pinned
    // device-call-identical to the unprepared one by
    // `tests/exec_equivalence.rs`, so these counts also pin the
    // legacy wrappers).
    let mut vm = SimdVm::new(DramSubstrate::new(engine())).unwrap();
    let vm_preps = prepare_mix(&mut vm, progs, true);
    vm.clear_trace();
    let _ = run_mix(&mut vm, &vm_preps);
    let vm_ops = vm.trace().in_dram_ops();

    let mut cmd = BenderBackend::new(engine()).unwrap();
    let cmd_preps = prepare_mix(&mut cmd, progs, true);
    let _ = run_mix(&mut cmd, &cmd_preps);
    let cmd_ops = cmd.native_ops();
    println!("exec_native_ops: vm {vm_ops}, bender {cmd_ops}");
    assert_eq!(
        vm_ops, cmd_ops,
        "the two backends walked different operation sequences"
    );
    derived("exec_native_ops/vm".to_string(), vm_ops as f64, 1);
    derived("exec_native_ops/bender".to_string(), cmd_ops as f64, 1);

    // Deterministic cycle-accurate schedule latency of the mix.
    let model = ScheduleLatency::new(dram_core::SpeedBin::Mt2666, 16);
    let schedule_ns: f64 = progs
        .iter()
        .flat_map(|(p, _)| p.steps.iter())
        .map(|s| model.step_ns(s))
        .sum();
    println!("exec_schedule_ns/mix: {schedule_ns:.0} ns");
    derived("exec_schedule_ns/mix".to_string(), schedule_ns, 1);

    // Deterministic prepared-plan shape: cached command-program
    // templates and peak row-arena width across the mix.
    let templates: usize = cmd_preps.iter().map(|(p, _)| p.template_count()).sum();
    let arena: usize = cmd_preps.iter().map(|(p, _)| p.arena_slots()).sum();
    println!("exec_prepared_templates/mix: {templates}, exec_arena_slots/mix: {arena}");
    derived(
        "exec_prepared_templates/mix".to_string(),
        templates as f64,
        1,
    );
    derived("exec_arena_slots/mix".to_string(), arena as f64, 1);

    // Deterministic fused-visit count of the mix's step plans: a pure
    // function of the programs (independent of backend and of the
    // fuse knob), so observability counters derived from it — the
    // daemon's `fc_engine_visits_total`, the per-visit trace spans —
    // are pinned here in both directions.
    let visits: usize = cmd_preps.iter().map(|(p, _)| p.fused_visits().len()).sum();
    println!("exec_fused_visits/mix: {visits}");
    derived("exec_fused_visits/mix".to_string(), visits as f64, 1);

    let json = serde_json::to_string_pretty(&entries).expect("summary serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(path, json).expect("summary written");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
