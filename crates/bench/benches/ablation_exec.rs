//! Ablation: the unified execution-backend layer.
//!
//! Executes the `characterize serve` demo mix through the one
//! `fcexec` engine on its three shipping configurations — the host
//! golden model (`SimdVm<HostSubstrate>`), the characterized device
//! model (`SimdVm<DramSubstrate>`), and the command-schedule
//! `BenderBackend` — and writes a `BENCH_exec.json` summary at the
//! repository root in the same shape as `BENCH_engine.json`.
//!
//! Derived entries:
//!
//! * `exec_native_ops/vm` and `exec_native_ops/bender` —
//!   **deterministic** in-DRAM operation counts of one pass of the mix
//!   on the VM device backend (trace) and the command-schedule backend
//!   (executed schedules). `tools/bench_check.rs` exact-gates both
//!   against the committed baseline, so the two backends walking a
//!   different operation sequence — in either direction — fails CI:
//!   the bit-identity proof in `tests/exec_equivalence.rs` rests on
//!   that sequence being the same.
//! * `exec_schedule_ns/mix` — **deterministic** summed cycle-accurate
//!   command-schedule latency of the mix's programs (pure function of
//!   the programs and the speed bin; exact-gated too, pinning the
//!   latency model the scheduler's bender mode charges).

use characterize::serve::DEMO_MIX;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::{BankId, SimFidelity, SubarrayId};
use fcdram::{BulkEngine, Fcdram, PackedBits};
use fcexec::{execute_packed, BenderBackend, ExecBackend, ScheduleLatency};
use fcsynth::{CostModel, SynthProgram};
use simdram::{DramSubstrate, HostSubstrate, SimdVm};

/// Modeled row width of the simulated device backends (32 lanes).
const DEVICE_COLS: usize = 64;

fn programs() -> Vec<(SynthProgram, usize)> {
    let cost = CostModel::table1_defaults();
    DEMO_MIX
        .iter()
        .map(|text| {
            let c = fcsynth::compile(text, &cost, 16).expect("demo mix compiles");
            (c.mapping.program, c.circuit.inputs().len())
        })
        .collect()
}

fn operands(n: usize, lanes: usize, seed: u64) -> Vec<PackedBits> {
    (0..n)
        .map(|i| {
            let mut p = PackedBits::zeros(lanes);
            for l in 0..lanes {
                p.set(l, dram_core::math::mix3(seed, i as u64, l as u64) & 1 == 1);
            }
            p
        })
        .collect()
}

fn engine() -> BulkEngine {
    let cfg = dram_core::config::table1()
        .remove(0)
        .with_modeled_cols(DEVICE_COLS);
    let mut e = BulkEngine::new(Fcdram::new(cfg), BankId(0), SubarrayId(0)).unwrap();
    e.set_fidelity(SimFidelity::fast());
    e
}

/// One pass of the mix on any backend; returns a result word so the
/// work cannot be optimized away.
fn run_mix<B: ExecBackend>(backend: &mut B, progs: &[(SynthProgram, usize)]) -> u64 {
    let lanes = backend.lanes();
    let mut acc = 0u64;
    for (i, (prog, n)) in progs.iter().enumerate() {
        let ops = operands(*n, lanes, 0xE0_0E ^ i as u64);
        let out = execute_packed(backend, prog, &ops).expect("mix executes");
        acc ^= out.words().first().copied().unwrap_or(0);
    }
    acc
}

fn bench(c: &mut Criterion) {
    let progs = programs();

    let mut host = SimdVm::new(HostSubstrate::new(256, 512)).unwrap();
    c.bench_function("exec_host/mix", |b| {
        b.iter(|| black_box(run_mix(&mut host, &progs)));
    });

    let mut vm_dram = SimdVm::new(DramSubstrate::new(engine())).unwrap();
    c.bench_function("exec_vm_dram/mix", |b| {
        b.iter(|| black_box(run_mix(&mut vm_dram, &progs)));
    });

    let mut bender = BenderBackend::new(engine()).unwrap();
    c.bench_function("exec_bender/mix", |b| {
        b.iter(|| black_box(run_mix(&mut bender, &progs)));
    });

    write_summary(&progs);
}

/// Writes the wall-clock measurements plus the deterministic
/// backend-parity entries to `BENCH_exec.json`.
fn write_summary(progs: &[(SynthProgram, usize)]) {
    let results = criterion::results();
    let mut entries: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::Value::Object(vec![
                ("id".to_string(), serde_json::Value::Str(r.id.clone())),
                ("mean_ns".to_string(), serde_json::Value::Float(r.mean_ns)),
                (
                    "median_ns".to_string(),
                    serde_json::Value::Float(r.median_ns),
                ),
                (
                    "iterations".to_string(),
                    serde_json::Value::UInt(r.iterations),
                ),
            ])
        })
        .collect();
    let mut derived = |id: String, value: f64, iterations: u64| {
        entries.push(serde_json::Value::Object(vec![
            ("id".to_string(), serde_json::Value::Str(id)),
            ("mean_ns".to_string(), serde_json::Value::Float(value)),
            ("median_ns".to_string(), serde_json::Value::Float(value)),
            (
                "iterations".to_string(),
                serde_json::Value::UInt(iterations),
            ),
        ]));
    };

    // Deterministic parity counts: one pass of the mix on a fresh
    // device through each backend.
    let mut vm = SimdVm::new(DramSubstrate::new(engine())).unwrap();
    vm.clear_trace();
    let _ = run_mix(&mut vm, progs);
    let vm_ops = vm.trace().in_dram_ops();

    let mut cmd = BenderBackend::new(engine()).unwrap();
    let _ = run_mix(&mut cmd, progs);
    let cmd_ops = cmd.native_ops();
    println!("exec_native_ops: vm {vm_ops}, bender {cmd_ops}");
    assert_eq!(
        vm_ops, cmd_ops,
        "the two backends walked different operation sequences"
    );
    derived("exec_native_ops/vm".to_string(), vm_ops as f64, 1);
    derived("exec_native_ops/bender".to_string(), cmd_ops as f64, 1);

    // Deterministic cycle-accurate schedule latency of the mix.
    let model = ScheduleLatency::new(dram_core::SpeedBin::Mt2666, 16);
    let schedule_ns: f64 = progs
        .iter()
        .flat_map(|(p, _)| p.steps.iter())
        .map(|s| model.step_ns(s))
        .sum();
    println!("exec_schedule_ns/mix: {schedule_ns:.0} ns");
    derived("exec_schedule_ns/mix".to_string(), schedule_ns, 1);

    let json = serde_json::to_string_pretty(&entries).expect("summary serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(path, json).expect("summary written");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
