//! Ablation: the hierarchical row-decoder glitch model.
//!
//! Measures (a) raw activation-query throughput, (b) the cost of a
//! full Fig. 5-style coverage scan, and (c) how the merge-depth design
//! parameter (`max_merge_groups`, the paper's §7 Limitation 2) changes
//! both the cost and the reachable shapes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::{Chip, ChipId, GlobalRow, RowDecoder};

fn bench(c: &mut Criterion) {
    let cfg = dram_core::config::table1().remove(0).with_modeled_cols(16);
    let chip = Chip::new(cfg.clone(), ChipId(0));
    let geom = *chip.geometry();

    c.bench_function("decoder_activation_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 127) % (512 * 512);
            let rf = GlobalRow(i / 512);
            let rl = GlobalRow(512 + i % 512);
            black_box(chip.decoder().activation(&geom, rf, rl))
        });
    });

    c.bench_function("decoder_shape_scan_4096_pairs", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for i in 0..4096usize {
                let rf = GlobalRow((i * 13) % 512);
                let rl = GlobalRow(512 + (i * 29) % 512);
                if chip.decoder().activation_shape(&geom, rf, rl)
                    != dram_core::ActivationShape::None
                {
                    count += 1;
                }
            }
            black_box(count)
        });
    });

    // Merge-depth ablation: a 3-group decoder (the 8Gb M-die part)
    // reaches at most 8:16; the full 4-group decoder reaches 16:32.
    let mut group = c.benchmark_group("decoder_merge_depth");
    for depth in [2u8, 3, 4] {
        let mut cfg_d = cfg.clone();
        cfg_d.max_merge_groups = depth;
        let dec = RowDecoder::new(&cfg_d, cfg_d.chip_seed(ChipId(0)));
        group.bench_function(format!("groups_{depth}"), |b| {
            b.iter(|| {
                let mut max_rows = 0usize;
                for i in 0..1024usize {
                    let rf = GlobalRow((i * 7) % 512);
                    let rl = GlobalRow(512 + (i * 31) % 512);
                    if let dram_core::ActivationShape::Cross { n_rf, n_rl, .. } =
                        dec.activation_shape(&geom, rf, rl)
                    {
                        max_rows = max_rows.max(n_rf as usize + n_rl as usize);
                    }
                }
                assert!(max_rows <= 3 * (1 << depth));
                black_box(max_rows)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
