//! Criterion benchmark: regenerates the paper's `fig18` artifact end
//! to end (fleet construction excluded; measured per experiment run).

use criterion::{criterion_group, criterion_main, Criterion};
use fcdram_bench::{bench_fleet, bench_scale, config, run_and_check};

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut fleet = bench_fleet(&scale);
    c.bench_function("fig18_data_pattern", |b| {
        b.iter(|| run_and_check("fig18", &mut fleet, &scale));
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
