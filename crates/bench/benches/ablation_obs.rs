//! Ablation: what observing a session costs, and what it records.
//!
//! Runs the CI-traced demo scenario — the built-in tenants under the
//! demo fault plan on the 12-chip Table-1 fleet — once without any
//! observability and once fully observed (span tracing + metrics),
//! then writes a `BENCH_obs.json` summary at the repository root in
//! the same shape as `BENCH_daemon.json`.
//!
//! Derived entries:
//!
//! * `obs_overhead/demo` — observed/unobserved mean-time ratio: what
//!   span emission and metrics rebuilds cost on top of the session
//!   itself (wall-clock, machine-dependent — reported, not gated);
//! * `obs_span_events/demo`, `obs_instant_events/demo`,
//!   `obs_metric_lines/demo` — **deterministic** artifact shapes
//!   (value in `mean_ns`). Determinism invariant #4
//!   (`docs/OBSERVABILITY.md`) makes the trace and metrics pure
//!   functions of `(session log, fleet, cost model)`, so these are
//!   exact on every machine; `tools/bench_check.rs` gates them in
//!   both directions — an instrumentation change that emits one span
//!   more *or* less fails CI until the baseline is bumped
//!   deliberately.

use characterize::daemon::demo_tenants;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_core::FleetConfig;
use fcobs::{Observability, Phase, TraceEvent};
use fcserve::{daemon, DaemonConfig};
use fcsynth::CostModel;

/// Fleet size: the Table-1 dozen the daemon demo also uses.
const CHIPS: usize = 12;

/// The demo scenario CI traces: demo tenants + the demo fault plan.
fn config() -> DaemonConfig {
    DaemonConfig {
        policy: fcsched::SchedPolicy {
            faults: Some(fcsched::FaultPlan::demo()),
            ..fcsched::SchedPolicy::default()
        },
        ..DaemonConfig::default()
    }
}

fn bundle() -> Observability {
    Observability::disabled()
        .with_trace(fcobs::trace::DEFAULT_TRACE_CAPACITY)
        .with_metrics(None)
}

/// One fully observed session: `(trace events, metrics text,
/// report json)`.
fn observed(fleet: &FleetConfig, cost: &CostModel) -> (Vec<TraceEvent>, String, String) {
    let (_, report, obs) = daemon::run_live_obs(fleet, cost, &config(), &demo_tenants(), bundle())
        .expect("observed demo session runs");
    let trace = obs.trace.expect("tracing enabled");
    assert_eq!(trace.dropped(), 0, "demo session fits the default ring");
    (
        trace.finish(),
        obs.last_metrics.expect("metrics enabled"),
        report.to_json(),
    )
}

fn bench(c: &mut Criterion) {
    let cost = CostModel::table1_defaults();
    let fleet = FleetConfig::table1(CHIPS);
    let (events, metrics, observed_report) = observed(&fleet, &cost);
    assert!(!events.is_empty(), "demo session traces events");
    // Zero-overhead on outputs: the unobserved report is byte-equal.
    let (_, plain) = daemon::run_live(&fleet, &cost, &config(), &demo_tenants()).unwrap();
    assert_eq!(plain.to_json(), observed_report, "observer effect");
    c.bench_function("obs_off/demo", |b| {
        b.iter(|| {
            let (_, report) = daemon::run_live(&fleet, &cost, &config(), &demo_tenants()).unwrap();
            black_box(report.totals.completed)
        });
    });
    c.bench_function("obs_on/demo", |b| {
        b.iter(|| black_box(observed(&fleet, &cost).0.len()));
    });
    write_summary(&events, &metrics);
}

/// Writes the wall-clock measurements plus the deterministic artifact
/// shapes to `BENCH_obs.json`.
fn write_summary(events: &[TraceEvent], metrics: &str) {
    let results = criterion::results();
    let mean_of =
        |id: &str| -> Option<f64> { results.iter().find(|r| r.id == id).map(|r| r.mean_ns) };
    let mut entries: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::Value::Object(vec![
                ("id".to_string(), serde_json::Value::Str(r.id.clone())),
                ("mean_ns".to_string(), serde_json::Value::Float(r.mean_ns)),
                (
                    "median_ns".to_string(),
                    serde_json::Value::Float(r.median_ns),
                ),
                (
                    "iterations".to_string(),
                    serde_json::Value::UInt(r.iterations),
                ),
            ])
        })
        .collect();
    let mut derived = |id: String, value: f64, iterations: u64| {
        entries.push(serde_json::Value::Object(vec![
            ("id".to_string(), serde_json::Value::Str(id)),
            ("mean_ns".to_string(), serde_json::Value::Float(value)),
            ("median_ns".to_string(), serde_json::Value::Float(value)),
            (
                "iterations".to_string(),
                serde_json::Value::UInt(iterations),
            ),
        ]));
    };
    if let (Some(off), Some(on)) = (mean_of("obs_off/demo"), mean_of("obs_on/demo")) {
        let overhead = on / off;
        println!("obs observed/unobserved time ratio: {overhead:.3}x");
        derived("obs_overhead/demo".to_string(), overhead, 1);
    }
    // Deterministic artifact shapes of the demo session: how many
    // spans and instants the instrumentation emits and how many lines
    // the metrics exposition renders, independent of wall clock.
    let spans = events.iter().filter(|e| e.phase == Phase::Span).count();
    let instants = events.iter().filter(|e| e.phase == Phase::Instant).count();
    let lines = metrics.lines().count();
    println!("obs/demo artifacts: {spans} spans, {instants} instants, {lines} metric lines");
    let n = events.len() as u64;
    derived("obs_span_events/demo".to_string(), spans as f64, n);
    derived("obs_instant_events/demo".to_string(), instants as f64, n);
    derived("obs_metric_lines/demo".to_string(), lines as f64, n);
    let json = serde_json::to_string_pretty(&entries).expect("summary serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, json).expect("summary written");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = fcdram_bench::config();
    targets = bench
}
criterion_main!(benches);
