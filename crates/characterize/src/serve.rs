//! The `characterize serve` pipeline: batch building and report
//! tables for the [`fcsched`] job scheduler.
//!
//! This module is the testable core of the CLI subcommand: it turns a
//! workload description (expression list + job count + lane count +
//! seed) into an [`fcsched::Batch`] with deterministic operands, and a
//! finished [`BatchReport`] into the same [`Table`] shape every other
//! experiment report uses — so `--json` output plugs into the existing
//! provenance tooling and is byte-identical for every shard count.

use crate::report::{Row, RowOrigin, Table};
use dram_core::FleetConfig;
use fcdram::PackedBits;
use fcsched::{Batch, BatchReport};
use fcsynth::CostModel;

/// The built-in heterogeneous workload mix: a multi-tenant spread of
/// small and wide, monotone and inverted, XOR-heavy and AND-heavy
/// tenants.
pub const DEMO_MIX: [&str; 6] = [
    "(a & b) | (a & c) | (b & c)",
    "b0 ^ b1 ^ b2 ^ b3",
    "a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p",
    "!(x | y | z)",
    "(a & b & c & d) ^ (e | f | g | h)",
    "!(p & q) | (r ^ s)",
];

/// Parses an expression-list file: one expression per line, blank
/// lines and `#` comments skipped.
pub fn load_exprs(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Builds a `jobs`-job batch by cycling through `exprs` (each distinct
/// expression compiled once), with operand bits drawn deterministically
/// from `(seed, job, input, lane)`.
///
/// # Errors
///
/// Returns the first compile error as a string.
pub fn build_batch(
    exprs: &[String],
    jobs: usize,
    lanes: usize,
    seed: u64,
    cost: &CostModel,
    fan_in: usize,
) -> Result<Batch, String> {
    if exprs.is_empty() {
        return Err("no expressions to serve".to_string());
    }
    let mut compiled = Vec::with_capacity(exprs.len());
    for text in exprs {
        compiled.push(fcsynth::compile(text, cost, fan_in).map_err(|e| format!("{text}: {e}"))?);
    }
    let mut batch = Batch::new(seed);
    for j in 0..jobs {
        let c = &compiled[j % compiled.len()];
        let n = c.circuit.inputs().len();
        let operands: Vec<PackedBits> = (0..n)
            .map(|k| {
                let mut p = PackedBits::zeros(lanes);
                for l in 0..lanes {
                    let h = dram_core::math::mix4(seed, j as u64, k as u64, l as u64);
                    p.set(l, h & 1 == 1);
                }
                p
            })
            .collect();
        batch
            .push(&exprs[j % exprs.len()], &c.mapping, operands, lanes)
            .map_err(|e| e.to_string())?;
    }
    Ok(batch)
}

/// Renders the scheduler report as the standard three serve tables
/// (`serve-summary`, `serve-latency`, `serve-chips`). Only
/// deterministic quantities appear — wall-clock throughput is the
/// CLI's stderr business.
///
/// `ideal` is the perfectly-reliable serial baseline for the batch
/// ([`fcsched::ideal_cost`]: submitted programs, population-mean
/// model, no retries) — the summary reports it next to the modeled
/// totals so the reliability overhead the scheduler absorbed
/// (re-mapping plus retries) is a single visible number.
pub fn tables(
    report: &BatchReport,
    fleet: &FleetConfig,
    ideal: &fcsynth::ProgramCost,
) -> Vec<Table> {
    let mut summary = Table::new(
        "serve-summary",
        "Batch outcome: jobs, admission, retries, modeled totals",
        "metric",
        vec!["value".into()],
    );
    let overhead_pct = if ideal.latency_ns > 0.0 {
        (report.total_latency_ns() - ideal.latency_ns) / ideal.latency_ns * 100.0
    } else {
        0.0
    };
    let rows: Vec<(&str, f64)> = vec![
        ("jobs", report.jobs() as f64),
        ("succeeded", report.succeeded() as f64),
        ("remapped", report.remapped() as f64),
        ("flagged", report.flagged() as f64),
        ("native ops", report.native_ops() as f64),
        ("retries", report.total_retries() as f64),
        ("retried jobs", report.retried_jobs() as f64),
        ("failed jobs", report.failed_jobs() as f64),
        ("failed ops", report.total_failed_ops() as f64),
        ("replaced jobs", report.total_replacements() as f64),
        ("chips", report.chips as f64),
        ("waves", report.waves as f64),
        ("modeled latency (us)", report.total_latency_ns() / 1e3),
        ("ideal latency (us)", ideal.latency_ns / 1e3),
        ("reliability overhead %", overhead_pct),
        ("modeled energy (nJ)", report.total_energy_pj() / 1e3),
    ];
    for (label, v) in rows {
        summary.push_row(Row::new(label, vec![v]));
    }
    summary.note(format!(
        "batch seed {}; report is bit-identical for every shard count",
        report.seed
    ));

    let mut latency = Table::new(
        "serve-latency",
        "Per-job modeled latency and predicted success distributions",
        "distribution",
        vec![
            "mean".into(),
            "p50".into(),
            "p90".into(),
            "p99".into(),
            "min".into(),
            "max".into(),
        ],
    );
    let l = report.latency();
    latency.push_row(Row::new(
        "latency (us)",
        vec![
            l.mean_ns / 1e3,
            l.p50_ns / 1e3,
            l.p90_ns / 1e3,
            l.p99_ns / 1e3,
            l.min_ns / 1e3,
            l.max_ns / 1e3,
        ],
    ));
    let s = report.predicted_success();
    latency.push_row(Row::new(
        "predicted success %",
        vec![
            s.mean() * 100.0,
            s.quantile(0.50) * 100.0,
            s.quantile(0.90) * 100.0,
            s.quantile(0.99) * 100.0,
            s.min() * 100.0,
            s.max() * 100.0,
        ],
    ));
    let r = report.retry_rate();
    latency.push_row(Row::new(
        "retry rate %",
        vec![
            r.mean() * 100.0,
            r.quantile(0.50) * 100.0,
            r.quantile(0.90) * 100.0,
            r.quantile(0.99) * 100.0,
            r.min() * 100.0,
            r.max() * 100.0,
        ],
    ));

    let mut chips = Table::new(
        "serve-chips",
        "Per-chip utilization (jobs, ops, retries, flagged, modeled latency)",
        "chip",
        vec![
            "jobs".into(),
            "ops".into(),
            "retries".into(),
            "flagged".into(),
            "latency (us)".into(),
        ],
    );
    for u in report.member_usage() {
        let spec = fleet.spec(u.member);
        chips.push_row(
            Row::new(
                u.chip.clone(),
                vec![
                    u.jobs as f64,
                    u.ops as f64,
                    u.retries as f64,
                    u.flagged as f64,
                    u.latency_ns / 1e3,
                ],
            )
            .with_origin(RowOrigin {
                module: spec.cfg.name.clone(),
                chip: spec.chip.index(),
                manufacturer: spec.cfg.manufacturer.to_string(),
            }),
        );
    }
    let mut out = vec![summary, latency, chips];

    // Degradation scenarios append the fleet-health ledger: the
    // planner computes it from (fleet, batch, policy) alone, so these
    // tables are byte-identical across shard counts *and* backends.
    if let Some(h) = &report.health {
        let mut health = Table::new(
            "serve-health",
            "Per-chip fault ledger: hazard, disturbance, mitigation, dropout",
            "chip",
            vec![
                "hazard (/1e6 h)".into(),
                "fail at (us)".into(),
                "disturb acts".into(),
                "mitigations".into(),
                "mitigation (us)".into(),
                "diverted".into(),
                "dropped at (us)".into(),
            ],
        );
        for m in &h.members {
            let spec = fleet.spec(m.member);
            health.push_row(
                Row::opt(
                    m.chip.clone(),
                    vec![
                        Some(m.hazard_per_mhours),
                        m.fail_at_ns.map(|v| v / 1e3),
                        Some(m.disturbance_acts as f64),
                        Some(m.mitigations as f64),
                        Some(m.mitigation_ns / 1e3),
                        Some(m.diverted as f64),
                        m.dropped_at_ns.map(|v| v / 1e3),
                    ],
                )
                .with_origin(RowOrigin {
                    module: spec.cfg.name.clone(),
                    chip: spec.chip.index(),
                    manufacturer: spec.cfg.manufacturer.to_string(),
                }),
            );
        }
        health.note(format!(
            "fault seed {}; {} mitigation(s) stole {:.2} us of serving bandwidth",
            h.plan_seed,
            h.total_mitigations(),
            h.total_mitigation_ns() / 1e3,
        ));

        let mut dropouts = Table::new(
            "serve-dropouts",
            "Dropout timeline: when each chip died and what was re-placed",
            "chip",
            vec!["at (us)".into(), "during job".into(), "re-placed".into()],
        );
        for d in &h.dropouts {
            let spec = fleet.spec(d.member);
            dropouts.push_row(
                Row::new(
                    d.chip.clone(),
                    vec![d.at_ns / 1e3, d.job as f64, d.replaced as f64],
                )
                .with_origin(RowOrigin {
                    module: spec.cfg.name.clone(),
                    chip: spec.chip.index(),
                    manufacturer: spec.cfg.manufacturer.to_string(),
                }),
            );
        }
        dropouts.note(format!(
            "{} job(s) re-placed; every re-placed job still returns host-exact bits",
            h.replaced_jobs
        ));
        out.push(health);
        out.push(dropouts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcsched::SchedPolicy;

    fn demo() -> Vec<String> {
        DEMO_MIX.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn expr_file_parsing_skips_noise() {
        let text = "# tenants\n\n a & b \n!(c | d)\n# done\n";
        assert_eq!(load_exprs(text), vec!["a & b", "!(c | d)"]);
    }

    #[test]
    fn batch_builder_cycles_the_mix() {
        let cost = CostModel::table1_defaults();
        let batch = build_batch(&demo(), 13, 32, 9, &cost, 16).unwrap();
        assert_eq!(batch.len(), 13);
        assert_eq!(batch.jobs()[0].label, DEMO_MIX[0]);
        assert_eq!(batch.jobs()[6].label, DEMO_MIX[0], "round-robin");
        assert!(batch.native_ops() > 13);
        assert!(build_batch(&demo(), 4, 8, 0, &cost, 16).is_ok());
        assert!(build_batch(&["a &".to_string()], 1, 8, 0, &cost, 16).is_err());
        assert!(build_batch(&[], 1, 8, 0, &cost, 16).is_err());
    }

    #[test]
    fn serve_tables_are_deterministic_across_shards() {
        let cost = CostModel::table1_defaults();
        let fleet = FleetConfig::table1(3);
        let batch = build_batch(&demo(), 12, 16, 3, &cost, 16).unwrap();
        let run = |shards: usize| {
            let report = fcsched::serve_batch(
                &fleet,
                &cost,
                &SchedPolicy::default().with_shards(shards),
                &batch,
            )
            .unwrap();
            crate::report::to_json(&tables(
                &report,
                &fleet,
                &fcsched::ideal_cost(&batch, &cost),
            ))
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "tables shard-invariant byte for byte");
        assert!(serial.contains("serve-summary"));
        assert!(serial.contains("serve-chips"));
    }

    #[test]
    fn fault_scenarios_append_health_tables() {
        let cost = CostModel::table1_defaults();
        let fleet = FleetConfig::table1(3);
        let batch = build_batch(&demo(), 24, 16, 3, &cost, 16).unwrap();
        let faults = fcsched::FaultPlan {
            aging: fcsched::AgingPolicy {
                acceleration: 0.0,
                ..fcsched::AgingPolicy::default()
            },
            dropouts: vec![fcsched::PlannedDropout {
                member: 1,
                after_ns: 500.0,
            }],
            ..fcsched::FaultPlan::demo()
        };
        let run = |shards: usize, backend: fcsched::BackendKind| {
            let report = fcsched::serve_batch(
                &fleet,
                &cost,
                &SchedPolicy {
                    faults: Some(faults.clone()),
                    shards,
                    backend,
                    ..SchedPolicy::default()
                },
                &batch,
            )
            .unwrap();
            let ts = tables(&report, &fleet, &fcsched::ideal_cost(&batch, &cost));
            assert_eq!(ts.len(), 5, "health + dropout tables appended");
            assert_eq!(ts[3].id, "serve-health");
            assert_eq!(ts[4].id, "serve-dropouts");
            assert_eq!(ts[4].rows.len(), 1, "one scripted dropout");
            // The health tables alone, as JSON: must be identical
            // across shard counts AND backends.
            crate::report::to_json(&ts[3..])
        };
        let base = run(1, fcsched::BackendKind::Vm);
        assert_eq!(base, run(5, fcsched::BackendKind::Vm));
        assert_eq!(base, run(1, fcsched::BackendKind::Bender));
        assert_eq!(base, run(5, fcsched::BackendKind::Bender));
    }

    #[test]
    fn chip_rows_carry_origins() {
        let cost = CostModel::table1_defaults();
        let fleet = FleetConfig::table1(2);
        let batch = build_batch(&demo(), 6, 8, 1, &cost, 16).unwrap();
        let report = fcsched::serve_batch(
            &fleet,
            &cost,
            &SchedPolicy::default().with_shards(1),
            &batch,
        )
        .unwrap();
        let ideal = fcsched::ideal_cost(&batch, &cost);
        assert!(ideal.latency_ns > 0.0);
        assert!(
            report.total_latency_ns() >= ideal.latency_ns - 1e-9,
            "the modeled batch can never beat the no-retry ideal"
        );
        let ts = tables(&report, &fleet, &ideal);
        assert_eq!(ts.len(), 3);
        let chips = &ts[2];
        assert!(!chips.rows.is_empty());
        for row in &chips.rows {
            let origin = row.origin.as_ref().expect("attributed");
            assert!(!origin.module.is_empty());
        }
        // Summary totals agree with the report.
        let jobs_row = &ts[0].rows[0];
        assert_eq!(jobs_row.values[0], Some(6.0));
    }
}
