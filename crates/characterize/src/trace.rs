//! The `characterize trace` pipeline: offline analysis tables over a
//! recorded Chrome trace (the artifact `characterize daemon
//! --trace-json` writes).
//!
//! Like [`crate::daemon`], this module is the testable core of the
//! CLI subcommand: it takes the parsed trace events and renders the
//! standard [`Table`] shape. Every number below derives from the
//! modeled timestamps recorded in the trace, so analyzing the same
//! trace file always produces the same bytes.

use crate::report::{Row, Table};
use fcobs::TraceEvent;

/// Renders the trace analysis tables (`trace-ops`, `trace-chips`,
/// `trace-tenants`): the `top` hottest `(op, N)` shapes by total
/// modeled time, per-chip utilization, and per-tenant queue-wait
/// breakdowns.
pub fn tables(events: &[TraceEvent], top: usize) -> Vec<Table> {
    let mut ops = Table::new(
        "trace-ops",
        format!("Hottest (op, N) shapes by total modeled time (top {top})"),
        "op",
        vec![
            "executions".into(),
            "total (us)".into(),
            "mean (ns)".into(),
            "activations".into(),
        ],
    );
    for h in fcobs::hot_ops(events, top) {
        let mean = if h.count > 0 {
            h.total_ns / h.count as f64
        } else {
            0.0
        };
        ops.push_row(Row::new(
            h.name.clone(),
            vec![h.count as f64, h.total_ns / 1e3, mean, h.acts as f64],
        ));
    }
    ops.note(
        "modeled time: retry-scaled cost-model latency per step span, \
         never backend or wall clock"
            .to_string(),
    );

    let mut chips = Table::new(
        "trace-chips",
        "Per-chip utilization over the traced session",
        "chip",
        vec!["jobs".into(), "busy (us)".into()],
    );
    for c in fcobs::chip_utilization(events) {
        chips.push_row(Row::new(
            c.who.clone(),
            vec![c.jobs as f64, c.busy_ns / 1e3],
        ));
    }

    let mut tenants = Table::new(
        "trace-tenants",
        "Per-tenant queue-wait breakdown (job spans carry their wait)",
        "tenant",
        vec![
            "jobs".into(),
            "queue wait (us)".into(),
            "service (us)".into(),
        ],
    );
    for t in fcobs::tenant_queue_waits(events) {
        tenants.push_row(Row::new(
            t.tenant.clone(),
            vec![t.jobs as f64, t.wait_ns / 1e3, t.service_ns / 1e3],
        ));
    }
    tenants.note(format!(
        "{} event(s) analyzed; spans/instants ordered by (tick, job, step)",
        events.len()
    ));
    vec![ops, chips, tenants]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::FleetConfig;
    use fcobs::Observability;
    use fcserve::{daemon, DaemonConfig};
    use fcsynth::CostModel;

    #[test]
    fn trace_tables_cover_ops_chips_and_tenants() {
        let cost = CostModel::table1_defaults();
        let fleet = FleetConfig::table1(12);
        let cfg = DaemonConfig {
            seed: 1,
            lanes: 64,
            ..DaemonConfig::default()
        };
        let obs = Observability::disabled().with_trace(1 << 16);
        let (_, _, obs) =
            daemon::run_live_obs(&fleet, &cost, &cfg, &crate::daemon::demo_tenants(), obs).unwrap();
        let events = obs.trace.unwrap().finish();
        // Round-trip through the Chrome JSON exactly as the CLI does.
        let json = fcobs::chrome::to_chrome(&events);
        let parsed = fcobs::chrome::from_chrome(&json).unwrap();
        assert_eq!(events, parsed, "chrome export is lossless");
        let ts = tables(&parsed, 10);
        assert_eq!(ts.len(), 3);
        assert!(!ts[0].rows.is_empty(), "hot ops present");
        assert!(ts[0].rows.len() <= 10, "top-N bound respected");
        assert!(!ts[1].rows.is_empty(), "chip utilization present");
        let tenant_labels: Vec<&str> = ts[2].rows.iter().map(|r| r.label.as_str()).collect();
        assert!(
            tenant_labels.contains(&"interactive") && tenant_labels.contains(&"bulk"),
            "tenant breakdown names the demo tenants: {tenant_labels:?}"
        );
        // Rendering twice is byte-stable.
        let render: String = ts.iter().map(Table::render).collect();
        let render2: String = tables(&parsed, 10).iter().map(Table::render).collect();
        assert_eq!(render, render2);
    }
}
