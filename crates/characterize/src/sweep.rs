//! Sharded fleet characterization sweeps.
//!
//! The paper's population-level figures (die-to-die variation,
//! per-manufacturer success-rate distributions) come from
//! characterizing 256 chips. This module fans an experiment grid —
//! data pattern × temperature × destination-row count (the NOT timing
//! axis) × logic (op, N) × chip — out over scoped worker threads, one
//! *shard* of the fleet per thread, and streams per-chip results into
//! mergeable [`SuccessAccumulator`]s. Per-chip results depend only on
//! the chip's spec and the sweep configuration (all seeds derive from
//! the chip seed), so the report is **bit-identical for every shard
//! count** — threading is purely a wall-clock optimization.
//!
//! A fleet of size 1 over an untouched module config reproduces the
//! direct single-chip path exactly (`tests/fleet_equivalence.rs`).

use crate::patterns::DataPattern;
use crate::report::{Row, Table};
use crate::runner::{run_logic_random, run_not, ModuleCtx, Scale};
use dram_core::fleet::{ChipSpec, FleetConfig};
use dram_core::{LogicOp, Manufacturer, Temperature};
use fcdram::SuccessAccumulator;
use serde::{Deserialize, Serialize};

/// The experiment grid swept on every fleet chip, plus the shard
/// (thread) count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Per-chip experiment scale; `scale.temps` is the temperature
    /// axis of the grid.
    pub scale: Scale,
    /// Destination-row counts for the NOT conditions (the violated
    /// timing stress axis: more simultaneous rows, weaker drive).
    pub dest_rows: Vec<usize>,
    /// Data patterns driven through the NOT conditions.
    pub patterns: Vec<DataPattern>,
    /// Logic operations measured per input count.
    pub logic_ops: Vec<LogicOp>,
    /// Input counts N for the logic conditions.
    pub logic_inputs: Vec<usize>,
    /// Worker threads the fleet is sharded over. `0` = one per
    /// available CPU (capped at the fleet size); `1` = serial.
    pub shards: usize,
}

impl SweepConfig {
    /// Reduced grid for tests, benches, and `--quick`.
    pub fn quick() -> SweepConfig {
        SweepConfig {
            scale: Scale::quick(),
            dest_rows: vec![1, 4],
            patterns: vec![DataPattern::Random(0xF1EE7)],
            logic_ops: vec![LogicOp::And, LogicOp::Nand],
            logic_inputs: vec![2, 8],
            shards: 0,
        }
    }

    /// Standard grid for the CLI (minutes for tens of chips).
    pub fn standard() -> SweepConfig {
        SweepConfig {
            scale: Scale::standard(),
            dest_rows: vec![1, 4, 16],
            patterns: vec![DataPattern::Random(0xF1EE7), DataPattern::Checker],
            logic_ops: LogicOp::ALL.to_vec(),
            logic_inputs: vec![2, 4, 8, 16],
            shards: 0,
        }
    }

    /// Minimal grid for throughput benchmarking: one condition per
    /// family so the measured cost is dominated by per-chip model
    /// work, not grid breadth.
    pub fn bench() -> SweepConfig {
        SweepConfig {
            scale: Scale {
                cols: 16,
                map_budget: 512,
                entries_per_shape: 2,
                execs_per_condition: 1,
                input_draws: 1,
                temps: vec![Temperature::BASELINE],
            },
            dest_rows: vec![1, 2],
            patterns: vec![DataPattern::Random(1)],
            logic_ops: vec![LogicOp::And],
            logic_inputs: vec![2],
            shards: 0,
        }
    }

    /// Overrides the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> SweepConfig {
        self.shards = shards;
        self
    }

    /// The worker-thread count actually used for `chips` fleet
    /// members: the configured count, or one per available CPU when 0,
    /// never more than the fleet size and never less than 1.
    pub fn effective_shards(&self, chips: usize) -> usize {
        let requested = if self.shards == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.shards
        };
        requested.min(chips).max(1)
    }

    /// The worker threads [`run_fleet_sweep`] actually spawns for
    /// `chips` fleet members. Ceil-division chunking can need fewer
    /// workers than [`effective_shards`](Self::effective_shards)
    /// (e.g. 5 chips over 4 shards → 3 chunks of 2); this is the
    /// count recorded in [`FleetReport::shards`].
    pub fn effective_workers(&self, chips: usize) -> usize {
        let shards = self.effective_shards(chips);
        if shards <= 1 || chips == 0 {
            1
        } else {
            chips.div_ceil(chips.div_ceil(shards))
        }
    }
}

/// Per-(op, input-count) logic accumulator of one chip — the
/// granularity [`fcsynth::CostModel`] consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicShapeResult {
    /// The operation.
    pub op: LogicOp,
    /// Input count N.
    pub inputs: usize,
    /// Success probabilities of every result cell measured under this
    /// shape (across temperatures and input draws).
    pub acc: SuccessAccumulator,
}

/// Everything measured on one fleet chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipResult {
    /// Fleet display label (`module/cN`).
    pub label: String,
    /// Module name.
    pub module: String,
    /// Chip index within the module.
    pub chip: usize,
    /// Manufacturer display name (population grouping key).
    pub manufacturer: String,
    /// Success probabilities of every NOT destination cell measured.
    pub not: SuccessAccumulator,
    /// Success probabilities of every logic result cell measured.
    pub logic: SuccessAccumulator,
    /// The same logic cells, broken down per (op, N) — the shape the
    /// synthesis cost export needs. Keyed in first-measurement order;
    /// identical for every shard count (per-chip work is
    /// deterministic).
    pub logic_shapes: Vec<LogicShapeResult>,
    /// Grid conditions attempted on this chip.
    pub conditions: usize,
    /// Conditions that produced no measurement (unsupported op,
    /// missing pattern, or — for `Ignored`-capability parts — a failed
    /// context build).
    pub failures: usize,
}

impl ChipResult {
    fn empty_for(spec: &ChipSpec) -> ChipResult {
        ChipResult {
            label: spec.label(),
            module: spec.cfg.name.clone(),
            chip: spec.chip.index(),
            manufacturer: spec.cfg.manufacturer.to_string(),
            not: SuccessAccumulator::new(),
            logic: SuccessAccumulator::new(),
            logic_shapes: Vec::new(),
            conditions: 0,
            failures: 0,
        }
    }

    /// The per-(op, N) accumulator, created on first use.
    fn shape_mut(&mut self, op: LogicOp, inputs: usize) -> &mut SuccessAccumulator {
        if let Some(i) = self
            .logic_shapes
            .iter()
            .position(|s| s.op == op && s.inputs == inputs)
        {
            return &mut self.logic_shapes[i].acc;
        }
        self.logic_shapes.push(LogicShapeResult {
            op,
            inputs,
            acc: SuccessAccumulator::new(),
        });
        &mut self.logic_shapes.last_mut().expect("just pushed").acc
    }
}

/// Runs the full grid on one already-built chip context, streaming
/// cell success probabilities into the two accumulators of `out`.
///
/// This is the exact per-chip work [`run_fleet_sweep`] performs; it is
/// public so the fleet-of-1 bit-identity test can drive the historical
/// single-chip path through the identical code.
pub fn chip_sweep(ctx: &mut ModuleCtx, cfg: &SweepConfig, out: &mut ChipResult) {
    let chip_seed = ctx.cfg.chip_seed(ctx.chip);
    for temp in &cfg.scale.temps {
        let sim_cfg = ctx.fc.sim_config().with_temperature(*temp);
        ctx.fc.configure(sim_cfg);
        // NOT conditions: pattern × destination-row count.
        for pattern in &cfg.patterns {
            for d in &cfg.dest_rows {
                if ctx.cfg.manufacturer == Manufacturer::Samsung && *d != 1 {
                    continue;
                }
                let entries = ctx.not_entries(*d, &cfg.scale);
                if entries.is_empty() {
                    // The chip's activation map has no such shape — a
                    // capability gap, not a measurement failure.
                    continue;
                }
                out.conditions += 1;
                let mut measured = false;
                for entry in entries.iter().take(cfg.scale.execs_per_condition) {
                    if let Ok(recs) = run_not(ctx, entry, *pattern) {
                        out.not.extend_from(recs.iter().map(|r| r.p));
                        measured = true;
                    }
                }
                if !measured {
                    out.failures += 1;
                }
            }
        }
        // Logic conditions: op × input count, random input draws.
        for (ni, n) in cfg.logic_inputs.iter().enumerate() {
            if ctx.cfg.max_op_inputs() < *n {
                continue;
            }
            for (oi, op) in cfg.logic_ops.iter().enumerate() {
                let seed = dram_core::math::mix3(chip_seed, (ni * 64 + oi) as u64, 0x51EE9);
                match run_logic_random(ctx, *op, *n, cfg.scale.input_draws, seed) {
                    Ok(recs) if !recs.is_empty() => {
                        out.conditions += 1;
                        out.logic.extend_from(recs.iter().map(|r| r.p));
                        out.shape_mut(*op, *n).extend_from(recs.iter().map(|r| r.p));
                    }
                    // No N:N pattern discovered at this budget — a
                    // capability gap, not a measurement failure.
                    Err(fcdram::FcdramError::NoPattern { .. }) => {}
                    _ => {
                        out.conditions += 1;
                        out.failures += 1;
                    }
                }
            }
        }
    }
    let sim_cfg = ctx.fc.sim_config().with_temperature(Temperature::BASELINE);
    ctx.fc.configure(sim_cfg);
}

/// Builds and sweeps one fleet member. Pure function of `(spec, cfg)`
/// — independent of shard assignment.
fn run_chip(spec: &ChipSpec, cfg: &SweepConfig) -> ChipResult {
    let mut out = ChipResult::empty_for(spec);
    match ModuleCtx::build_chip(&spec.cfg, spec.chip, &cfg.scale) {
        Ok(mut ctx) => chip_sweep(&mut ctx, cfg, &mut out),
        Err(_) => {
            out.conditions = 1;
            out.failures = 1;
        }
    }
    out
}

/// The merged outcome of a fleet sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Worker threads actually used.
    pub shards: usize,
    /// Per-chip results, in fleet order (independent of sharding).
    pub chips: Vec<ChipResult>,
}

impl FleetReport {
    /// Population accumulators (NOT, logic), merged in fleet order so
    /// the means are bit-stable across shard counts.
    pub fn population(&self) -> (SuccessAccumulator, SuccessAccumulator) {
        let mut not = SuccessAccumulator::new();
        let mut logic = SuccessAccumulator::new();
        for c in &self.chips {
            not.merge(&c.not);
            logic.merge(&c.logic);
        }
        (not, logic)
    }

    /// Population per-(op, N) accumulators, merged across chips in
    /// fleet order and sorted by (input count, op order in
    /// [`LogicOp::ALL`]) for stable reporting.
    pub fn logic_shapes(&self) -> Vec<LogicShapeResult> {
        let mut merged: Vec<LogicShapeResult> = Vec::new();
        for c in &self.chips {
            for s in &c.logic_shapes {
                match merged
                    .iter_mut()
                    .find(|m| m.op == s.op && m.inputs == s.inputs)
                {
                    Some(m) => m.acc.merge(&s.acc),
                    None => merged.push(s.clone()),
                }
            }
        }
        let op_rank = |op: LogicOp| LogicOp::ALL.iter().position(|o| *o == op).unwrap_or(4);
        merged.sort_by_key(|s| (s.inputs, op_rank(s.op)));
        merged
    }

    /// Builds the synthesis cost-model document ([`fcsynth`]'s
    /// `CostModelData` schema, the exact JSON `fcsynth::CostModel`
    /// loads) from this report's measured success rates, priced with
    /// [`simdram::cost`]'s steady-state DDR4 accounting at `lanes`
    /// SIMD lanes.
    pub fn cost_export(&self, lanes: usize) -> fcsynth::CostModelData {
        use simdram::trace::{NativeOp, TraceEntry};
        let pricer = simdram::CostModel::new(dram_core::timing::SpeedBin::Mt2666, lanes);
        let priced = |op: NativeOp| {
            pricer.entry_cost(&TraceEntry {
                op,
                executions: 1,
                predicted_success: 1.0,
            })
        };
        let mut entries = Vec::new();
        let (not, _) = self.population();
        if !not.is_empty() {
            let c = priced(NativeOp::Not);
            entries.push(fcsynth::GateCost {
                op: "not".into(),
                inputs: 1,
                success: not.mean(),
                latency_ns: c.latency_ns,
                energy_pj: c.energy_pj,
                cells: not.count(),
            });
        }
        for s in self.logic_shapes() {
            if s.acc.is_empty() {
                continue;
            }
            let c = priced(NativeOp::Logic(s.op, s.inputs as u8));
            entries.push(fcsynth::GateCost {
                op: s.op.name().into(),
                inputs: s.inputs,
                success: s.acc.mean(),
                latency_ns: c.latency_ns,
                energy_pj: c.energy_pj,
                cells: s.acc.count(),
            });
        }
        fcsynth::CostModelData {
            source: format!(
                "characterize fleet sweep: {} chip(s), {} shard(s)",
                self.chips.len(),
                self.shards
            ),
            lanes,
            entries,
        }
    }

    /// Manufacturer display names present, in fleet order.
    pub fn manufacturers(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.chips {
            if !out.contains(&c.manufacturer) {
                out.push(c.manufacturer.clone());
            }
        }
        out
    }

    /// Merged accumulators `(not, logic, chips)` for one manufacturer.
    pub fn per_manufacturer(&self, mfr: &str) -> (SuccessAccumulator, SuccessAccumulator, usize) {
        let mut not = SuccessAccumulator::new();
        let mut logic = SuccessAccumulator::new();
        let mut chips = 0usize;
        for c in self.chips.iter().filter(|c| c.manufacturer == mfr) {
            not.merge(&c.not);
            logic.merge(&c.logic);
            chips += 1;
        }
        (not, logic, chips)
    }

    /// Renders the population distribution tables (`fleet-not`,
    /// `fleet-logic`) and the per-chip attribution table
    /// (`fleet-chips`), in the same [`Table`] JSON shape every other
    /// experiment report uses.
    pub fn tables(&self) -> Vec<Table> {
        let dist_headers: Vec<String> = [
            "chips", "cells", "mean %", "p1 %", "p25 %", "p50 %", "p75 %", "p99 %", "min %",
            "max %",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let dist_row = |label: &str, chips: usize, acc: &SuccessAccumulator| -> Row {
            Row::new(
                label,
                vec![
                    chips as f64,
                    acc.count() as f64,
                    acc.mean() * 100.0,
                    acc.quantile(0.01) * 100.0,
                    acc.quantile(0.25) * 100.0,
                    acc.quantile(0.50) * 100.0,
                    acc.quantile(0.75) * 100.0,
                    acc.quantile(0.99) * 100.0,
                    acc.min() * 100.0,
                    acc.max() * 100.0,
                ],
            )
        };

        let (pop_not, pop_logic) = self.population();
        let mut not_t = Table::new(
            "fleet-not",
            "Fleet population: NOT destination-cell success distribution",
            "population",
            dist_headers.clone(),
        );
        let mut logic_t = Table::new(
            "fleet-logic",
            "Fleet population: logic result-cell success distribution",
            "population",
            dist_headers,
        );
        not_t.push_row(dist_row("all", self.chips.len(), &pop_not));
        logic_t.push_row(dist_row("all", self.chips.len(), &pop_logic));
        for mfr in self.manufacturers() {
            let (not, logic, chips) = self.per_manufacturer(&mfr);
            not_t.push_row(dist_row(&mfr, chips, &not));
            logic_t.push_row(dist_row(&mfr, chips, &logic));
        }
        let note = format!(
            "{} chips swept over {} shard(s); per-chip results are shard-count invariant",
            self.chips.len(),
            self.shards
        );
        not_t.note(note.clone());
        logic_t.note(note);

        let mut chips_t = Table::new(
            "fleet-chips",
            "Per-chip sweep results (attributable population members)",
            "chip",
            vec![
                "NOT mean %".into(),
                "logic mean %".into(),
                "cells".into(),
                "conditions".into(),
                "failures".into(),
            ],
        );
        for c in &self.chips {
            let origin = crate::report::RowOrigin {
                module: c.module.clone(),
                chip: c.chip,
                manufacturer: c.manufacturer.clone(),
            };
            chips_t.push_row(
                Row::opt(
                    c.label.clone(),
                    vec![
                        if c.not.is_empty() {
                            None
                        } else {
                            Some(c.not.mean() * 100.0)
                        },
                        if c.logic.is_empty() {
                            None
                        } else {
                            Some(c.logic.mean() * 100.0)
                        },
                        Some((c.not.count() + c.logic.count()) as f64),
                        Some(c.conditions as f64),
                        Some(c.failures as f64),
                    ],
                )
                .with_origin(origin),
            );
        }
        vec![not_t, logic_t, chips_t]
    }
}

/// Sweeps every chip of `fleet` through the grid of `cfg`, sharding
/// the fleet over scoped worker threads.
///
/// Shard `s` of `K` processes the contiguous member range
/// `[s·⌈N/K⌉, (s+1)·⌈N/K⌉)`; each worker builds its chips, runs
/// [`chip_sweep`], and the results are reassembled in fleet order, so
/// the returned report is identical for every shard count.
pub fn run_fleet_sweep(fleet: &FleetConfig, cfg: &SweepConfig) -> FleetReport {
    let specs = fleet.specs();
    let shards = cfg.effective_shards(specs.len());
    let workers = cfg.effective_workers(specs.len());
    let mut results: Vec<Option<ChipResult>> = (0..specs.len()).map(|_| None).collect();
    if workers <= 1 {
        for (i, spec) in specs.iter().enumerate() {
            results[i] = Some(run_chip(spec, cfg));
        }
    } else {
        let chunk = specs.len().div_ceil(shards);
        std::thread::scope(|s| {
            let handles: Vec<_> = specs
                .chunks(chunk)
                .enumerate()
                .map(|(si, chunk_specs)| {
                    s.spawn(move || {
                        chunk_specs
                            .iter()
                            .enumerate()
                            .map(|(j, spec)| (si * chunk + j, run_chip(spec, cfg)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("sweep shard panicked") {
                    results[i] = Some(r);
                }
            }
        });
    }
    FleetReport {
        shards: workers,
        chips: results
            .into_iter()
            .map(|r| r.expect("every fleet member swept"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig::bench().with_shards(1)
    }

    #[test]
    fn sweep_measures_every_chip() {
        let fleet = FleetConfig::table1(3);
        let report = run_fleet_sweep(&fleet, &tiny_cfg());
        assert_eq!(report.chips.len(), 3);
        for c in &report.chips {
            assert!(c.conditions > 0, "{}: no conditions", c.label);
            assert!(!c.not.is_empty(), "{}: no NOT cells", c.label);
            assert!(c.not.mean() > 0.5, "{}: NOT mean {}", c.label, c.not.mean());
        }
        assert_eq!(report.shards, 1);
    }

    #[test]
    fn sharded_report_is_bit_identical_to_serial() {
        let fleet = FleetConfig::table1(4);
        let serial = run_fleet_sweep(&fleet, &tiny_cfg());
        let sharded = run_fleet_sweep(&fleet, &SweepConfig::bench().with_shards(4));
        assert_eq!(
            serial.chips, sharded.chips,
            "sharding must not change results"
        );
        let (a, _) = serial.population();
        let (b, _) = sharded.population();
        assert_eq!(a, b, "population merge must be shard-invariant");
    }

    #[test]
    fn samsung_contributes_not_but_skips_many_input_logic() {
        let cfg = dram_core::config::table1()
            .into_iter()
            .find(|m| m.manufacturer == dram_core::Manufacturer::Samsung)
            .unwrap();
        let fleet = FleetConfig::single(cfg, 1);
        let report = run_fleet_sweep(&fleet, &tiny_cfg());
        let c = &report.chips[0];
        assert!(!c.not.is_empty(), "sequential NOT still measures");
        assert!(c.logic.is_empty(), "no simultaneous logic on Samsung");
    }

    #[test]
    fn tables_carry_population_and_attribution() {
        let fleet = FleetConfig::table1(2);
        let report = run_fleet_sweep(&fleet, &tiny_cfg());
        let tables = report.tables();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].id, "fleet-not");
        assert_eq!(tables[0].rows[0].label, "all");
        // Population mean is a percentage in (0, 100].
        let mean = tables[0].rows[0].values[2].unwrap();
        assert!(mean > 50.0 && mean <= 100.0, "mean {mean}");
        // Quantiles are monotone: p1 ≤ p50 ≤ p99.
        let (p1, p50, p99) = (
            tables[0].rows[0].values[3].unwrap(),
            tables[0].rows[0].values[5].unwrap(),
            tables[0].rows[0].values[7].unwrap(),
        );
        assert!(p1 <= p50 && p50 <= p99, "{p1} {p50} {p99}");
        let chips_table = &tables[2];
        assert_eq!(chips_table.rows.len(), 2);
        for row in &chips_table.rows {
            let origin = row.origin.as_ref().expect("per-chip rows are attributed");
            assert!(!origin.module.is_empty());
        }
    }

    #[test]
    fn report_records_workers_actually_spawned() {
        // 5 chips over 4 requested shards → chunks of 2 → 3 workers.
        let fleet = FleetConfig::table1(5);
        let cfg = SweepConfig::bench().with_shards(4);
        assert_eq!(cfg.effective_workers(5), 3, "5 chips / 4 shards → 3 chunks");
        let report = run_fleet_sweep(&fleet, &cfg);
        assert_eq!(report.shards, 3, "report records workers actually spawned");
        assert_eq!(report.chips.len(), 5);
    }

    #[test]
    fn logic_shapes_partition_the_logic_population() {
        let fleet = FleetConfig::table1(2);
        let cfg = SweepConfig::quick().with_shards(1);
        let report = run_fleet_sweep(&fleet, &cfg);
        for c in &report.chips {
            let by_shape: u64 = c.logic_shapes.iter().map(|s| s.acc.count()).sum();
            assert_eq!(by_shape, c.logic.count(), "{}: shapes partition", c.label);
        }
        let shapes = report.logic_shapes();
        assert!(!shapes.is_empty());
        // Sorted by (inputs, op order) and covering the quick grid.
        for w in shapes.windows(2) {
            assert!(w[0].inputs <= w[1].inputs);
        }
        let total: u64 = shapes.iter().map(|s| s.acc.count()).sum();
        let (_, logic) = report.population();
        assert_eq!(total, logic.count());
    }

    #[test]
    fn cost_export_loads_as_a_synth_cost_model() {
        let fleet = FleetConfig::table1(2);
        let report = run_fleet_sweep(&fleet, &SweepConfig::quick().with_shards(1));
        let data = report.cost_export(65_536);
        assert!(data.entries.iter().any(|e| e.op == "not"));
        assert!(data.entries.iter().all(|e| e.cells > 0));
        let json = serde_json::to_string_pretty(&data).unwrap();
        let model = fcsynth::CostModel::from_json(&json).expect("schema matches");
        // The measured model drives the mapper end to end.
        let cost = model;
        let compiled = fcsynth::compile("(a & b) | (c & d)", &cost, 16).unwrap();
        assert!(compiled.mapping.expected_success > 0.0);
        assert!(compiled.mapping.latency_ns > 0.0);
    }

    #[test]
    fn effective_shards_clamps() {
        let cfg = SweepConfig::bench();
        assert_eq!(cfg.clone().with_shards(8).effective_shards(3), 3);
        assert_eq!(cfg.clone().with_shards(2).effective_shards(64), 2);
        assert!(cfg.clone().with_shards(0).effective_shards(64) >= 1);
        assert_eq!(cfg.with_shards(5).effective_shards(0), 1);
    }
}
