//! Shared experiment machinery: scale configuration, per-module
//! contexts, and measurement primitives that execute operations and
//! collect per-cell success probabilities.
//!
//! All success rates reported by the experiments are the model's
//! per-cell probabilities (the 10,000-trial limit); Monte-Carlo
//! cross-checks live in the integration tests.

use crate::patterns::DataPattern;
use dram_core::variation::row_region;
use dram_core::{
    BankId, CellRole, ChipId, DistanceRegion, DramModule, LocalRow, LogicOp, Manufacturer,
    ModuleConfig, PatternKind, StripeSide, SubarrayId, Temperature,
};
use fcdram::{ActivationMap, Bit, Fcdram, FcdramError, PatternEntry, Result};
use serde::{Deserialize, Serialize};

/// Experiment scale knobs (runtime vs fidelity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Modeled columns per row.
    pub cols: usize,
    /// `(R_F, R_L)` pairs scanned per subarray pair.
    pub map_budget: usize,
    /// Pattern entries retained per shape during discovery.
    pub entries_per_shape: usize,
    /// Entries executed per measured condition.
    pub execs_per_condition: usize,
    /// Random input sets drawn per (op, N) condition.
    pub input_draws: usize,
    /// Temperatures swept by the thermal experiments.
    pub temps: Vec<Temperature>,
}

impl Scale {
    /// Reduced scale for unit tests and Criterion benches.
    pub fn quick() -> Self {
        Scale {
            cols: 32,
            map_budget: 2_048,
            entries_per_shape: 4,
            execs_per_condition: 1,
            input_draws: 2,
            temps: vec![Temperature::celsius(50.0), Temperature::celsius(95.0)],
        }
    }

    /// Standard scale for the CLI (minutes, not hours).
    pub fn standard() -> Self {
        Scale {
            cols: 128,
            map_budget: 16_384,
            entries_per_shape: 8,
            execs_per_condition: 2,
            input_draws: 4,
            temps: Temperature::TESTED.to_vec(),
        }
    }
}

/// One module under test: the library stack plus its discovered map.
#[derive(Debug)]
pub struct ModuleCtx {
    /// Module configuration.
    pub cfg: ModuleConfig,
    /// The chip under test within the module.
    pub chip: ChipId,
    /// Library facade on the chip under test.
    pub fc: Fcdram,
    /// Activation map of subarray pair (0, 1) in bank 0, when the part
    /// supports simultaneous activation (empty shapes otherwise).
    pub map: ActivationMap,
}

/// The bank every experiment uses (the paper samples several; one is
/// representative under our deterministic variation model).
pub const BANK: BankId = BankId(0);
/// The subarray pair every experiment uses.
pub const PAIR: (SubarrayId, SubarrayId) = (SubarrayId(0), SubarrayId(1));

impl ModuleCtx {
    /// Builds the context for chip 0 of one module at the given scale
    /// (the historical single-chip path).
    pub fn build(cfg: &ModuleConfig, scale: &Scale) -> Result<ModuleCtx> {
        ModuleCtx::build_chip(cfg, ChipId(0), scale)
    }

    /// Builds the context for an arbitrary chip of a module (fleet
    /// mode). `build(cfg, scale)` is exactly `build_chip(cfg,
    /// ChipId(0), scale)`.
    pub fn build_chip(cfg: &ModuleConfig, chip: ChipId, scale: &Scale) -> Result<ModuleCtx> {
        let cfg = cfg.clone().with_modeled_cols(scale.cols);
        let mut fc = Fcdram::with_chip(bender::Bender::new(DramModule::new(cfg.clone())), chip);
        let map = ActivationMap::discover(
            fc.bender_mut(),
            chip,
            BANK,
            PAIR,
            scale.map_budget,
            scale.entries_per_shape,
        )?;
        Ok(ModuleCtx { cfg, chip, fc, map })
    }

    /// The report origin of rows measured on this context's chip.
    pub fn origin(&self) -> crate::report::RowOrigin {
        crate::report::RowOrigin::of(&self.cfg, self.chip)
    }

    /// A synthetic 1:1 entry for sequential-activation parts
    /// (Samsung): any cross-pair address pair activates `(rf, rl)`.
    pub fn sequential_entry(&self, salt: usize) -> PatternEntry {
        let geom = self.cfg.geometry();
        let f = (salt * 37) % geom.rows_per_subarray();
        let l = (salt * 61 + 13) % geom.rows_per_subarray();
        PatternEntry {
            rf: geom.join_row(PAIR.0, LocalRow(f)).expect("in range"),
            rl: geom.join_row(PAIR.1, LocalRow(l)).expect("in range"),
            first_rows: vec![LocalRow(f)],
            second_rows: vec![LocalRow(l)],
            kind: PatternKind::NN,
        }
    }

    /// Entries to execute for a destination-row count, sampling *both*
    /// activation families when available, capped by the scale.
    pub fn not_entries(&self, dest_rows: usize, scale: &Scale) -> Vec<PatternEntry> {
        if self.cfg.manufacturer == Manufacturer::Samsung && dest_rows == 1 {
            return (0..scale.execs_per_condition)
                .map(|i| self.sequential_entry(i))
                .collect();
        }
        let per_family = scale.execs_per_condition.max(1);
        let all = self.map.find_dst(dest_rows);
        let mut out: Vec<PatternEntry> = Vec::new();
        for kind in [PatternKind::N2N, PatternKind::NN] {
            out.extend(
                all.iter()
                    .filter(|e| e.kind == kind)
                    .take(per_family)
                    .map(|e| (*e).clone()),
            );
        }
        out
    }
}

/// Builds contexts for every Table-1 module, optionally restricted to
/// SK Hynix (the population of the §6 logic experiments).
pub fn build_fleet(scale: &Scale, hynix_only: bool) -> Vec<ModuleCtx> {
    dram_core::config::table1()
        .iter()
        .filter(|m| !hynix_only || m.manufacturer == Manufacturer::SkHynix)
        .filter_map(|m| ModuleCtx::build(m, scale).ok())
        .collect()
}

/// Per-cell record of one NOT execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NotCellRecord {
    /// Model success probability of the destination cell.
    pub p: f64,
    /// Destination rows raised (N_RL).
    pub dest_rows: usize,
    /// Total rows driven (N_RF + N_RL).
    pub total_rows: usize,
    /// Activation family.
    pub kind: PatternKind,
    /// Source-row distance region (to the shared stripe).
    pub src_region: DistanceRegion,
    /// This destination cell's row distance region.
    pub dst_region: DistanceRegion,
}

/// Executes one NOT entry with a random source pattern and collects
/// destination-cell records.
pub fn run_not(
    ctx: &mut ModuleCtx,
    entry: &PatternEntry,
    pattern: DataPattern,
) -> Result<Vec<NotCellRecord>> {
    let geom = ctx.cfg.geometry();
    let rows = geom.rows_per_subarray();
    let src = pattern.row(geom.cols());
    let report = ctx.fc.execute_not(BANK, entry, &src)?;
    let (sub_f, loc_f) = geom.split_row(entry.rf)?;
    let src_side = if sub_f == PAIR.0 {
        StripeSide::Below
    } else {
        StripeSide::Above
    };
    let src_region = row_region(loc_f, rows, src_side);
    let kind = entry.kind;
    let (n_rf, n_rl) = report.shape;
    Ok(report
        .outcome
        .cells
        .iter()
        .filter(|c| c.role == CellRole::NotDst)
        .map(|c| {
            let dst_side = if c.subarray == PAIR.0 {
                StripeSide::Below
            } else {
                StripeSide::Above
            };
            NotCellRecord {
                p: c.p_success,
                dest_rows: n_rl,
                total_rows: n_rf + n_rl,
                kind,
                src_region,
                dst_region: row_region(c.row, rows, dst_side),
            }
        })
        .collect())
}

/// Per-cell record of one logic execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogicCellRecord {
    /// Model success probability of the result cell.
    pub p: f64,
    /// Input count N.
    pub n: usize,
    /// This cell's own-row distance region.
    pub own_region: DistanceRegion,
    /// The opposite set's mean-distance region.
    pub other_region: DistanceRegion,
}

/// Executes one logic entry and collects result-cell records (compute
/// terminal for AND/OR, reference terminal for NAND/NOR).
pub fn run_logic(
    ctx: &mut ModuleCtx,
    entry: &PatternEntry,
    op: LogicOp,
    inputs: &[Vec<Bit>],
) -> Result<Vec<LogicCellRecord>> {
    let geom = ctx.cfg.geometry();
    let rows = geom.rows_per_subarray();
    let report = ctx.fc.execute_logic(BANK, entry, op, inputs)?;
    let role = if op.is_inverted_terminal() {
        CellRole::Reference
    } else {
        CellRole::Compute
    };
    let n = report.n;
    // The *addressed* rows anchor the opposite-side distance term
    // (matching the device model's event construction). Reference rows
    // sit in the upper subarray (Below side), compute rows in the
    // lower (Above side), per the PAIR orientation.
    let (_, loc_ref) = geom.split_row(entry.rf)?;
    let (_, loc_com) = geom.split_row(entry.rl)?;
    let ref_region = row_region(loc_ref, rows, StripeSide::Below);
    let com_region = row_region(loc_com, rows, StripeSide::Above);
    Ok(report
        .outcome
        .cells
        .iter()
        .filter(|c| c.role == role)
        .map(|c| {
            let own_side = if c.subarray == PAIR.0 {
                StripeSide::Below
            } else {
                StripeSide::Above
            };
            LogicCellRecord {
                p: c.p_success,
                n,
                own_region: row_region(c.row, rows, own_side),
                other_region: if op.is_inverted_terminal() {
                    com_region
                } else {
                    ref_region
                },
            }
        })
        .collect())
}

/// Runs a (op, N) condition with `draws` random input sets, returning
/// all result-cell records.
pub fn run_logic_random(
    ctx: &mut ModuleCtx,
    op: LogicOp,
    n: usize,
    draws: usize,
    seed: u64,
) -> Result<Vec<LogicCellRecord>> {
    let entry = ctx
        .map
        .find_nn(n)
        .cloned()
        .ok_or(FcdramError::NoPattern { n_rf: n, n_rl: n })?;
    let cols = ctx.cfg.geometry().cols();
    let mut out = Vec::new();
    for d in 0..draws.max(1) {
        let inputs = crate::patterns::random_input_set(
            n,
            dram_core::math::mix3(seed, d as u64, n as u64),
            cols,
        );
        out.extend(run_logic(ctx, &entry, op, &inputs)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hynix_ctx() -> ModuleCtx {
        let cfg = dram_core::config::table1().remove(0);
        ModuleCtx::build(&cfg, &Scale::quick()).unwrap()
    }

    #[test]
    fn context_builds_with_patterns() {
        let ctx = hynix_ctx();
        assert!(ctx.map.total_coverage() > 0.5);
        assert!(!ctx.not_entries(8, &Scale::quick()).is_empty());
    }

    #[test]
    fn run_not_collects_half_row_cells() {
        let mut ctx = hynix_ctx();
        let entries = ctx.not_entries(1, &Scale::quick());
        let entry = match entries.first() {
            Some(e) => e.clone(),
            None => ctx.not_entries(2, &Scale::quick())[0].clone(),
        };
        let recs = run_not(&mut ctx, &entry, DataPattern::Random(3)).unwrap();
        let expect = entry.second_rows.len() * ctx.cfg.geometry().cols() / 2;
        assert_eq!(recs.len(), expect);
        assert!(recs.iter().all(|r| (0.0..=1.0).contains(&r.p)));
    }

    #[test]
    fn run_logic_random_produces_records() {
        let mut ctx = hynix_ctx();
        let recs = run_logic_random(&mut ctx, LogicOp::And, 2, 2, 7).unwrap();
        // 2 draws × 2 result rows × cols/2 shared columns.
        assert_eq!(recs.len(), 2 * 2 * ctx.cfg.geometry().cols() / 2);
        let mean: f64 = recs.iter().map(|r| r.p).sum::<f64>() / recs.len() as f64;
        assert!(mean > 0.5, "{mean}");
    }

    #[test]
    fn samsung_sequential_entries() {
        let cfg = dram_core::config::table1()
            .into_iter()
            .find(|m| m.manufacturer == Manufacturer::Samsung)
            .unwrap();
        let mut ctx = ModuleCtx::build(&cfg, &Scale::quick()).unwrap();
        assert!(
            ctx.map.shapes().is_empty(),
            "no simultaneous shapes on Samsung"
        );
        let entries = ctx.not_entries(1, &Scale::quick());
        assert!(!entries.is_empty());
        let recs = run_not(&mut ctx, &entries[0], DataPattern::Random(1)).unwrap();
        assert!(!recs.is_empty());
        let mean: f64 = recs.iter().map(|r| r.p).sum::<f64>() / recs.len() as f64;
        assert!(mean > 0.7, "Samsung 1:1 NOT should work: {mean}");
    }

    #[test]
    fn build_chip_targets_the_requested_chip() {
        let cfg = dram_core::config::table1().remove(0);
        let ctx = ModuleCtx::build_chip(&cfg, ChipId(3), &Scale::quick()).unwrap();
        assert_eq!(ctx.chip, ChipId(3));
        assert_eq!(ctx.fc.chip(), ChipId(3));
        let origin = ctx.origin();
        assert_eq!(origin.chip, 3);
        assert_eq!(origin.module, cfg.name);
        assert_eq!(origin.manufacturer, "SK Hynix");
        // The historical entry point is exactly chip 0.
        let ctx0 = ModuleCtx::build(&cfg, &Scale::quick()).unwrap();
        assert_eq!(ctx0.chip, ChipId(0));
        assert!(ctx.map.total_coverage() > 0.0, "chip 3 still discovers");
    }

    #[test]
    fn fleet_builders() {
        let scale = Scale::quick();
        let hynix = build_fleet(&scale, true);
        assert_eq!(hynix.len(), 18);
        assert!(hynix
            .iter()
            .all(|c| c.cfg.manufacturer == Manufacturer::SkHynix));
    }
}
