//! Box-and-whiskers statistics, matching the paper's plotting
//! convention (footnote 5): the box spans the first and third
//! quartiles, whiskers span min and max.

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean and count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Minimum (lower whisker).
    pub min: f64,
    /// First quartile (box bottom).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (box top).
    pub q3: f64,
    /// Maximum (upper whisker).
    pub max: f64,
    /// Arithmetic mean (the paper's "average success rate").
    pub mean: f64,
    /// Number of samples.
    pub count: usize,
}

impl BoxStats {
    /// Computes the summary of `values`. Returns `None` when empty.
    pub fn from_values(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in stats"));
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        Some(BoxStats {
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[v.len() - 1],
            mean,
            count: v.len(),
        })
    }

    /// Interquartile range (box height).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation quantile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `v` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(v: &[f64], q: f64) -> f64 {
    assert!(!v.is_empty(), "quantile of empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction {q} out of range"
    );
    if v.len() == 1 {
        return v[0];
    }
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Mean of a value slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary() {
        let s = BoxStats::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(BoxStats::from_values(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = BoxStats::from_values(&[0.7]).unwrap();
        assert_eq!(s.min, 0.7);
        assert_eq!(s.q1, 0.7);
        assert_eq!(s.max, 0.7);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = BoxStats::from_values(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 1.0];
        assert_eq!(quantile_sorted(&v, 0.5), 0.5);
        assert_eq!(quantile_sorted(&v, 0.25), 0.25);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile_sorted(&[], 0.5);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
