//! Report rendering: aligned text tables (one per paper artifact) and
//! JSON serialization for EXPERIMENTS.md provenance.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Which physical chip a row's measurements came from. Fleet-mode
/// reports attach one to every per-chip row so population outliers are
/// attributable to a specific module + chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowOrigin {
    /// Module name, e.g. `"hynix-4Gb-M-2666-#0"`.
    pub module: String,
    /// Chip index within the module.
    pub chip: usize,
    /// Manufacturer display name.
    pub manufacturer: String,
}

impl RowOrigin {
    /// Builds an origin from a module config and chip id.
    pub fn of(cfg: &dram_core::ModuleConfig, chip: dram_core::ChipId) -> RowOrigin {
        RowOrigin {
            module: cfg.name.clone(),
            chip: chip.index(),
            manufacturer: cfg.manufacturer.to_string(),
        }
    }
}

impl std::fmt::Display for RowOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/c{} ({})", self.module, self.chip, self.manufacturer)
    }
}

/// One labeled row of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (e.g. `"AND"` or `"8:16"`).
    pub label: String,
    /// Values, one per value header; `None` renders as `-`.
    pub values: Vec<Option<f64>>,
    /// The chip this row is attributable to, when it measures a single
    /// chip (fleet per-chip rows). `None` for aggregate rows.
    pub origin: Option<RowOrigin>,
}

impl Row {
    /// Builds a row from present values.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Row {
        Row {
            label: label.into(),
            values: values.into_iter().map(Some).collect(),
            origin: None,
        }
    }

    /// Builds a row from optional values (`None` renders as `-`).
    pub fn opt(label: impl Into<String>, values: Vec<Option<f64>>) -> Row {
        Row {
            label: label.into(),
            values,
            origin: None,
        }
    }

    /// Attaches the originating chip.
    #[must_use]
    pub fn with_origin(mut self, origin: RowOrigin) -> Row {
        self.origin = Some(origin);
        self
    }
}

/// A rendered experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id (`"fig7"`, `"table1"`, ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Header of the label column.
    pub label_header: String,
    /// Headers of the value columns.
    pub value_headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Free-form notes, including paper-vs-measured comparisons.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        label_header: impl Into<String>,
        value_headers: Vec<String>,
    ) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            label_header: label_header.into(),
            value_headers,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row(&mut self, row: Row) {
        debug_assert_eq!(row.values.len(), self.value_headers.len());
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain([self.label_header.len()])
            .max()
            .unwrap_or(8)
            .max(4);
        let col_w = self
            .value_headers
            .iter()
            .map(|h| h.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = write!(out, "{:<label_w$}", self.label_header);
        for h in &self.value_headers {
            let _ = write!(out, "  {h:>col_w$}");
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(label_w + (col_w + 2) * self.value_headers.len())
        );
        for row in &self.rows {
            let _ = write!(out, "{:<label_w$}", row.label);
            for v in &row.values {
                match v {
                    Some(x) => {
                        let _ = write!(out, "  {:>col_w$.2}", x);
                    }
                    None => {
                        let _ = write!(out, "  {:>col_w$}", "-");
                    }
                }
            }
            if let Some(origin) = &row.origin {
                let _ = write!(out, "  @ {origin}");
            }
            out.push('\n');
        }
        for n in &self.notes {
            let _ = writeln!(out, "  * {n}");
        }
        out
    }
}

/// Serializes a set of tables to pretty JSON.
pub fn to_json(tables: &[Table]) -> String {
    serde_json::to_string_pretty(tables).expect("tables serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "fig7",
            "NOT success vs destination rows",
            "dest rows",
            vec!["mean %".into(), "min %".into()],
        );
        t.push_row(Row::new("1", vec![98.37, 42.0]));
        t.push_row(Row::opt("32", vec![Some(7.95), None]));
        t.note("paper: 98.37% at 1 destination row");
        t
    }

    #[test]
    fn renders_aligned_text() {
        let s = sample().render();
        assert!(s.contains("fig7"));
        assert!(s.contains("98.37"));
        assert!(s.contains('-'), "missing placeholder for None");
        assert!(s.contains("paper: 98.37"));
        // All data lines have the same width.
        let lines: Vec<&str> = s
            .lines()
            .filter(|l| l.starts_with('1') || l.starts_with('3'))
            .collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn origin_renders_and_round_trips() {
        let cfg = dram_core::config::table1().remove(0);
        let mut t = sample();
        t.push_row(
            Row::new("c3", vec![97.5, 41.0]).with_origin(RowOrigin::of(&cfg, dram_core::ChipId(3))),
        );
        let s = t.render();
        assert!(
            s.contains("@ hynix-4Gb-M-2666-#0/c3 (SK Hynix)"),
            "origin suffix missing:\n{s}"
        );
        let back: Vec<Table> = serde_json::from_str(&to_json(&[t.clone()])).unwrap();
        assert_eq!(back[0], t);
    }

    #[test]
    fn json_round_trips() {
        let t = sample();
        let json = to_json(std::slice::from_ref(&t));
        let back: Vec<Table> = serde_json::from_str(&json).unwrap();
        assert_eq!(back[0], t);
    }
}
