//! # characterize — the FCDRAM experiment harness
//!
//! Regenerates every table and figure of *"Functionally-Complete
//! Boolean Logic in Real DRAM Chips"* (HPCA 2024) against the
//! simulated chip fleet:
//!
//! | id | artifact |
//! |----|----------|
//! | `table1` | Table 1 — module inventory |
//! | `fig5`   | coverage of N_RF:N_RL activation types |
//! | `fig7`–`fig12` | NOT characterization (dest rows, pattern family, distance, temperature, speed, die) |
//! | `fig15`–`fig21` | AND/NAND/OR/NOR characterization (inputs, input weight, distance, data pattern, temperature, speed, die) |
//! | `capabilities` | extended-version per-module capability inventory |
//! | `arith` | extension: `simdram` word arithmetic on the characterized gates |
//!
//! Run `characterize all` for everything, or name individual
//! experiments; `--quick` trades fidelity for speed and `--json PATH`
//! dumps machine-readable results.
//!
//! `characterize fleet --chips N` sweeps a seeded population of
//! simulated chips ([`sweep`]) sharded over worker threads and
//! reports population success-rate distributions with per-chip
//! attribution — see the README's *Fleet mode* section.
//!
//! ## Example
//!
//! ```
//! use characterize::runner::{ModuleCtx, Scale};
//!
//! let scale = Scale::quick();
//! let cfg = dram_core::config::table1().remove(0);
//! let mut fleet = vec![ModuleCtx::build(&cfg, &scale)?];
//! let table = characterize::experiments::run_experiment("fig7", &mut fleet, &scale).unwrap();
//! assert!(table.render().contains("fig7"));
//! # Ok::<(), fcdram::FcdramError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod daemon;
pub mod experiments;
pub mod patterns;
pub mod report;
pub mod runner;
pub mod serve;
pub mod stats;
pub mod sweep;
pub mod trace;

pub use report::{Row, RowOrigin, Table};
pub use runner::{ModuleCtx, Scale};
pub use sweep::{run_fleet_sweep, ChipResult, FleetReport, SweepConfig};
