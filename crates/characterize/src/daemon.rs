//! The `characterize daemon` pipeline: demo tenant contracts and
//! report tables for the [`fcserve`] serving daemon.
//!
//! Like [`crate::serve`], this module is the testable core of the CLI
//! subcommand: it supplies the built-in multi-tenant demo workload and
//! turns a finished [`DaemonReport`] into the same [`Table`] shape
//! every other experiment report uses. Only deterministic quantities
//! appear — the daemon's throughput figure is *modeled* jobs per
//! modeled second ([`fcserve::DaemonTotals::modeled_jobs_per_s`]),
//! never the machine-dependent wall-clock rate the CLI prints to
//! stderr — so `--json` output is byte-identical for every shard
//! count and both execution backends, and a recorded session replays
//! to the same bytes.

use crate::report::{Row, Table};
use fcserve::{DaemonReport, TenantSpec, TierClass};

/// The built-in demo fleet of tenants, tuned so the default
/// `characterize daemon` run (12 ticks, 12 Table-1 chips, micro-batch
/// budget 12) exercises every admission path deterministically:
///
/// * `interactive` (gold) is latency-critical and never shed;
/// * `analytics` (silver) bursts but stays inside its queue bound;
/// * `legacy` (silver) submits a 4-XOR whose best native-width
///   variant prices below its 0.95 reliability floor — every job is
///   rejected at admission (the contract is unservable);
/// * `bulk` (bronze) floods a wide 16-AND hard enough that burst
///   ticks overflow its queue bound (deterministic shedding) and its
///   tail-of-batch jobs land on the strained chips of the 12-chip
///   fleet, where the planner runs reliability-narrowed variants.
pub fn demo_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "interactive".into(),
            tier: TierClass::Gold,
            exprs: vec!["a & b".into(), "!(x | y)".into(), "a ^ b".into()],
            rate: 2.0,
            burst: 0,
            slo_us: 150.0,
            queue_cap: 8,
            sheddable: false,
            min_success: 0.85,
        },
        TenantSpec {
            name: "analytics".into(),
            tier: TierClass::Silver,
            exprs: vec![
                "(a & b) | (a & c) | (b & c)".into(),
                "(a & b & c & d) ^ (e | f | g | h)".into(),
                "!(p & q) | (r ^ s)".into(),
            ],
            rate: 2.0,
            burst: 2,
            slo_us: 400.0,
            queue_cap: 8,
            sheddable: false,
            min_success: 0.85,
        },
        TenantSpec {
            name: "legacy".into(),
            tier: TierClass::Silver,
            exprs: vec!["b0 ^ b1 ^ b2 ^ b3".into()],
            rate: 2.0,
            burst: 0,
            slo_us: 400.0,
            queue_cap: 8,
            sheddable: false,
            min_success: 0.95,
        },
        TenantSpec {
            name: "bulk".into(),
            tier: TierClass::Bronze,
            exprs: vec!["a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p".into()],
            rate: 7.0,
            burst: 6,
            slo_us: 2000.0,
            queue_cap: 8,
            sheddable: true,
            min_success: 0.90,
        },
    ]
}

/// Renders the daemon report as the standard three daemon tables
/// (`daemon-summary`, `daemon-tenants`, `daemon-slo`).
pub fn tables(report: &DaemonReport) -> Vec<Table> {
    let t = &report.totals;
    let mut summary = Table::new(
        "daemon-summary",
        "Session outcome: admission, backpressure, drain, modeled totals",
        "metric",
        vec!["value".into()],
    );
    let rows: Vec<(&str, f64)> = vec![
        ("ingestion ticks", report.ticks as f64),
        ("drain ticks", report.drain_ticks as f64),
        ("tick period (us)", report.tick_ns / 1e3),
        ("chips", report.chips as f64),
        ("submitted", t.submitted as f64),
        ("admitted", t.admitted as f64),
        ("shed", t.shed as f64),
        ("rejected", t.rejected as f64),
        ("narrowed", t.narrowed as f64),
        ("completed", t.completed as f64),
        ("failed jobs", t.failed as f64),
        ("retries", t.retries as f64),
        ("micro-batches", t.batches as f64),
        ("native ops", t.native_ops as f64),
        ("undrained", t.undrained as f64),
        ("modeled energy (nJ)", t.energy_pj / 1e3),
        ("modeled throughput (jobs/s)", t.modeled_jobs_per_s),
    ];
    for (label, v) in rows {
        summary.push_row(Row::new(label, vec![v]));
    }
    summary.note(format!(
        "session seed {}; result digest {:#018x}; report is byte-identical \
         for every shard count and both backends",
        report.seed, t.result_digest
    ));

    let mut tenants = Table::new(
        "daemon-tenants",
        "Per-tenant admission, backpressure, and SLO outcome",
        "tenant",
        vec![
            "tier".into(),
            "submitted".into(),
            "admitted".into(),
            "shed".into(),
            "rejected".into(),
            "narrowed".into(),
            "completed".into(),
            "peak queue".into(),
            "p50 (us)".into(),
            "p99 (us)".into(),
            "slo (us)".into(),
            "slo met".into(),
        ],
    );
    for tr in &report.tenants {
        tenants.push_row(Row::new(
            format!("{} ({})", tr.name, tr.tier),
            vec![
                tr.tier.rank() as f64,
                tr.submitted as f64,
                tr.admitted as f64,
                tr.shed as f64,
                tr.rejected as f64,
                tr.narrowed as f64,
                tr.completed as f64,
                tr.peak_queue as f64,
                tr.latency.p50_ns / 1e3,
                tr.latency.p99_ns / 1e3,
                tr.slo_us,
                f64::from(u8::from(tr.slo_met)),
            ],
        ));
    }
    tenants.note(
        "latency percentiles are modeled: tick-clock queue wait plus cost-model \
         predicted service time scaled by the deterministic retry count"
            .to_string(),
    );

    let mut slo = Table::new(
        "daemon-slo",
        "Periodic health snapshots (last row is the post-drain state)",
        "tick",
        vec![
            "elapsed (us)".into(),
            "completed".into(),
            "admitted".into(),
            "shed".into(),
            "queued".into(),
            "jobs/s (modeled)".into(),
            "tenants in SLO".into(),
            "mitigations".into(),
            "dropouts".into(),
        ],
    );
    for s in &report.snapshots {
        let ok = s.tenants.iter().filter(|h| h.ok).count();
        slo.push_row(Row::new(
            format!("t{}", s.tick),
            vec![
                s.elapsed_us,
                s.completed as f64,
                s.admitted as f64,
                s.shed as f64,
                s.queued as f64,
                s.modeled_jobs_per_s,
                ok as f64,
                s.mitigations as f64,
                s.dropouts as f64,
            ],
        ));
    }
    vec![summary, tenants, slo]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::FleetConfig;
    use fcserve::{daemon, DaemonConfig};
    use fcsynth::CostModel;

    fn demo_run() -> (fcserve::SessionLog, DaemonReport) {
        let cost = CostModel::table1_defaults();
        let fleet = FleetConfig::table1(12);
        let cfg = DaemonConfig {
            seed: 1,
            lanes: 64,
            ..DaemonConfig::default()
        };
        daemon::run_live(&fleet, &cost, &cfg, &demo_tenants()).unwrap()
    }

    #[test]
    fn demo_session_exercises_every_admission_path() {
        let (_, report) = demo_run();
        let t = &report.totals;
        assert!(t.admitted > 0, "{t:?}");
        assert!(t.shed > 0, "bronze overflow sheds: {t:?}");
        assert!(t.rejected > 0, "the legacy contract rejects: {t:?}");
        assert!(t.narrowed > 0, "strained chips narrow the 16-AND: {t:?}");
        assert_eq!(t.undrained, 0, "demo load drains clean: {t:?}");
        let by_tier = report.tier_counts();
        assert_eq!(by_tier[0].2, 0, "gold is never shed");
        assert!(by_tier[2].2 > 0, "bronze takes the backpressure");
        // Rejection hits only the legacy tenant.
        assert_eq!(report.tenants[2].rejected, report.tenants[2].submitted);
        assert_eq!(t.rejected, report.tenants[2].rejected);
    }

    #[test]
    fn daemon_tables_are_replay_stable() {
        let cost = CostModel::table1_defaults();
        let fleet = FleetConfig::table1(12);
        let (log, live) = demo_run();
        let json = crate::report::to_json(&tables(&live));
        for (shards, backend) in [
            (1, fcexec::BackendKind::Vm),
            (5, fcexec::BackendKind::Bender),
        ] {
            let replayed =
                daemon::replay(&fleet, &cost, &log, Some(shards), Some(backend)).unwrap();
            assert_eq!(
                json,
                crate::report::to_json(&tables(&replayed)),
                "tables differ at shards={shards} backend={backend}"
            );
        }
        assert!(json.contains("daemon-summary"));
        assert!(json.contains("daemon-tenants"));
        assert!(json.contains("daemon-slo"));
        assert!(!json.contains("wall"), "no wall-clock leaks into tables");
    }

    #[test]
    fn tenant_rows_cover_all_three_tiers() {
        let (_, report) = demo_run();
        let ts = tables(&report);
        assert_eq!(ts[1].rows.len(), 4);
        let labels: Vec<&str> = ts[1].rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "interactive (gold)",
                "analytics (silver)",
                "legacy (silver)",
                "bulk (bronze)"
            ]
        );
        assert!(!ts[2].rows.is_empty(), "snapshot timeline present");
    }
}
