//! CLI entry point: regenerate the paper's tables and figures.

use characterize::experiments::{run_experiment, ALL_IDS};
use characterize::report::to_json;
use characterize::runner::{build_fleet, Scale};
use characterize::sweep::{run_fleet_sweep, SweepConfig};
use dram_core::FleetConfig;
use std::process::ExitCode;

const USAGE: &str = "\
usage: characterize [EXPERIMENT...] [--quick] [--json PATH]
       characterize fleet [--chips N] [--shards K] [--seed S]
                          [--module NAME] [--quick] [--json PATH]
                          [--export-costs PATH]
       characterize synth (--expr EXPR | --table BITS) [--costs PATH]
                          [--fan-in N] [--execute] [--lanes N]
                          [--seed S] [--asm PATH]
                          [--backend {vm,bender}] [--fuse {on,off}]
       characterize serve [--jobs N] [--exprs FILE] [--chips N]
                          [--shards K] [--seed S] [--lanes N]
                          [--retries R] [--min-success X] [--no-remap]
                          [--costs PATH] [--module NAME] [--fan-in N]
                          [--backend {vm,bender}] [--fuse {on,off}]
                          [--json PATH]
                          [--faults PLAN.json|demo] [--health-json PATH]
       characterize daemon [--ticks N] [--chips N] [--seed S]
                           [--lanes N] [--shards K] [--max-batch N]
                           [--tick-us T] [--report-every N]
                           [--drain-max N] [--retries R]
                           [--min-success X] [--fan-in N]
                           [--module NAME] [--costs PATH]
                           [--backend {vm,bender}] [--fuse {on,off}]
                           [--faults PLAN.json|demo] [--demo]
                           [--trace-json PATH] [--metrics PATH]
                           [--record SESSION.json] [--json PATH]
       characterize daemon --replay SESSION.json [--shards K]
                           [--backend {vm,bender}] [--fuse {on,off}]
                           [--costs PATH]
                           [--trace-json PATH] [--metrics PATH]
                           [--json PATH]
       characterize trace --input TRACE.json [--top N] [--json PATH]

EXPERIMENT  one or more of: table1 fig5 fig7 fig8 fig9 fig10 fig11
            fig12 fig15 fig16 fig17 fig18 fig19 fig20 fig21
            capabilities all
            (default: all)
--quick     reduced scale (fast; used by tests and benches)
--json PATH additionally write results as JSON

The shared flags are spelled and defaulted identically in every mode
that takes them: --backend {vm,bender} (default vm), --shards K
(default 0 = one worker per CPU), --seed S (default 0), --chips N
(default 8), --fuse {on,off} (default on: prepared programs execute
with fused engine visits and the scheduler bulk-stages runs of
same-program jobs; results and report bytes are identical either
way — 'off' exists for ablation). A mode a shared flag does not
apply to rejects it.

fleet mode sweeps a seeded population of simulated chips (drawn
round-robin from Table 1, or from one --module) over the experiment
grid, sharded across worker threads, and reports population
success-rate distributions with per-chip attribution:
--chips N   fleet size (default 8)
--shards K  worker threads (default: one per CPU)
--seed S    reseed the whole population (default 0 = Table-1 chips)
--module M  draw every chip from module M (e.g. hynix-4Gb-M-2666-#0)
--export-costs PATH  write measured per-(op, N) success/latency/energy
            as a synthesis cost model (the JSON fcsynth loads)

synth mode compiles a boolean expression (or LSB-first truth table)
into an FCDRAM program with the reliability-aware mapper and reports
the chosen mapping, expected success, and energy/latency:
--expr EXPR   expression over !, &, |, ^, parens, named inputs
--table BITS  truth table, e.g. 0110 (2^n digits, LSB-first)
--costs PATH  cost model from a fleet --export-costs run
              (default: built-in Table-1 population means)
--fan-in N    widest native gate of the target part (default 16)
--execute     run through the unified fcexec engine and verify
--lanes N     SIMD lanes for --execute (default 256)
--seed S      operand seed for --execute (default 0)
--asm PATH    also emit the program as bender assembly
--backend B   execution backend for --execute: 'vm' (host SimdVm,
              verified bit-exact; default) or 'bender' (one combined
              cycle-timed DDR4 command schedule per native op on a
              simulated Table-1 chip — reports the observed match
              fraction against the reference and the cycle-accurate
              schedule latency)
--fuse F      whether --execute runs the prepared plan with fused
              engine visits ('on', default) or step-by-step ('off');
              the result bits are identical either way

serve mode schedules a batch of compiled programs onto a simulated
chip fleet (fcsched): least-loaded placement with (subarray, row-range)
slot leases, per-chip reliability-aware admission (re-map to narrower
gates or flag), deterministic retry accounting, and a report with
throughput, percentile latency, and per-chip utilization. Results and
the --json report are bit-identical for every --shards value; only the
wall-clock throughput on stderr varies:
--jobs N        batch size (default 32)
--exprs FILE    expressions to serve, one per line, '#' comments
                (default: a built-in heterogeneous 6-tenant mix)
--chips N       fleet size (default 8)
--shards K      worker threads (default: one per CPU)
--seed S        batch seed for operands and retry draws (default 0)
--lanes N       SIMD lanes per job (default 256)
--retries R     per-job retry budget (default 3)
--min-success X admission threshold (default 0.85)
--no-remap      flag below-threshold jobs instead of narrowing them
--costs PATH    cost model from a fleet --export-costs run
--module M      draw every chip from one module
--fan-in N      widest native gate when compiling (default 16)
--backend B     execution backend: 'vm' (cost-model latency; default)
                or 'bender' (cycle-accurate DDR4 command-schedule
                latency at each chip's speed bin). Results are
                host-exact on both; only the declared latency fields
                of the report move.
--fuse F        'on' (default): fused engine visits plus cross-job
                operand fusion — same-program jobs on one chip share a
                prepared plan and bulk-stage operands;
                'off' runs jobs one at a time (ablation). Report
                bytes are identical either way
--json PATH     additionally write the tables as JSON
--faults F      run a degradation scenario: F is a FaultPlan JSON file
                or the literal 'demo' (built-in scenario: aggressive
                disturbance threshold + one scripted mid-session chip
                dropout). Adds read-disturbance accumulation with
                planner-scheduled mitigation stealing lease bandwidth,
                MIL-HDBK-217F hazard-rate aging, and deterministic
                dropout handling with in-flight job re-placement; the
                report gains serve-health and serve-dropouts tables
                that are byte-identical for every --shards value and
                both backends
--health-json PATH  write the fleet-health ledger alone as JSON (the
                artifact CI byte-diffs across shard counts and
                backends)

daemon mode runs the always-on fcserve serving daemon over a built-in
three-tier demo tenant fleet: streaming per-tenant ingestion on a
modeled tick clock, admission control (reliability-aware rejection,
shed-or-queue backpressure), SLO-tiered micro-batching into the
fcsched scheduler, rolling per-tenant p50/p99 health snapshots, and a
graceful drain. Every ingested job is appended to a session log;
--record writes it and --replay re-executes it byte-identically — the
report depends only on (session log, fleet, cost model), never on
shard count, backend, or the wall clock (wall jobs/s stays on stderr;
the report carries modeled throughput instead):
--ticks N       ingestion ticks before the drain (default 12)
--chips N       fleet size (default 8)
--seed S        session seed: traffic, operands, retry draws (default 0)
--lanes N       SIMD lanes per job (default 64)
--shards K      worker threads (default: one per CPU)
--max-batch N   micro-batch budget per tick (default 12)
--tick-us T     modeled tick period in microseconds (default 20)
--report-every N  health-snapshot interval in ticks (default 4)
--drain-max N   drain-tick bound after ingestion stops (default 64)
--retries R     per-job retry budget (default 3)
--min-success X scheduler admission threshold (default 0.85)
--fan-in N      widest native gate when compiling (default 16)
--module M      draw every chip from one module
--costs PATH    cost model from a fleet --export-costs run
--backend B     execution backend: 'vm' or 'bender' (report bytes are
                identical on both)
--fuse F        fused execution 'on' (default) or 'off'; like
                --backend, never moves a report byte
--faults F      degradation scenario (FaultPlan JSON or 'demo'); the
                health snapshots accumulate mitigations and dropouts
--demo          the canonical demo session: shorthand for --faults
                demo over the built-in tenants (what CI traces);
                conflicts with --faults and --replay
--trace-json PATH  record the session as Chrome trace-event JSON
                (load in chrome://tracing or Perfetto; analyze with
                `characterize trace`). Timestamps are modeled —
                tick clock plus cost-model latencies — so the trace
                bytes are identical for every --shards value and
                both backends
--metrics PATH  write a Prometheus-style metrics exposition at every
                health interval and once more at drain (the file
                always ends matching the final report totals)
--record PATH   write the session log for later --replay
--replay PATH   re-execute a recorded session; traffic-shaping flags
                are rejected (the log pins them) — only --shards,
                --backend, --fuse, --costs, --trace-json, --metrics,
                and --json are allowed
--json PATH     additionally write the tables as JSON

trace mode analyzes a recorded Chrome trace offline: the top-N
hottest (op, N) shapes by total modeled time, per-chip utilization,
and per-tenant queue-wait breakdowns:
--input PATH  the trace written by `characterize daemon --trace-json`
--top N       how many op shapes to list (default 10)
--json PATH   additionally write the tables as JSON
";

/// Takes the next argument as a string, printing a diagnostic when it
/// is missing.
fn str_arg(it: &mut impl Iterator<Item = String>, flag: &str) -> Option<String> {
    let v = it.next();
    if v.is_none() {
        eprintln!("{flag} requires a value\n{USAGE}");
    }
    v
}

/// Parses a `--backend` value, printing a diagnostic on an unknown
/// name.
fn parse_backend(text: &str) -> Option<fcexec::BackendKind> {
    let parsed = fcexec::BackendKind::parse(text);
    if parsed.is_none() {
        eprintln!("--backend: unknown backend '{text}' (one of: vm, bender)\n{USAGE}");
    }
    parsed
}

/// Parses a `--fuse` value, printing a diagnostic on an unknown
/// spelling.
fn parse_fuse(text: &str) -> Option<bool> {
    match text {
        "on" => Some(true),
        "off" => Some(false),
        _ => {
            eprintln!("--fuse: invalid value '{text}' (one of: on, off)\n{USAGE}");
            None
        }
    }
}

/// Uniform default fleet size for every subcommand's `--chips`.
const DEFAULT_CHIPS: usize = 8;

/// The flags every subcommand spells and defaults identically:
/// `--backend` (vm), `--shards` (0 = one worker per CPU), `--seed`
/// (0), `--chips` ([`DEFAULT_CHIPS`]), `--fuse` (on). One parser, one
/// spelling, one default — subcommands reject the ones that do not
/// apply instead of re-defining them.
struct CommonFlags {
    backend: fcexec::BackendKind,
    shards: usize,
    seed: u64,
    chips: usize,
    fuse: bool,
    backend_set: bool,
    shards_set: bool,
    seed_set: bool,
    chips_set: bool,
    fuse_set: bool,
}

impl Default for CommonFlags {
    fn default() -> Self {
        CommonFlags {
            backend: fcexec::BackendKind::Vm,
            shards: 0,
            seed: 0,
            chips: DEFAULT_CHIPS,
            fuse: true,
            backend_set: false,
            shards_set: false,
            seed_set: false,
            chips_set: false,
            fuse_set: false,
        }
    }
}

/// Outcome of offering one argument to the shared-flag parser.
enum Common {
    /// The flag (and its value) were consumed.
    Consumed,
    /// The flag was recognized but its value was missing/malformed (a
    /// diagnostic has been printed).
    Failed,
    /// Not one of the shared flags.
    Unrecognized,
}

impl CommonFlags {
    /// Offers `flag` to the shared parser, consuming its value from
    /// `it` when recognized.
    fn accept(&mut self, flag: &str, it: &mut impl Iterator<Item = String>) -> Common {
        match flag {
            "--backend" => match str_arg(it, "--backend").map(|b| parse_backend(&b)) {
                Some(Some(b)) => {
                    self.backend = b;
                    self.backend_set = true;
                    Common::Consumed
                }
                _ => Common::Failed,
            },
            "--shards" => match num_arg(it, "--shards") {
                Some(n) => {
                    self.shards = n;
                    self.shards_set = true;
                    Common::Consumed
                }
                None => Common::Failed,
            },
            "--seed" => match num_arg(it, "--seed") {
                Some(n) => {
                    self.seed = n;
                    self.seed_set = true;
                    Common::Consumed
                }
                None => Common::Failed,
            },
            "--chips" => match num_arg(it, "--chips") {
                Some(n) => {
                    self.chips = n;
                    self.chips_set = true;
                    Common::Consumed
                }
                None => Common::Failed,
            },
            "--fuse" => match str_arg(it, "--fuse").map(|v| parse_fuse(&v)) {
                Some(Some(f)) => {
                    self.fuse = f;
                    self.fuse_set = true;
                    Common::Consumed
                }
                _ => Common::Failed,
            },
            _ => Common::Unrecognized,
        }
    }

    /// Errors out (with a diagnostic) when a shared flag that does not
    /// apply to subcommand `sub` was given; `allowed` lists the
    /// applicable ones.
    fn check_applies(&self, sub: &str, allowed: &[&str]) -> bool {
        let given = [
            ("--backend", self.backend_set),
            ("--shards", self.shards_set),
            ("--seed", self.seed_set),
            ("--chips", self.chips_set),
            ("--fuse", self.fuse_set),
        ];
        for (name, set) in given {
            if set && !allowed.contains(&name) {
                eprintln!("{name} does not apply to '{sub}'\n{USAGE}");
                return false;
            }
        }
        true
    }
}

/// Parses the next argument as a number, printing a diagnostic when it
/// is missing or malformed.
fn num_arg<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> Option<T> {
    let Some(v) = it.next() else {
        eprintln!("{flag} requires a value\n{USAGE}");
        return None;
    };
    match v.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("{flag}: invalid value '{v}'\n{USAGE}");
            None
        }
    }
}

fn run_fleet_cli(args: Vec<String>) -> ExitCode {
    let mut common = CommonFlags::default();
    let mut module: Option<String> = None;
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut costs_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--export-costs" => match str_arg(&mut it, "--export-costs") {
                Some(p) => costs_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--module" => match str_arg(&mut it, "--module") {
                Some(m) => module = Some(m),
                None => return ExitCode::FAILURE,
            },
            "--json" => match str_arg(&mut it, "--json") {
                Some(p) => json_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => match common.accept(other, &mut it) {
                Common::Consumed => {}
                Common::Failed => return ExitCode::FAILURE,
                Common::Unrecognized => {
                    eprintln!("unknown fleet option '{other}'\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if !common.check_applies("fleet", &["--chips", "--shards", "--seed"]) {
        return ExitCode::FAILURE;
    }
    let (chips, shards, seed) = (common.chips, common.shards, common.seed);
    if chips == 0 {
        eprintln!("--chips must be at least 1\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let fleet = match module {
        Some(name) => {
            let all = dram_core::config::full_fleet();
            match all.into_iter().find(|m| m.name == name) {
                Some(cfg) => FleetConfig::single(cfg, chips),
                None => {
                    eprintln!("unknown module '{name}' (see `characterize table1`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => FleetConfig::table1(chips),
    }
    .with_seed(seed);
    let sweep = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::standard()
    }
    .with_shards(shards);
    eprintln!(
        "sweeping {} chips over {} worker thread(s) ...",
        fleet.len(),
        sweep.effective_workers(fleet.len())
    );
    let start = std::time::Instant::now();
    let report = run_fleet_sweep(&fleet, &sweep);
    eprintln!("fleet sweep done in {:.1}s", start.elapsed().as_secs_f64());
    let tables = report.tables();
    for t in &tables {
        println!("{}", t.render());
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, to_json(&tables)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = costs_path {
        let data = report.cost_export(65_536);
        if data.entries.is_empty() {
            eprintln!("no measured operations to export (nothing written)");
            return ExitCode::FAILURE;
        }
        let json = serde_json::to_string_pretty(&data).expect("cost model serializes");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {path} ({} operation entries; load with `characterize synth --costs`)",
            data.entries.len()
        );
    }
    ExitCode::SUCCESS
}

/// The `serve` subcommand: schedule a batch of compiled programs onto
/// a fleet and report throughput, latency percentiles, and per-chip
/// utilization.
fn run_serve_cli(args: Vec<String>) -> ExitCode {
    let mut common = CommonFlags::default();
    let mut jobs = 32usize;
    let mut lanes = 256usize;
    let mut retries = 3u32;
    let mut min_success = 0.85f64;
    let mut allow_remap = true;
    let mut fan_in = 16usize;
    let mut exprs_path: Option<String> = None;
    let mut costs_path: Option<String> = None;
    let mut module: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut faults_arg: Option<String> = None;
    let mut health_json_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => match num_arg(&mut it, "--jobs") {
                Some(n) => jobs = n,
                None => return ExitCode::FAILURE,
            },
            "--lanes" => match num_arg(&mut it, "--lanes") {
                Some(n) => lanes = n,
                None => return ExitCode::FAILURE,
            },
            "--retries" => match num_arg(&mut it, "--retries") {
                Some(n) => retries = n,
                None => return ExitCode::FAILURE,
            },
            "--min-success" => match num_arg(&mut it, "--min-success") {
                Some(n) => min_success = n,
                None => return ExitCode::FAILURE,
            },
            "--fan-in" => match num_arg(&mut it, "--fan-in") {
                Some(n) => fan_in = n,
                None => return ExitCode::FAILURE,
            },
            "--no-remap" => allow_remap = false,
            "--exprs" => match str_arg(&mut it, "--exprs") {
                Some(p) => exprs_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--costs" => match str_arg(&mut it, "--costs") {
                Some(p) => costs_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--module" => match str_arg(&mut it, "--module") {
                Some(m) => module = Some(m),
                None => return ExitCode::FAILURE,
            },
            "--json" => match str_arg(&mut it, "--json") {
                Some(p) => json_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--faults" => match str_arg(&mut it, "--faults") {
                Some(f) => faults_arg = Some(f),
                None => return ExitCode::FAILURE,
            },
            "--health-json" => match str_arg(&mut it, "--health-json") {
                Some(p) => health_json_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => match common.accept(other, &mut it) {
                Common::Consumed => {}
                Common::Failed => return ExitCode::FAILURE,
                Common::Unrecognized => {
                    eprintln!("unknown serve option '{other}'\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    let (chips, shards, seed, backend) = (common.chips, common.shards, common.seed, common.backend);
    if jobs == 0 || chips == 0 || lanes == 0 {
        eprintln!("--jobs, --chips, and --lanes must be at least 1\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let cost = match &costs_path {
        Some(path) => {
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("failed to read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match fcsynth::CostModel::from_json(&json) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => fcsynth::CostModel::table1_defaults(),
    };
    let exprs: Vec<String> = match &exprs_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let parsed = characterize::serve::load_exprs(&text);
                if parsed.is_empty() {
                    eprintln!("{path}: no expressions found");
                    return ExitCode::FAILURE;
                }
                parsed
            }
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => characterize::serve::DEMO_MIX
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let fleet = match module {
        Some(name) => {
            let all = dram_core::config::full_fleet();
            match all.into_iter().find(|m| m.name == name) {
                Some(cfg) => FleetConfig::single(cfg, chips),
                None => {
                    eprintln!("unknown module '{name}' (see `characterize table1`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => FleetConfig::table1(chips),
    };
    let batch = match characterize::serve::build_batch(&exprs, jobs, lanes, seed, &cost, fan_in) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let faults = match &faults_arg {
        Some(f) if f == "demo" => Some(fcsched::FaultPlan::demo()),
        Some(path) => {
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("failed to read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match fcsched::FaultPlan::from_json(&json) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    if health_json_path.is_some() && faults.is_none() {
        eprintln!("--health-json needs --faults (no fleet-health ledger otherwise)\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let policy = fcsched::SchedPolicy {
        min_success,
        retry_budget: retries,
        allow_remap,
        shards,
        backend,
        fuse: common.fuse,
        faults,
        ..fcsched::SchedPolicy::default()
    };
    eprintln!(
        "serving {} job(s) ({} native ops) on {} chip(s) over {} worker thread(s), \
         {backend} backend ...",
        batch.len(),
        batch.native_ops(),
        fleet.len(),
        policy.effective_workers(batch.len())
    );
    let start = std::time::Instant::now();
    let report = match fcsched::serve_batch(&fleet, &cost, &policy, &batch) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scheduling failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall = start.elapsed().as_secs_f64();
    // Wall-clock throughput is machine-dependent: stderr only, never
    // in the deterministic tables/JSON.
    eprintln!(
        "batch done in {:.3}s wall ({:.0} jobs/s, {:.0} native ops/s)",
        wall,
        report.jobs() as f64 / wall.max(1e-9),
        report.native_ops() as f64 / wall.max(1e-9),
    );
    let tables = characterize::serve::tables(&report, &fleet, &fcsched::ideal_cost(&batch, &cost));
    for t in &tables {
        println!("{}", t.render());
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, to_json(&tables)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = health_json_path {
        let health = report.health.as_ref().expect("--faults was required above");
        if let Err(e) = std::fs::write(&path, health.to_json()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// Loads a cost model from `--costs` (or the built-in Table-1
/// defaults when absent).
fn load_cost_model(costs_path: Option<&str>) -> Option<fcsynth::CostModel> {
    match costs_path {
        Some(path) => {
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("failed to read {path}: {e}");
                    return None;
                }
            };
            match fcsynth::CostModel::from_json(&json) {
                Ok(m) => Some(m),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    None
                }
            }
        }
        None => Some(fcsynth::CostModel::table1_defaults()),
    }
}

/// Builds a fleet from an optional `--module` name, defaulting to the
/// round-robin Table-1 inventory.
fn build_cli_fleet(module: Option<&str>, chips: usize) -> Option<FleetConfig> {
    match module {
        Some(name) => {
            let all = dram_core::config::full_fleet();
            match all.into_iter().find(|m| m.name == name) {
                Some(cfg) => Some(FleetConfig::single(cfg, chips)),
                None => {
                    eprintln!("unknown module '{name}' (see `characterize table1`)");
                    None
                }
            }
        }
        None => Some(FleetConfig::table1(chips)),
    }
}

/// Builds the daemon's observability bundle from the `--trace-json` /
/// `--metrics` flags (a disabled bundle when neither was given — the
/// engine then follows the exact unobserved code paths).
fn daemon_obs(trace: bool, metrics_path: Option<&str>) -> fcobs::Observability {
    let mut obs = fcobs::Observability::disabled();
    if trace {
        obs = obs.with_trace(fcobs::trace::DEFAULT_TRACE_CAPACITY);
    }
    if metrics_path.is_some() {
        obs = obs.with_metrics(metrics_path.map(std::path::PathBuf::from));
    }
    obs
}

/// Writes the collected trace as Chrome trace-event JSON and confirms
/// the metrics file (the daemon already flushed it). Returns false on
/// a write failure.
fn write_obs_artifacts(
    obs: fcobs::Observability,
    trace_path: Option<&str>,
    metrics_path: Option<&str>,
) -> bool {
    if let Some(path) = trace_path {
        let buf = obs.trace.expect("--trace-json enabled the collector");
        let dropped = buf.dropped();
        let events = buf.finish();
        if dropped > 0 {
            eprintln!("warning: trace ring shed {dropped} oldest event(s)");
        }
        let json = fcobs::chrome::to_chrome(&events);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {e}");
            return false;
        }
        eprintln!(
            "wrote {path} ({} trace event(s); open in chrome://tracing or \
             run `characterize trace --input {path}`)",
            events.len()
        );
    }
    if let Some(path) = metrics_path {
        eprintln!("wrote {path} (Prometheus-style metrics exposition)");
    }
    true
}

/// The `daemon` subcommand: run the always-on fcserve serving daemon
/// over the built-in demo tenants (optionally recording the session),
/// or byte-identically replay a recorded session.
fn run_daemon_cli(args: Vec<String>) -> ExitCode {
    let mut common = CommonFlags::default();
    let mut ticks: Option<usize> = None;
    let mut lanes: Option<usize> = None;
    let mut max_batch: Option<usize> = None;
    let mut tick_us: Option<f64> = None;
    let mut report_every: Option<usize> = None;
    let mut drain_max: Option<usize> = None;
    let mut retries: Option<u32> = None;
    let mut min_success: Option<f64> = None;
    let mut fan_in: Option<usize> = None;
    let mut module: Option<String> = None;
    let mut costs_path: Option<String> = None;
    let mut faults_arg: Option<String> = None;
    let mut demo = false;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut record_path: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--demo" => demo = true,
            "--trace-json" => match str_arg(&mut it, "--trace-json") {
                Some(p) => trace_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--metrics" => match str_arg(&mut it, "--metrics") {
                Some(p) => metrics_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--ticks" => match num_arg(&mut it, "--ticks") {
                Some(n) => ticks = Some(n),
                None => return ExitCode::FAILURE,
            },
            "--lanes" => match num_arg(&mut it, "--lanes") {
                Some(n) => lanes = Some(n),
                None => return ExitCode::FAILURE,
            },
            "--max-batch" => match num_arg(&mut it, "--max-batch") {
                Some(n) => max_batch = Some(n),
                None => return ExitCode::FAILURE,
            },
            "--tick-us" => match num_arg(&mut it, "--tick-us") {
                Some(n) => tick_us = Some(n),
                None => return ExitCode::FAILURE,
            },
            "--report-every" => match num_arg(&mut it, "--report-every") {
                Some(n) => report_every = Some(n),
                None => return ExitCode::FAILURE,
            },
            "--drain-max" => match num_arg(&mut it, "--drain-max") {
                Some(n) => drain_max = Some(n),
                None => return ExitCode::FAILURE,
            },
            "--retries" => match num_arg(&mut it, "--retries") {
                Some(n) => retries = Some(n),
                None => return ExitCode::FAILURE,
            },
            "--min-success" => match num_arg(&mut it, "--min-success") {
                Some(n) => min_success = Some(n),
                None => return ExitCode::FAILURE,
            },
            "--fan-in" => match num_arg(&mut it, "--fan-in") {
                Some(n) => fan_in = Some(n),
                None => return ExitCode::FAILURE,
            },
            "--module" => match str_arg(&mut it, "--module") {
                Some(m) => module = Some(m),
                None => return ExitCode::FAILURE,
            },
            "--costs" => match str_arg(&mut it, "--costs") {
                Some(p) => costs_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--faults" => match str_arg(&mut it, "--faults") {
                Some(f) => faults_arg = Some(f),
                None => return ExitCode::FAILURE,
            },
            "--record" => match str_arg(&mut it, "--record") {
                Some(p) => record_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--replay" => match str_arg(&mut it, "--replay") {
                Some(p) => replay_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--json" => match str_arg(&mut it, "--json") {
                Some(p) => json_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => match common.accept(other, &mut it) {
                Common::Consumed => {}
                Common::Failed => return ExitCode::FAILURE,
                Common::Unrecognized => {
                    eprintln!("unknown daemon option '{other}'\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }

    if let Some(path) = replay_path {
        // The session log pins every decision-shaping knob; a flag
        // that tried to change one would silently record a lie.
        let pinned: Vec<&str> = [
            ("--ticks", ticks.is_some()),
            ("--chips", common.chips_set),
            ("--seed", common.seed_set),
            ("--lanes", lanes.is_some()),
            ("--max-batch", max_batch.is_some()),
            ("--tick-us", tick_us.is_some()),
            ("--report-every", report_every.is_some()),
            ("--drain-max", drain_max.is_some()),
            ("--retries", retries.is_some()),
            ("--min-success", min_success.is_some()),
            ("--fan-in", fan_in.is_some()),
            ("--module", module.is_some()),
            ("--faults", faults_arg.is_some()),
            ("--demo", demo),
            ("--record", record_path.is_some()),
        ]
        .iter()
        .filter(|(_, set)| *set)
        .map(|(name, _)| *name)
        .collect();
        if !pinned.is_empty() {
            eprintln!(
                "--replay re-executes the recorded session: {} cannot be \
                 overridden (the log pins it)\n{USAGE}",
                pinned.join(", ")
            );
            return ExitCode::FAILURE;
        }
        let json = match std::fs::read_to_string(&path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut log = match fcserve::SessionLog::from_json(&json) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Like --shards and --backend, --fuse never moves a report
        // byte, so a replay may override the recorded choice.
        if common.fuse_set {
            log.policy.fuse = common.fuse;
        }
        // Replays price admission against the recorded cost model;
        // --costs overrides the stored path (e.g. when it moved).
        let effective_costs = costs_path.or_else(|| log.costs.clone());
        let Some(cost) = load_cost_model(effective_costs.as_deref()) else {
            return ExitCode::FAILURE;
        };
        let Some(fleet) = build_cli_fleet(log.module.as_deref(), log.chips) else {
            return ExitCode::FAILURE;
        };
        let fleet = fleet.with_seed(log.fleet_seed);
        eprintln!(
            "replaying {} event(s) over {} tick(s) on {} chip(s) ...",
            log.events.len(),
            log.knobs.ticks,
            fleet.len()
        );
        let obs = daemon_obs(trace_path.is_some(), metrics_path.as_deref());
        let shards = common.shards_set.then_some(common.shards);
        let backend = common.backend_set.then_some(common.backend);
        let (report, obs) =
            match fcserve::daemon::replay_obs(&fleet, &cost, &log, shards, backend, obs) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("replay failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
        let tables = characterize::daemon::tables(&report);
        for t in &tables {
            println!("{}", t.render());
        }
        if !write_obs_artifacts(obs, trace_path.as_deref(), metrics_path.as_deref()) {
            return ExitCode::FAILURE;
        }
        if let Some(out) = json_path {
            if let Err(e) = std::fs::write(&out, to_json(&tables)) {
                eprintln!("failed to write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {out}");
        }
        return ExitCode::SUCCESS;
    }

    let chips = common.chips;
    let lanes = lanes.unwrap_or(64);
    if chips == 0 || lanes == 0 {
        eprintln!("--chips and --lanes must be at least 1\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let Some(cost) = load_cost_model(costs_path.as_deref()) else {
        return ExitCode::FAILURE;
    };
    let Some(fleet) = build_cli_fleet(module.as_deref(), chips) else {
        return ExitCode::FAILURE;
    };
    if demo && faults_arg.is_some() {
        eprintln!("--demo already selects the demo fault scenario; drop --faults\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if demo {
        faults_arg = Some("demo".into());
    }
    let faults = match &faults_arg {
        Some(f) if f == "demo" => Some(fcsched::FaultPlan::demo()),
        Some(path) => {
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("failed to read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match fcsched::FaultPlan::from_json(&json) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let mut knobs = fcserve::DaemonKnobs::default();
    if let Some(v) = ticks {
        knobs.ticks = v;
    }
    if let Some(v) = max_batch {
        knobs.max_batch = v;
    }
    if let Some(v) = tick_us {
        knobs.tick_ns = v * 1e3;
    }
    if let Some(v) = report_every {
        knobs.report_every = v;
    }
    if let Some(v) = drain_max {
        knobs.drain_max = v;
    }
    let cfg = fcserve::DaemonConfig {
        seed: common.seed,
        lanes,
        fan_in: fan_in.unwrap_or(16),
        knobs,
        policy: fcsched::SchedPolicy {
            min_success: min_success.unwrap_or(0.85),
            retry_budget: retries.unwrap_or(3),
            shards: common.shards,
            backend: common.backend,
            fuse: common.fuse,
            faults,
            ..fcsched::SchedPolicy::default()
        },
    };
    let tenants = characterize::daemon::demo_tenants();
    eprintln!(
        "serving {} tenant(s) for {} tick(s) on {} chip(s), {} backend ...",
        tenants.len(),
        cfg.knobs.ticks,
        fleet.len(),
        cfg.policy.backend
    );
    let obs = daemon_obs(trace_path.is_some(), metrics_path.as_deref());
    let profiling = trace_path.is_some() || metrics_path.is_some();
    let mut prof = fcobs::SelfProfiler::new();
    let start = std::time::Instant::now();
    let outcome = prof.stage("session", || {
        fcserve::daemon::run_live_obs(&fleet, &cost, &cfg, &tenants, obs)
    });
    let (mut log, report, obs) = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("daemon session failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall = start.elapsed().as_secs_f64();
    // Wall-clock throughput is machine-dependent: stderr only. The
    // deterministic counterpart (modeled jobs per modeled second) is
    // in the daemon-summary table and the health snapshots.
    eprintln!(
        "session done in {:.3}s wall ({:.0} jobs/s wall; the report carries \
         modeled throughput instead)",
        wall,
        report.totals.completed as f64 / wall.max(1e-9),
    );
    let tables = prof.stage("render", || characterize::daemon::tables(&report));
    for t in &tables {
        println!("{}", t.render());
    }
    if !write_obs_artifacts(obs, trace_path.as_deref(), metrics_path.as_deref()) {
        return ExitCode::FAILURE;
    }
    if profiling {
        // Wall-clock stage times stay on stderr, mirroring the
        // jobs/s convention: they never reach deterministic output.
        eprint!("{}", prof.summary());
    }
    if let Some(out) = record_path {
        // The log needs the fleet/cost identity a replay rebuilds
        // from; the engine cannot know the CLI paths, so fill them
        // here before writing.
        log.module = module.clone();
        log.costs = costs_path.clone();
        if let Err(e) = std::fs::write(&out, log.to_json()) {
            eprintln!("failed to write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {out} ({} event(s); replay with `characterize daemon --replay {out}`)",
            log.events.len()
        );
    }
    if let Some(out) = json_path {
        if let Err(e) = std::fs::write(&out, to_json(&tables)) {
            eprintln!("failed to write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}

/// The `trace` subcommand: offline analysis of a recorded Chrome
/// trace — hottest (op, N) shapes, per-chip utilization, per-tenant
/// queue waits.
fn run_trace_cli(args: Vec<String>) -> ExitCode {
    let mut input: Option<String> = None;
    let mut top = 10usize;
    let mut json_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--input" => match str_arg(&mut it, "--input") {
                Some(p) => input = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--top" => match num_arg(&mut it, "--top") {
                Some(n) => top = n,
                None => return ExitCode::FAILURE,
            },
            "--json" => match str_arg(&mut it, "--json") {
                Some(p) => json_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown trace option '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = input else {
        eprintln!("trace needs --input TRACE.json\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match fcobs::chrome::from_chrome(&json) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{path}: not a characterize trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("analyzing {} trace event(s) from {path} ...", events.len());
    let tables = characterize::trace::tables(&events, top.max(1));
    for t in &tables {
        println!("{}", t.render());
    }
    if let Some(out) = json_path {
        if let Err(e) = std::fs::write(&out, to_json(&tables)) {
            eprintln!("failed to write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}

/// The `synth` subcommand: compile an expression or truth table with
/// the reliability-aware mapper and report (optionally execute) it.
fn run_synth_cli(args: Vec<String>) -> ExitCode {
    let mut common = CommonFlags::default();
    let mut expr_text: Option<String> = None;
    let mut table_text: Option<String> = None;
    let mut costs_path: Option<String> = None;
    let mut asm_path: Option<String> = None;
    let mut fan_in = 16usize;
    let mut lanes = 256usize;
    let mut execute = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--expr" => match str_arg(&mut it, "--expr") {
                Some(e) => expr_text = Some(e),
                None => return ExitCode::FAILURE,
            },
            "--table" => match str_arg(&mut it, "--table") {
                Some(t) => table_text = Some(t),
                None => return ExitCode::FAILURE,
            },
            "--costs" => match str_arg(&mut it, "--costs") {
                Some(p) => costs_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--asm" => match str_arg(&mut it, "--asm") {
                Some(p) => asm_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--fan-in" => match num_arg(&mut it, "--fan-in") {
                Some(n) => fan_in = n,
                None => return ExitCode::FAILURE,
            },
            "--lanes" => match num_arg(&mut it, "--lanes") {
                Some(n) => lanes = n,
                None => return ExitCode::FAILURE,
            },
            "--execute" => execute = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => match common.accept(other, &mut it) {
                Common::Consumed => {}
                Common::Failed => return ExitCode::FAILURE,
                Common::Unrecognized => {
                    eprintln!("unknown synth option '{other}'\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if !common.check_applies("synth", &["--backend", "--seed", "--fuse"]) {
        return ExitCode::FAILURE;
    }
    let backend = common.backend;
    let expr = match (expr_text, table_text) {
        (Some(e), None) => fcsynth::Expr::parse(&e),
        (None, Some(t)) => fcsynth::Expr::parse_truth_table(&t),
        _ => {
            eprintln!("synth needs exactly one of --expr or --table\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let expr = match expr {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cost = match &costs_path {
        Some(path) => {
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("failed to read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match fcsynth::CostModel::from_json(&json) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => fcsynth::CostModel::table1_defaults(),
    };
    let compiled = fcsynth::compile_expr(expr, &cost, fan_in);
    let naive = fcsynth::Mapper::naive(&cost).map(&compiled.circuit);
    let m = &compiled.mapping;
    println!(
        "inputs: {} ({})",
        compiled.circuit.inputs().len(),
        compiled.circuit.inputs().join(", ")
    );
    println!(
        "cost model: {} ({} entries)",
        cost.data().source,
        cost.data().entries.len()
    );
    println!(
        "optimized DAG: {} logic node(s)",
        compiled.circuit.live_ops()
    );
    println!("chosen mapping (fan-in limit {fan_in}):");
    for (op, width, count) in m.gate_summary() {
        println!("  {count:>4} x {op}{width}");
    }
    println!(
        "native ops:        {:>10}  (naive 2-input tree: {})",
        m.native_ops, naive.native_ops
    );
    println!(
        "expected success:  {:>9.4}%  (naive 2-input tree: {:.4}%)",
        m.expected_success * 100.0,
        naive.expected_success * 100.0
    );
    println!("latency:           {:>8.1} ns", m.latency_ns);
    println!("energy:            {:>8.1} pJ", m.energy_pj);
    if let Some(path) = asm_path {
        let emitter = fcsynth::BenderEmitter::default();
        match emitter.emit_asm(&m.program) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, &text) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "wrote {path} ({} lines of bender asm)",
                    text.lines().count()
                );
            }
            Err(e) => {
                eprintln!("asm emission failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if execute {
        let n = compiled.circuit.inputs().len();
        // XORing the seed into the fixed operand key keeps the default
        // (--seed 0) draws byte-identical to the historical ones.
        let op_key = 0x5E17 ^ common.seed;
        let operands_for = |lanes: usize| -> Vec<fcdram::PackedBits> {
            (0..n)
                .map(|i| {
                    let mut p = fcdram::PackedBits::zeros(lanes);
                    for l in 0..lanes {
                        p.set(
                            l,
                            dram_core::math::mix3(op_key, i as u64, l as u64) & 1 == 1,
                        );
                    }
                    p
                })
                .collect()
        };
        // A constant expression has no operands; the reference is the
        // folded constant splatted across the lanes.
        let expect_for = |operands: &[fcdram::PackedBits], lanes: usize| {
            if n == 0 {
                fcdram::PackedBits::splat(compiled.expr.eval(&[]), lanes)
            } else {
                compiled.circuit.eval_packed(operands)
            }
        };
        match backend {
            fcexec::BackendKind::Vm => {
                use fcexec::ExecBackend;
                use simdram::{HostSubstrate, SimdVm};
                let capacity = (m.program.n_regs + n + 8).max(64);
                let mut vm = match SimdVm::new(HostSubstrate::new(lanes, capacity)) {
                    Ok(vm) => vm,
                    Err(e) => {
                        eprintln!("vm setup failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let operands = operands_for(lanes);
                let expect = expect_for(&operands, lanes);
                let mut prep = match vm.prepare(&m.program) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("prepare failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                prep.set_fuse(common.fuse);
                match vm.run_prepared(&prep, &operands, |_, _| {}) {
                    Ok(got) if got == expect => {
                        println!(
                            "executed on SimdVm<HostSubstrate>: {lanes} lanes, bit-exact vs \
                             reference"
                        );
                    }
                    Ok(got) => {
                        eprintln!(
                            "MISMATCH vs reference evaluator: {}/{} lanes agree",
                            got.count_matches(&expect),
                            lanes
                        );
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("execution failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            fcexec::BackendKind::Bender => {
                use fcexec::ExecBackend;
                // The device's lane count is its shared column half:
                // size the simulated part so it covers --lanes.
                let cfg = dram_core::config::table1()
                    .remove(0)
                    .with_modeled_cols((2 * lanes).max(16));
                let name = cfg.name.clone();
                let mut be = match fcexec::BenderBackend::from_config(cfg) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("bender backend setup failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let dev_lanes = be.lanes();
                let operands = operands_for(dev_lanes);
                let expect = expect_for(&operands, dev_lanes);
                let schedule_ns: f64 = m
                    .program
                    .steps
                    .iter()
                    .map(|s| be.step_latency_ns(s).unwrap_or(0.0))
                    .sum();
                let mut prep = match be.prepare(&m.program) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("prepare failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                prep.set_fuse(common.fuse);
                match be.run_prepared(&prep, &operands, |_, _| {}) {
                    Ok(got) => {
                        println!(
                            "executed as {} combined command schedule(s) on simulated {name}: \
                             {}/{dev_lanes} lanes match the reference ({:.1}%), \
                             {schedule_ns:.0} ns cycle-accurate schedule latency",
                            be.native_ops(),
                            got.count_matches(&expect),
                            100.0 * got.count_matches(&expect) as f64 / dev_lanes.max(1) as f64,
                        );
                    }
                    Err(e) => {
                        eprintln!("command-schedule execution failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fleet") {
        return run_fleet_cli(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("synth") {
        return run_synth_cli(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("serve") {
        return run_serve_cli(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("daemon") {
        return run_daemon_cli(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("trace") {
        return run_trace_cli(args.split_off(1));
    }
    let mut ids: Vec<String> = Vec::new();
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json requires a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
    }
    for id in &ids {
        if !ALL_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment '{id}'\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    let scale = if quick {
        Scale::quick()
    } else {
        Scale::standard()
    };
    eprintln!(
        "building fleet: 22 modules at {} columns/row, map budget {} pairs ...",
        scale.cols, scale.map_budget
    );
    let mut fleet = build_fleet(&scale, false);
    eprintln!(
        "fleet ready ({} modules). running: {}",
        fleet.len(),
        ids.join(", ")
    );

    let mut tables = Vec::new();
    for id in &ids {
        eprintln!("running {id} ...");
        match run_experiment(id, &mut fleet, &scale) {
            Some(t) => {
                println!("{}", t.render());
                tables.push(t);
            }
            None => unreachable!("ids validated above"),
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, to_json(&tables)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
