//! CLI entry point: regenerate the paper's tables and figures.

use characterize::experiments::{run_experiment, ALL_IDS};
use characterize::report::to_json;
use characterize::runner::{build_fleet, Scale};
use std::process::ExitCode;

const USAGE: &str = "\
usage: characterize [EXPERIMENT...] [--quick] [--json PATH]

EXPERIMENT  one or more of: table1 fig5 fig7 fig8 fig9 fig10 fig11
            fig12 fig15 fig16 fig17 fig18 fig19 fig20 fig21
            capabilities all
            (default: all)
--quick     reduced scale (fast; used by tests and benches)
--json PATH additionally write results as JSON
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json requires a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
    }
    for id in &ids {
        if !ALL_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment '{id}'\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    let scale = if quick {
        Scale::quick()
    } else {
        Scale::standard()
    };
    eprintln!(
        "building fleet: 22 modules at {} columns/row, map budget {} pairs ...",
        scale.cols, scale.map_budget
    );
    let mut fleet = build_fleet(&scale, false);
    eprintln!(
        "fleet ready ({} modules). running: {}",
        fleet.len(),
        ids.join(", ")
    );

    let mut tables = Vec::new();
    for id in &ids {
        eprintln!("running {id} ...");
        match run_experiment(id, &mut fleet, &scale) {
            Some(t) => {
                println!("{}", t.render());
                tables.push(t);
            }
            None => unreachable!("ids validated above"),
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, to_json(&tables)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
