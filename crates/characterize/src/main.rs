//! CLI entry point: regenerate the paper's tables and figures.

use characterize::experiments::{run_experiment, ALL_IDS};
use characterize::report::to_json;
use characterize::runner::{build_fleet, Scale};
use characterize::sweep::{run_fleet_sweep, SweepConfig};
use dram_core::FleetConfig;
use std::process::ExitCode;

const USAGE: &str = "\
usage: characterize [EXPERIMENT...] [--quick] [--json PATH]
       characterize fleet [--chips N] [--shards K] [--seed S]
                          [--module NAME] [--quick] [--json PATH]

EXPERIMENT  one or more of: table1 fig5 fig7 fig8 fig9 fig10 fig11
            fig12 fig15 fig16 fig17 fig18 fig19 fig20 fig21
            capabilities all
            (default: all)
--quick     reduced scale (fast; used by tests and benches)
--json PATH additionally write results as JSON

fleet mode sweeps a seeded population of simulated chips (drawn
round-robin from Table 1, or from one --module) over the experiment
grid, sharded across worker threads, and reports population
success-rate distributions with per-chip attribution:
--chips N   fleet size (default 16)
--shards K  worker threads (default: one per CPU)
--seed S    reseed the whole population (default 0 = Table-1 chips)
--module M  draw every chip from module M (e.g. hynix-4Gb-M-2666-#0)
";

/// Takes the next argument as a string, printing a diagnostic when it
/// is missing.
fn str_arg(it: &mut impl Iterator<Item = String>, flag: &str) -> Option<String> {
    let v = it.next();
    if v.is_none() {
        eprintln!("{flag} requires a value\n{USAGE}");
    }
    v
}

/// Parses the next argument as a number, printing a diagnostic when it
/// is missing or malformed.
fn num_arg<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> Option<T> {
    let Some(v) = it.next() else {
        eprintln!("{flag} requires a value\n{USAGE}");
        return None;
    };
    match v.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("{flag}: invalid value '{v}'\n{USAGE}");
            None
        }
    }
}

fn run_fleet_cli(args: Vec<String>) -> ExitCode {
    let mut chips = 16usize;
    let mut shards = 0usize;
    let mut seed = 0u64;
    let mut module: Option<String> = None;
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--chips" => match num_arg(&mut it, "--chips") {
                Some(n) => chips = n,
                None => return ExitCode::FAILURE,
            },
            "--shards" => match num_arg(&mut it, "--shards") {
                Some(n) => shards = n,
                None => return ExitCode::FAILURE,
            },
            "--seed" => match num_arg(&mut it, "--seed") {
                Some(n) => seed = n,
                None => return ExitCode::FAILURE,
            },
            "--module" => match str_arg(&mut it, "--module") {
                Some(m) => module = Some(m),
                None => return ExitCode::FAILURE,
            },
            "--json" => match str_arg(&mut it, "--json") {
                Some(p) => json_path = Some(p),
                None => return ExitCode::FAILURE,
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown fleet option '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if chips == 0 {
        eprintln!("--chips must be at least 1\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let fleet = match module {
        Some(name) => {
            let all = dram_core::config::full_fleet();
            match all.into_iter().find(|m| m.name == name) {
                Some(cfg) => FleetConfig::single(cfg, chips),
                None => {
                    eprintln!("unknown module '{name}' (see `characterize table1`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => FleetConfig::table1(chips),
    }
    .with_seed(seed);
    let sweep = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::standard()
    }
    .with_shards(shards);
    eprintln!(
        "sweeping {} chips over {} worker thread(s) ...",
        fleet.len(),
        sweep.effective_workers(fleet.len())
    );
    let start = std::time::Instant::now();
    let report = run_fleet_sweep(&fleet, &sweep);
    eprintln!("fleet sweep done in {:.1}s", start.elapsed().as_secs_f64());
    let tables = report.tables();
    for t in &tables {
        println!("{}", t.render());
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, to_json(&tables)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fleet") {
        return run_fleet_cli(args.split_off(1));
    }
    let mut ids: Vec<String> = Vec::new();
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json requires a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
    }
    for id in &ids {
        if !ALL_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment '{id}'\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    let scale = if quick {
        Scale::quick()
    } else {
        Scale::standard()
    };
    eprintln!(
        "building fleet: 22 modules at {} columns/row, map budget {} pairs ...",
        scale.cols, scale.map_budget
    );
    let mut fleet = build_fleet(&scale, false);
    eprintln!(
        "fleet ready ({} modules). running: {}",
        fleet.len(),
        ids.join(", ")
    );

    let mut tables = Vec::new();
    for id in &ids {
        eprintln!("running {id} ...");
        match run_experiment(id, &mut fleet, &scale) {
            Some(t) => {
                println!("{}", t.render());
                tables.push(t);
            }
            None => unreachable!("ids validated above"),
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, to_json(&tables)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
