//! Data patterns used by the characterization experiments (§5.2, §6.2).

use dram_core::math::{hash_to_unit, mix3};
use dram_core::Bit;
use serde::{Deserialize, Serialize};

/// A row-fill data pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPattern {
    /// Every cell logic-1.
    AllOnes,
    /// Every cell logic-0.
    AllZeros,
    /// Independent uniform random bits, keyed by the seed.
    Random(u64),
    /// Alternating 0101… (used for initialization sanity checks).
    Checker,
}

impl DataPattern {
    /// Materializes the pattern as a row of `cols` bits.
    pub fn row(&self, cols: usize) -> Vec<Bit> {
        match self {
            DataPattern::AllOnes => vec![Bit::One; cols],
            DataPattern::AllZeros => vec![Bit::Zero; cols],
            DataPattern::Random(seed) => (0..cols)
                .map(|c| Bit::from(hash_to_unit(mix3(*seed, c as u64, 0xDA7A)) < 0.5))
                .collect(),
            DataPattern::Checker => (0..cols).map(|c| Bit::from(c % 2 == 1)).collect(),
        }
    }

    /// Whether every cell of the pattern holds the same value.
    pub fn is_uniform(&self) -> bool {
        matches!(self, DataPattern::AllOnes | DataPattern::AllZeros)
    }
}

/// The paper's "all-1s/0s" input family for an N-input operation: each
/// of the N rows is uniformly all-1 or all-0, enumerated by the bits of
/// `index` (there are `2^n` such patterns; §6.2).
pub fn uniform_input_set(n: usize, index: usize, cols: usize) -> Vec<Vec<Bit>> {
    (0..n)
        .map(|i| {
            if (index >> i) & 1 == 1 {
                DataPattern::AllOnes.row(cols)
            } else {
                DataPattern::AllZeros.row(cols)
            }
        })
        .collect()
}

/// N rows of independent random data (the paper's "random data
/// pattern"), keyed by `seed`.
pub fn random_input_set(n: usize, seed: u64, cols: usize) -> Vec<Vec<Bit>> {
    (0..n)
        .map(|i| DataPattern::Random(mix3(seed, i as u64, 0x1217)).row(cols))
        .collect()
}

/// An input set with exactly `m` all-1 rows and `n − m` all-0 rows
/// (Fig. 16's number-of-logic-1s experiment, which varies per-column
/// input weight using uniform rows).
pub fn weighted_input_set(n: usize, m: usize, cols: usize) -> Vec<Vec<Bit>> {
    assert!(m <= n, "m ({m}) must not exceed n ({n})");
    (0..n)
        .map(|i| {
            if i < m {
                DataPattern::AllOnes.row(cols)
            } else {
                DataPattern::AllZeros.row(cols)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_patterns() {
        assert!(DataPattern::AllOnes.row(4).iter().all(|b| *b == Bit::One));
        assert!(DataPattern::AllZeros.row(4).iter().all(|b| *b == Bit::Zero));
        assert_eq!(
            DataPattern::Checker.row(4),
            vec![Bit::Zero, Bit::One, Bit::Zero, Bit::One]
        );
    }

    #[test]
    fn random_is_deterministic_and_balanced() {
        let a = DataPattern::Random(7).row(2000);
        let b = DataPattern::Random(7).row(2000);
        assert_eq!(a, b);
        let ones = a.iter().filter(|b| **b == Bit::One).count();
        assert!((800..1200).contains(&ones), "{ones}");
        assert_ne!(a, DataPattern::Random(8).row(2000));
    }

    #[test]
    fn uniformity_flag() {
        assert!(DataPattern::AllOnes.is_uniform());
        assert!(!DataPattern::Random(1).is_uniform());
        assert!(!DataPattern::Checker.is_uniform());
    }

    #[test]
    fn uniform_set_enumerates_combinations() {
        let set = uniform_input_set(2, 0b01, 4);
        assert!(set[0].iter().all(|b| *b == Bit::One));
        assert!(set[1].iter().all(|b| *b == Bit::Zero));
        let set = uniform_input_set(2, 0b10, 4);
        assert!(set[0].iter().all(|b| *b == Bit::Zero));
        assert!(set[1].iter().all(|b| *b == Bit::One));
    }

    #[test]
    fn weighted_set_counts_ones() {
        for m in 0..=4usize {
            let set = weighted_input_set(4, m, 8);
            let ones = set.iter().filter(|r| r[0] == Bit::One).count();
            assert_eq!(ones, m);
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn weighted_set_validates() {
        let _ = weighted_input_set(2, 3, 4);
    }
}
