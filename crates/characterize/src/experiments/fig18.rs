//! Fig. 18: data-pattern dependence — all-1s/0s row patterns vs.
//! random data.

use crate::patterns::uniform_input_set;
use crate::report::{Row, Table};
use crate::runner::{run_logic, run_logic_random, ModuleCtx, Scale};
use crate::stats::mean;
use dram_core::{LogicOp, Manufacturer};

/// Paper penalties (points lost by random vs all-1s/0s patterns).
pub const PAPER_PENALTY: [(LogicOp, f64); 4] = [
    (LogicOp::And, 1.43),
    (LogicOp::Nand, 1.39),
    (LogicOp::Or, 1.98),
    (LogicOp::Nor, 1.97),
];

/// Mean success under the uniform all-1s/0s family for one op and
/// input count.
fn uniform_mean(fleet: &mut [ModuleCtx], op: LogicOp, n: usize) -> Option<f64> {
    let mut vals = Vec::new();
    for ctx in fleet.iter_mut() {
        if ctx.cfg.manufacturer != Manufacturer::SkHynix || ctx.cfg.max_op_inputs() < n {
            continue;
        }
        let Some(entry) = ctx.map.find_nn(n).cloned() else {
            continue;
        };
        let cols = ctx.cfg.geometry().cols();
        // Enumerate all 2^n uniform combinations for small n; for
        // larger n draw combinations uniformly (hash-based) so extreme
        // patterns appear at their fair 2^-n rates.
        let combos: Vec<usize> = if n <= 4 {
            (0..(1usize << n)).collect()
        } else {
            (0..16u64)
                .map(|i| (dram_core::math::mix3(0x18C0, i, n as u64) % (1u64 << n)) as usize)
                .collect()
        };
        for index in combos {
            let inputs = uniform_input_set(n, index, cols);
            if let Ok(recs) = run_logic(ctx, &entry, op, &inputs) {
                vals.extend(recs.iter().map(|r| r.p * 100.0));
            }
        }
    }
    if vals.is_empty() {
        None
    } else {
        Some(mean(&vals))
    }
}

/// Mean success under random patterns for one op and input count.
fn random_mean(fleet: &mut [ModuleCtx], scale: &Scale, op: LogicOp, n: usize) -> Option<f64> {
    let mut vals = Vec::new();
    for (mi, ctx) in fleet.iter_mut().enumerate() {
        if ctx.cfg.manufacturer != Manufacturer::SkHynix || ctx.cfg.max_op_inputs() < n {
            continue;
        }
        let seed = dram_core::math::mix3(0xF18, mi as u64, n as u64 + op as u64 * 31);
        if let Ok(recs) = run_logic_random(ctx, op, n, scale.input_draws, seed) {
            vals.extend(recs.iter().map(|r| r.p * 100.0));
        }
    }
    if vals.is_empty() {
        None
    } else {
        Some(mean(&vals))
    }
}

/// Regenerates Fig. 18: rows are ops, columns alternate
/// uniform/random means per input count, plus the average penalty.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let counts = [2usize, 4, 8];
    let mut headers = Vec::new();
    for n in counts {
        headers.push(format!("{n}-in unif"));
        headers.push(format!("{n}-in rand"));
    }
    headers.push("avg penalty".to_string());
    let mut t = Table::new(
        "fig18",
        "Data-pattern dependence: all-1s/0s vs random (%)",
        "op",
        headers,
    );
    for op in LogicOp::ALL {
        let mut values = Vec::new();
        let mut penalties = Vec::new();
        for n in counts {
            let u = uniform_mean(fleet, op, n);
            let r = random_mean(fleet, scale, op, n);
            // The penalty average uses only the fully-enumerated input
            // counts (n ≤ 4): sampled uniform combinations at larger n
            // add worst-case-pattern noise unrelated to coupling.
            if n <= 4 {
                if let (Some(u), Some(r)) = (u, r) {
                    penalties.push(u - r);
                }
            }
            values.push(u);
            values.push(r);
        }
        values.push(if penalties.is_empty() {
            None
        } else {
            Some(mean(&penalties))
        });
        t.push_row(Row::opt(op.name().to_uppercase(), values));
    }
    t.note("paper penalties (random vs all-1s/0s): AND 1.43, NAND 1.39, OR 1.98, NOR 1.97 points (Observation 16)");
    t.note("note: the uniform family includes the worst-case all-1s/all-0s patterns, so its mean also reflects Fig. 16's extremes");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;

    #[test]
    fn coupling_penalty_exists_for_interior_counts() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        // Compare at n=4 where the uniform family is fully enumerated:
        // uniform and random share the same binomial pattern mix, so
        // the difference is exactly the coupling bonus.
        let u = uniform_mean(&mut fleet, LogicOp::Or, 4).unwrap();
        let r = random_mean(&mut fleet, &scale, LogicOp::Or, 4).unwrap();
        assert!(u > r - 1.0, "uniform {u} should not trail random {r}");
    }

    #[test]
    fn table_has_all_ops() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        assert_eq!(t.rows.len(), 4);
        assert!(t
            .rows
            .iter()
            .all(|r| r.values.iter().flatten().count() >= 4));
    }
}
