//! Fig. 7: NOT success rate vs. number of destination rows.

use crate::experiments::{not_records, DEST_ROWS};
use crate::report::{Row, Table};
use crate::runner::{ModuleCtx, Scale};
use crate::stats::BoxStats;

/// Paper average success rates (percent) per destination-row count.
pub const PAPER_MEANS: [(usize, f64); 2] = [(1, 98.37), (32, 7.95)];

/// Regenerates Fig. 7.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let recs = not_records(fleet, scale, &DEST_ROWS);
    let mut t = Table::new(
        "fig7",
        "NOT success rate vs destination rows (%)",
        "dest rows",
        vec![
            "mean".into(),
            "min".into(),
            "q1".into(),
            "median".into(),
            "q3".into(),
            "max".into(),
        ],
    );
    for d in DEST_ROWS {
        let vals: Vec<f64> = recs
            .iter()
            .filter(|r| r.dest_rows == d)
            .map(|r| r.p * 100.0)
            .collect();
        if let Some(s) = BoxStats::from_values(&vals) {
            t.push_row(Row::new(
                d.to_string(),
                vec![s.mean, s.min, s.q1, s.median, s.q3, s.max],
            ));
        } else {
            t.push_row(Row::opt(d.to_string(), vec![None; 6]));
        }
    }
    t.note("paper: 98.37% average at 1 destination row; 7.95% at 32 (Observation 4)");
    t.note("Observation 3: some cells reach (near-)100% at every destination-row count");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;

    #[test]
    fn success_declines_with_destination_rows() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        let means: Vec<f64> = t.rows.iter().filter_map(|r| r.values[0]).collect();
        assert!(means.len() >= 5, "most dest counts measured: {means:?}");
        // First (d=1) high, last measured low, overall decline.
        assert!(means[0] > 93.0, "d=1 mean {}", means[0]);
        assert!(
            *means.last().unwrap() < 40.0,
            "high-d mean {}",
            means.last().unwrap()
        );
        assert!(means.windows(2).filter(|w| w[1] <= w[0] + 1.5).count() >= means.len() - 2);
    }

    #[test]
    fn d1_matches_paper_closely() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        let d1 = t.rows[0].values[0].unwrap();
        // Mini-fleet is Hynix-heavy; expect the headline ±3 points.
        assert!((d1 - 98.37).abs() < 3.0, "d=1 {d1}");
    }
}
