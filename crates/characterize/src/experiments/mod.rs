//! One experiment per paper artifact. Each experiment consumes a
//! fleet of [`ModuleCtx`]s and produces a [`Table`] whose notes record
//! the paper-vs-measured comparison.

use crate::patterns::DataPattern;
use crate::report::Table;
use crate::runner::{run_not, ModuleCtx, NotCellRecord, Scale};
use dram_core::Manufacturer;

pub mod arith;
pub mod capabilities;
pub mod fig05;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod table1;

/// Every experiment id, in paper order (plus the extended-version
/// per-module capability inventory and the `simdram` word-arithmetic
/// extension).
pub const ALL_IDS: [&str; 17] = [
    "table1",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "capabilities",
    "arith",
];

/// Dispatches an experiment by id. Returns `None` for unknown ids.
pub fn run_experiment(id: &str, fleet: &mut [ModuleCtx], scale: &Scale) -> Option<Table> {
    Some(match id {
        "table1" => table1::run(fleet, scale),
        "fig5" => fig05::run(fleet, scale),
        "fig7" => fig07::run(fleet, scale),
        "fig8" => fig08::run(fleet, scale),
        "fig9" => fig09::run(fleet, scale),
        "fig10" => fig10::run(fleet, scale),
        "fig11" => fig11::run(fleet, scale),
        "fig12" => fig12::run(fleet, scale),
        "fig15" => fig15::run(fleet, scale),
        "fig16" => fig16::run(fleet, scale),
        "fig17" => fig17::run(fleet, scale),
        "fig18" => fig18::run(fleet, scale),
        "fig19" => fig19::run(fleet, scale),
        "fig20" => fig20::run(fleet, scale),
        "fig21" => fig21::run(fleet, scale),
        "capabilities" => capabilities::run(fleet, scale),
        "arith" => arith::run(fleet, scale),
        _ => return None,
    })
}

/// The destination-row counts tested by the NOT experiments (Fig. 7).
pub const DEST_ROWS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Collects NOT destination-cell records across the fleet for the
/// given destination-row counts. Samsung parts contribute only to
/// `dest = 1` (sequential activation); Micron parts never appear in
/// fleets (the paper analyzes them separately).
pub fn not_records(fleet: &mut [ModuleCtx], scale: &Scale, dests: &[usize]) -> Vec<NotCellRecord> {
    let mut refs: Vec<&mut ModuleCtx> = fleet.iter_mut().collect();
    not_records_for(&mut refs, scale, dests)
}

/// As [`not_records`], over an arbitrary sub-fleet.
pub fn not_records_for(
    fleet: &mut [&mut ModuleCtx],
    scale: &Scale,
    dests: &[usize],
) -> Vec<NotCellRecord> {
    let mut out = Vec::new();
    for (mi, ctx) in fleet.iter_mut().enumerate() {
        for (di, d) in dests.iter().enumerate() {
            if ctx.cfg.manufacturer == Manufacturer::Samsung && *d != 1 {
                continue;
            }
            let entries = ctx.not_entries(*d, scale);
            for (ei, entry) in entries
                .iter()
                .take(scale.execs_per_condition * 2)
                .enumerate()
            {
                let seed = dram_core::math::mix3(mi as u64, (di * 64 + ei) as u64, 0xF07);
                if let Ok(recs) = run_not(ctx, entry, DataPattern::Random(seed)) {
                    out.extend(recs);
                }
            }
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A small mixed fleet (two Hynix dies + one Samsung) for fast
    /// experiment unit tests.
    pub fn mini_fleet(scale: &Scale) -> Vec<ModuleCtx> {
        let all = dram_core::config::table1();
        let picks = [
            all.iter()
                .position(|m| m.name == "hynix-4Gb-M-2666-#0")
                .unwrap(),
            all.iter()
                .position(|m| m.name == "hynix-4Gb-A-2133-#0")
                .unwrap(),
            all.iter()
                .position(|m| m.name == "samsung-8Gb-D-2133-#0")
                .unwrap(),
        ];
        picks
            .iter()
            .map(|i| ModuleCtx::build(&all[*i], scale).unwrap())
            .collect()
    }

    #[test]
    fn dispatch_covers_all_ids() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        // Only check that dispatch resolves; individual experiments
        // have their own tests.
        assert!(run_experiment("nope", &mut fleet, &scale).is_none());
        assert!(run_experiment("table1", &mut fleet, &scale).is_some());
    }
}
