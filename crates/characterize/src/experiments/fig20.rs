//! Fig. 20: logic-operation success rates vs. DRAM speed bin.

use crate::report::{Row, Table};
use crate::runner::{run_logic_random, ModuleCtx, Scale};
use crate::stats::mean;
use dram_core::{LogicOp, Manufacturer, SpeedBin};

/// Regenerates Fig. 20: rows are (op, N), one column per speed bin.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let speeds = [SpeedBin::Mt2133, SpeedBin::Mt2400, SpeedBin::Mt2666];
    let counts = [2usize, 4, 8, 16];
    let mut t = Table::new(
        "fig20",
        "Logic success rate vs DRAM speed bin (%, SK Hynix)",
        "op-N",
        speeds.iter().map(|s| s.to_string()).collect(),
    );
    for op in LogicOp::ALL {
        for n in counts {
            let mut values: Vec<Option<f64>> = Vec::new();
            for speed in speeds {
                let mut vals = Vec::new();
                for (mi, ctx) in fleet.iter_mut().enumerate() {
                    if ctx.cfg.manufacturer != Manufacturer::SkHynix
                        || ctx.cfg.speed != speed
                        || ctx.cfg.max_op_inputs() < n
                    {
                        continue;
                    }
                    let seed = dram_core::math::mix3(0xF20, mi as u64, n as u64 + op as u64 * 13);
                    if let Ok(recs) = run_logic_random(ctx, op, n, scale.input_draws, seed) {
                        vals.extend(recs.iter().map(|r| r.p * 100.0));
                    }
                }
                values.push(if vals.is_empty() {
                    None
                } else {
                    Some(mean(&vals))
                });
            }
            t.push_row(Row::opt(
                format!("{}-{n}", op.name().to_uppercase()),
                values,
            ));
        }
    }
    t.note("paper: 4-input NAND drops 29.89 points from 2133→2400 MT/s (Observation 18); the fleet-mean constraint of Fig. 15 caps the expressible dip at ≈15–25 points (see EXPERIMENTS.md)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::build_fleet;

    #[test]
    fn speed_2400_dips_for_nand4() {
        let scale = Scale::quick();
        let mut fleet = build_fleet(&scale, true);
        let t = run(&mut fleet, &scale);
        let row = t.rows.iter().find(|r| r.label == "NAND-4").unwrap();
        let (s2133, s2400) = (row.values[0].unwrap(), row.values[1].unwrap());
        assert!(s2133 - s2400 > 8.0, "2133 {s2133} vs 2400 {s2400}");
        // OR-family ops are less speed-sensitive.
        let or_row = t.rows.iter().find(|r| r.label == "OR-4").unwrap();
        let or_dip = or_row.values[0].unwrap() - or_row.values[1].unwrap();
        assert!(or_dip < s2133 - s2400, "OR dip {or_dip}");
    }
}
