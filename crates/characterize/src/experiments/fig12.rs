//! Fig. 12: NOT success rate (one destination row) across chip
//! densities and die revisions of both manufacturers.

use crate::experiments::not_records_for;
use crate::report::{Row, Table};
use crate::runner::{ModuleCtx, Scale};
use crate::stats::mean;
use dram_core::{Density, DieRevision, Manufacturer};

/// The density/die groups the paper plots.
pub const GROUPS: [(&str, Manufacturer, Density, DieRevision); 7] = [
    (
        "Hynix 4Gb A",
        Manufacturer::SkHynix,
        Density::Gb4,
        DieRevision::A,
    ),
    (
        "Hynix 4Gb M",
        Manufacturer::SkHynix,
        Density::Gb4,
        DieRevision::M,
    ),
    (
        "Hynix 8Gb A",
        Manufacturer::SkHynix,
        Density::Gb8,
        DieRevision::A,
    ),
    (
        "Hynix 8Gb M",
        Manufacturer::SkHynix,
        Density::Gb8,
        DieRevision::M,
    ),
    (
        "Samsung 4Gb F",
        Manufacturer::Samsung,
        Density::Gb4,
        DieRevision::F,
    ),
    (
        "Samsung 8Gb A",
        Manufacturer::Samsung,
        Density::Gb8,
        DieRevision::A,
    ),
    (
        "Samsung 8Gb D",
        Manufacturer::Samsung,
        Density::Gb8,
        DieRevision::D,
    ),
];

/// Regenerates Fig. 12 (one destination row).
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig12",
        "NOT success rate by density and die revision, 1 destination row (%)",
        "group",
        vec!["mean".into(), "cells".into()],
    );
    for (label, mfr, density, die) in GROUPS {
        let mut group: Vec<&mut ModuleCtx> = fleet
            .iter_mut()
            .filter(|c| c.cfg.manufacturer == mfr && c.cfg.density == density && c.cfg.die == die)
            .collect();
        if group.is_empty() {
            t.push_row(Row::opt(label, vec![None, Some(0.0)]));
            continue;
        }
        let recs = not_records_for(&mut group, scale, &[1]);
        let vals: Vec<f64> = recs.iter().map(|r| r.p * 100.0).collect();
        if vals.is_empty() {
            t.push_row(Row::opt(label, vec![None, Some(0.0)]));
        } else {
            t.push_row(Row::new(label, vec![mean(&vals), vals.len() as f64]));
        }
    }
    t.note(
        "paper: Hynix 8Gb M → 8Gb A drops 8.05 points; Samsung A → D drops 11.02 (Observation 9)",
    );
    t.note("near the 1-destination ceiling the model compresses die gaps; ranking is preserved (see EXPERIMENTS.md)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::build_fleet;

    #[test]
    fn die_revision_ranking_matches_paper() {
        let scale = Scale::quick();
        let mut fleet = build_fleet(&scale, false);
        let t = run(&mut fleet, &scale);
        let get = |label: &str| -> Option<f64> {
            t.rows
                .iter()
                .find(|r| r.label == label)
                .and_then(|r| r.values[0])
        };
        let m8 = get("Hynix 8Gb M").unwrap();
        let a8 = get("Hynix 8Gb A").unwrap();
        assert!(m8 > a8, "Hynix 8Gb M {m8} must beat 8Gb A {a8}");
        let sa = get("Samsung 8Gb A").unwrap();
        let sd = get("Samsung 8Gb D").unwrap();
        assert!(sa > sd, "Samsung A {sa} must beat D {sd}");
    }
}
