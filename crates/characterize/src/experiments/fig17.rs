//! Fig. 17(a–d): logic-operation success rates by the distance of the
//! activated compute and reference rows to the shared sense
//! amplifiers.

use crate::patterns::random_input_set;
use crate::report::{Row, Table};
use crate::runner::{run_logic, LogicCellRecord, ModuleCtx, Scale};
use crate::stats::mean;
use dram_core::{DistanceRegion, LogicOp, Manufacturer};

/// Regenerates Fig. 17: rows are (compute region × reference region)
/// buckets, one column per operation, aggregated over input counts.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig17",
        "Logic success rate by distance of activated rows to shared sense amps (%)",
        "com-ref regions",
        LogicOp::ALL
            .iter()
            .map(|o| o.name().to_uppercase())
            .collect(),
    );
    // Collect per-op records across N ∈ {2,4,8} (16 merges whole
    // sections and blurs the row-region signal). Multiple entries per
    // shape are executed so the addressed rows cover all nine
    // (compute region × reference region) buckets.
    let mut per_op: Vec<Vec<LogicCellRecord>> = vec![Vec::new(); 4];
    for (oi, op) in LogicOp::ALL.iter().enumerate() {
        for (mi, ctx) in fleet.iter_mut().enumerate() {
            if ctx.cfg.manufacturer != Manufacturer::SkHynix {
                continue;
            }
            for n in [2usize, 4, 8] {
                let entries: Vec<_> = ctx
                    .map
                    .find(n, n)
                    .iter()
                    .take(scale.entries_per_shape.max(4))
                    .cloned()
                    .collect();
                for (ei, entry) in entries.iter().enumerate() {
                    let seed =
                        dram_core::math::mix3(0xF17, mi as u64, (n * 64 + oi * 16 + ei) as u64);
                    let inputs = random_input_set(n, seed, ctx.cfg.geometry().cols());
                    if let Ok(recs) = run_logic(ctx, entry, *op, &inputs) {
                        per_op[oi].extend(recs);
                    }
                }
            }
        }
    }
    let mut spreads = Vec::new();
    for com in DistanceRegion::ALL {
        for refr in DistanceRegion::ALL {
            let mut values = Vec::new();
            for (oi, op) in LogicOp::ALL.iter().enumerate() {
                // For AND/OR the record's own region is the compute
                // row; for NAND/NOR it is the reference row.
                let vals: Vec<f64> = per_op[oi]
                    .iter()
                    .filter(|r| {
                        let (c, f) = if op.is_inverted_terminal() {
                            (r.other_region, r.own_region)
                        } else {
                            (r.own_region, r.other_region)
                        };
                        c == com && f == refr
                    })
                    .map(|r| r.p * 100.0)
                    .collect();
                values.push(if vals.is_empty() {
                    None
                } else {
                    Some(mean(&vals))
                });
            }
            t.push_row(Row::opt(format!("{com}-{refr}"), values));
        }
    }
    for oi in 0..4 {
        let col: Vec<f64> = t.rows.iter().filter_map(|r| r.values[oi]).collect();
        if !col.is_empty() {
            let spread = col.iter().cloned().fold(f64::MIN, f64::max)
                - col.iter().cloned().fold(f64::MAX, f64::min);
            spreads.push(format!("{}: {spread:.2}", LogicOp::ALL[oi].name()));
        }
    }
    t.note(format!("max−min spread per op: {} (paper: 23.36 AND / 23.70 NAND / 10.42 OR / 10.50 NOR; Observation 15)", spreads.join(", ")));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;

    #[test]
    fn distance_matters_more_for_and_than_or() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        let spread = |col: usize| -> f64 {
            let vals: Vec<f64> = t.rows.iter().filter_map(|r| r.values[col]).collect();
            vals.iter().cloned().fold(f64::MIN, f64::max)
                - vals.iter().cloned().fold(f64::MAX, f64::min)
        };
        let and = spread(0);
        let or = spread(2);
        assert!(and > 5.0, "AND spread {and}");
        assert!(and > or, "AND spread {and} should exceed OR spread {or}");
    }
}
