//! Fig. 11: NOT success rate vs. DRAM speed bin.

use crate::experiments::DEST_ROWS;
use crate::report::{Row, Table};
use crate::runner::{ModuleCtx, Scale};
use crate::stats::mean;
use dram_core::{Manufacturer, SpeedBin};

/// Regenerates Fig. 11: rows are destination-row counts, one column
/// per SK Hynix speed bin.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let speeds = [SpeedBin::Mt2133, SpeedBin::Mt2400, SpeedBin::Mt2666];
    let mut t = Table::new(
        "fig11",
        "NOT success rate vs DRAM speed bin (%, SK Hynix)",
        "dest rows",
        speeds.iter().map(|s| s.to_string()).collect(),
    );
    // Collect per speed group separately so module membership is clean.
    let mut per_speed: Vec<Vec<(usize, f64)>> = vec![Vec::new(); speeds.len()];
    for (si, speed) in speeds.iter().enumerate() {
        let mut group: Vec<&mut ModuleCtx> = fleet
            .iter_mut()
            .filter(|c| c.cfg.manufacturer == Manufacturer::SkHynix && c.cfg.speed == *speed)
            .collect();
        // Borrow dance: run the shared collector over the sub-slice.
        let recs = crate::experiments::not_records_for(&mut group, scale, &DEST_ROWS);
        per_speed[si] = recs.iter().map(|r| (r.dest_rows, r.p * 100.0)).collect();
    }
    for d in DEST_ROWS {
        let values: Vec<Option<f64>> = per_speed
            .iter()
            .map(|recs| {
                let vals: Vec<f64> = recs
                    .iter()
                    .filter(|(dd, _)| *dd == d)
                    .map(|(_, p)| *p)
                    .collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(mean(&vals))
                }
            })
            .collect();
        t.push_row(Row::opt(d.to_string(), values));
    }
    t.note("paper: 4-dest NOT drops 20.06 points from 2133→2400 MT/s and recovers +19.76 at 2666 (Observation 8)");
    t.note("speed is confounded with die revision in the fleet, exactly as in the paper's Table 1");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::build_fleet;

    #[test]
    fn speed_2400_dips_and_2666_recovers() {
        let scale = Scale::quick();
        // Need modules of all three speeds: build the Hynix fleet.
        let mut fleet = build_fleet(&scale, true);
        let t = run(&mut fleet, &scale);
        // At 4 destination rows (row index 2): 2133 > 2400, 2666 > 2400.
        let row = &t.rows[2];
        let (s2133, s2400, s2666) = (
            row.values[0].unwrap(),
            row.values[1].unwrap(),
            row.values[2].unwrap(),
        );
        assert!(s2133 > s2400 + 3.0, "2133 {s2133} vs 2400 {s2400}");
        assert!(s2666 > s2400 + 3.0, "2666 {s2666} vs 2400 {s2400}");
    }
}
