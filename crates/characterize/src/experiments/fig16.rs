//! Fig. 16: success rate of AND and OR operations vs. the number of
//! logic-1s among the input operands (4- and 16-input).

use crate::patterns::weighted_input_set;
use crate::report::{Row, Table};
use crate::runner::{run_logic, ModuleCtx, Scale};
use crate::stats::mean;
use dram_core::{LogicOp, Manufacturer};

/// Mean success (percent) for `op` with exactly `m` of `n` inputs set
/// to all-1 rows, over the capable Hynix sub-fleet.
pub fn weighted_mean(
    fleet: &mut [ModuleCtx],
    _scale: &Scale,
    op: LogicOp,
    n: usize,
    m: usize,
) -> Option<f64> {
    let mut vals = Vec::new();
    for ctx in fleet.iter_mut() {
        if ctx.cfg.manufacturer != Manufacturer::SkHynix || ctx.cfg.max_op_inputs() < n {
            continue;
        }
        let Some(entry) = ctx.map.find_nn(n).cloned() else {
            continue;
        };
        let inputs = weighted_input_set(n, m, ctx.cfg.geometry().cols());
        if let Ok(recs) = run_logic(ctx, &entry, op, &inputs) {
            vals.extend(recs.iter().map(|r| r.p * 100.0));
        }
    }
    if vals.is_empty() {
        None
    } else {
        Some(mean(&vals))
    }
}

/// Regenerates Fig. 16: rows are (op, N) pairs, columns the number of
/// logic-1s (0..=16; `-` where m > N).
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let configs = [
        (LogicOp::And, 4),
        (LogicOp::And, 16),
        (LogicOp::Or, 4),
        (LogicOp::Or, 16),
    ];
    let max_m = 16usize;
    let mut t = Table::new(
        "fig16",
        "AND/OR success rate vs number of logic-1s in the inputs (%)",
        "op",
        (0..=max_m).map(|m| format!("m={m}")).collect(),
    );
    for (op, n) in configs {
        let values: Vec<Option<f64>> = (0..=max_m)
            .map(|m| {
                if m <= n {
                    weighted_mean(fleet, scale, op, n, m)
                } else {
                    None
                }
            })
            .collect();
        t.push_row(Row::opt(
            format!("{}-{n}", op.name().to_uppercase()),
            values,
        ));
    }
    t.note("paper: 16-input AND drops 52.43 points from m=0 to m=15; 4-input AND drops 45.43 from m=0 to m=4 (Observation 14)");
    t.note("paper: 16-input OR drops 53.66 points from m=16 to m=1; 4-input OR drops 21.46 from m=4 to m=0");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;

    #[test]
    fn and_worst_cases_are_all_ones_and_one_zero() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        let and4: Vec<f64> = t.rows[0].values[..5].iter().map(|v| v.unwrap()).collect();
        // m=0 is comfortable, m=4 (all ones) collapses.
        assert!(and4[0] > 85.0, "AND-4 m=0: {}", and4[0]);
        assert!(
            and4[0] - and4[4] > 30.0,
            "AND-4 drop {} → {}",
            and4[0],
            and4[4]
        );
        // m=3 (one zero) is also clearly degraded vs m=0.
        assert!(and4[0] - and4[3] > 3.0, "AND-4 m=3 {}", and4[3]);
        // Interior m is comfortable.
        assert!(and4[1] > 85.0);
    }

    #[test]
    fn or_worst_cases_are_all_zeros_and_one_one() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        let or4: Vec<f64> = t.rows[2].values[..5].iter().map(|v| v.unwrap()).collect();
        assert!(or4[4] > 85.0, "OR-4 m=4: {}", or4[4]);
        assert!(or4[4] - or4[0] > 10.0, "OR-4 drop {} → {}", or4[4], or4[0]);
        // The OR drop is milder than the AND drop (paper: 21 vs 45).
        let and4: Vec<f64> = t.rows[0].values[..5].iter().map(|v| v.unwrap()).collect();
        assert!((and4[0] - and4[4]) > (or4[4] - or4[0]));
    }

    #[test]
    fn sixteen_input_one_off_collapses() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        let and16 = &t.rows[1].values;
        let m0 = and16[0].unwrap();
        let m15 = and16[15].unwrap();
        assert!(m0 - m15 > 35.0, "AND-16 m=0 {m0} vs m=15 {m15}");
    }
}
