//! Per-module computational-capability inventory.
//!
//! The paper's extended version tabulates, for every tested module,
//! which operations it supports and at what width (e.g. the 8Gb M-die
//! SK Hynix module tops out at 8-input operations; Samsung parts
//! support only NOT; Micron parts support nothing). This experiment
//! regenerates that inventory from discovery alone — no prior
//! knowledge of the configuration is used beyond the module name.

use crate::patterns::DataPattern;
use crate::report::{Row, Table};
use crate::runner::{run_not, ModuleCtx, Scale};
use crate::stats::mean;

/// Regenerates the capability inventory: per module, the largest
/// discovered N:N width, the largest destination-row count, whether
/// the N:2N family exists, and the NOT success at one destination row.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let mut t = Table::new(
        "capabilities",
        "Per-module computational capability (discovered, not configured)",
        "module",
        vec![
            "max N:N".into(),
            "max dest".into(),
            "N:2N".into(),
            "coverage %".into(),
            "NOT d=1 %".into(),
        ],
    );
    for (mi, ctx) in fleet.iter_mut().enumerate() {
        let shapes = ctx.map.shapes();
        let max_nn = shapes
            .iter()
            .filter(|(f, l)| f == l)
            .map(|(_, l)| *l)
            .max()
            .unwrap_or(0);
        let max_dst = shapes.iter().map(|(_, l)| *l).max().unwrap_or(0);
        let has_n2n = shapes.iter().any(|(f, l)| *l == 2 * *f);
        let coverage = ctx.map.total_coverage() * 100.0;
        // NOT at one destination row (sequential entries cover the
        // Samsung case; Micron-like parts simply fail).
        let entries = ctx.not_entries(1, scale);
        let mut vals = Vec::new();
        for (ei, entry) in entries.iter().take(scale.execs_per_condition).enumerate() {
            let seed = dram_core::math::mix3(0xCAB, mi as u64, ei as u64);
            if let Ok(recs) = run_not(ctx, entry, DataPattern::Random(seed)) {
                vals.extend(recs.iter().map(|r| r.p * 100.0));
            }
        }
        // Fall back to a sequential probe when no 1-destination shape
        // was discovered (e.g. a map whose lightest shape is 1:2).
        if vals.is_empty() {
            let entry = ctx.sequential_entry(0);
            if let Ok(recs) = run_not(ctx, &entry, DataPattern::Random(1)) {
                vals.extend(recs.iter().map(|r| r.p * 100.0));
            }
        }
        t.push_row(
            Row::opt(
                ctx.cfg.name.clone(),
                vec![
                    Some(max_nn as f64),
                    Some(max_dst as f64),
                    Some(if has_n2n { 1.0 } else { 0.0 }),
                    Some(coverage),
                    if vals.is_empty() {
                        None
                    } else {
                        Some(mean(&vals))
                    },
                ],
            )
            .with_origin(ctx.origin()),
        );
    }
    t.note("paper (extended version): per-module capability varies — the 8Gb M-die Hynix module reaches only 8-input ops; Samsung parts do NOT only; Micron parts none");
    t.note("'N:2N' column: 1 = the module exhibits the doubled-destination family (Observation 2)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;
    use crate::runner::ModuleCtx;

    #[test]
    fn inventory_discovers_per_module_limits() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        assert_eq!(t.rows.len(), 3);
        // Hynix 4Gb M: full capability.
        let hynix = &t.rows[0];
        assert_eq!(hynix.values[0], Some(16.0), "max N:N");
        assert_eq!(hynix.values[2], Some(1.0), "has N:2N");
        assert!(hynix.values[4].unwrap() > 90.0, "NOT works");
        // Samsung: no shapes, but sequential NOT works.
        let samsung = t
            .rows
            .iter()
            .find(|r| r.label.starts_with("samsung"))
            .unwrap();
        assert_eq!(samsung.values[0], Some(0.0));
        assert!(samsung.values[4].unwrap() > 80.0, "sequential NOT");
    }

    #[test]
    fn merge_limited_module_reports_8() {
        let scale = Scale::quick();
        let all = dram_core::config::table1();
        let cfg = all
            .iter()
            .find(|m| m.name == "hynix-8Gb-M-2666-#0")
            .unwrap();
        let mut fleet = vec![ModuleCtx::build(cfg, &scale).unwrap()];
        let t = run(&mut fleet, &scale);
        assert_eq!(t.rows[0].values[0], Some(8.0), "8Gb M caps at 8:8");
    }
}
