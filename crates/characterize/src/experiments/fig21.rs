//! Fig. 21: logic-operation success rates across SK Hynix chip
//! densities and die revisions.

use crate::report::{Row, Table};
use crate::runner::{run_logic_random, ModuleCtx, Scale};
use crate::stats::mean;
use dram_core::{Density, DieRevision, LogicOp, Manufacturer, SpeedBin};

/// The Hynix density/die groups the paper plots.
pub const GROUPS: [(&str, Density, DieRevision); 4] = [
    ("4Gb A", Density::Gb4, DieRevision::A),
    ("4Gb M", Density::Gb4, DieRevision::M),
    ("8Gb A", Density::Gb8, DieRevision::A),
    ("8Gb M", Density::Gb8, DieRevision::M),
];

/// Regenerates Fig. 21: rows are (op, N), one column per die group.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let counts = [2usize, 4, 8, 16];
    let mut t = Table::new(
        "fig21",
        "Logic success rate by density and die revision (%, SK Hynix)",
        "op-N",
        GROUPS.iter().map(|(l, _, _)| l.to_string()).collect(),
    );
    for op in LogicOp::ALL {
        for n in counts {
            let mut values: Vec<Option<f64>> = Vec::new();
            for (_, density, die) in GROUPS {
                let mut vals = Vec::new();
                for (mi, ctx) in fleet.iter_mut().enumerate() {
                    // Exclude 2400 MT/s modules: Fig. 20's speed dip
                    // would otherwise confound the die comparison.
                    if ctx.cfg.manufacturer != Manufacturer::SkHynix
                        || ctx.cfg.density != density
                        || ctx.cfg.die != die
                        || ctx.cfg.max_op_inputs() < n
                        || ctx.cfg.speed == SpeedBin::Mt2400
                    {
                        continue;
                    }
                    let seed = dram_core::math::mix3(0xF21, mi as u64, n as u64 + op as u64 * 17);
                    if let Ok(recs) = run_logic_random(ctx, op, n, scale.input_draws, seed) {
                        vals.extend(recs.iter().map(|r| r.p * 100.0));
                    }
                }
                values.push(if vals.is_empty() {
                    None
                } else {
                    Some(mean(&vals))
                });
            }
            t.push_row(Row::opt(
                format!("{}-{n}", op.name().to_uppercase()),
                values,
            ));
        }
    }
    t.note("paper: 2-input AND drops 27.47 points from 4Gb A to 4Gb M; 8Gb M beats 8Gb A by 2.11 (Observation 19)");
    t.note("the 8Gb M module supports at most 8-input operations (footnote 12): 16-input cells are '-'");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::build_fleet;

    #[test]
    fn die_gaps_follow_paper_direction() {
        let scale = Scale::quick();
        let mut fleet = build_fleet(&scale, true);
        let t = run(&mut fleet, &scale);
        let and2 = t.rows.iter().find(|r| r.label == "AND-2").unwrap();
        let (a4, m4) = (and2.values[0].unwrap(), and2.values[1].unwrap());
        // Paper: 27.47 points. Near the 2-input pattern-factor ceiling
        // the model can express only a small gap (see EXPERIMENTS.md);
        // the direction must hold with margin above sampling noise.
        assert!(a4 > m4 + 1.0, "4Gb A {a4} must beat 4Gb M {m4}");
        // 8Gb M-die has no 16-input column.
        let and16 = t.rows.iter().find(|r| r.label == "AND-16").unwrap();
        assert!(and16.values[3].is_none(), "8Gb M cannot do 16-input");
        assert!(and16.values[0].is_some());
    }
}
