//! Fig. 10: NOT success rate vs. chip temperature (cells preselected
//! at >90% success at 50 °C, per the paper's methodology).

use crate::experiments::DEST_ROWS;
use crate::patterns::DataPattern;
use crate::report::{Row, Table};
use crate::runner::{run_not, ModuleCtx, Scale};
use crate::stats::mean;
use dram_core::{Manufacturer, Temperature};

/// Regenerates Fig. 10. Rows are destination-row counts, columns the
/// tested temperatures.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let temps = scale.temps.clone();
    let headers: Vec<String> = temps.iter().map(|t| t.to_string()).collect();
    let mut t = Table::new(
        "fig10",
        "NOT success rate vs temperature, cells preselected >90% at 50°C (%)",
        "dest rows",
        headers,
    );
    let mut max_drift = 0.0f64;
    for d in DEST_ROWS {
        // Per temperature, the mean over preselected cells.
        let mut sums = vec![Vec::new(); temps.len()];
        for (mi, ctx) in fleet.iter_mut().enumerate() {
            if ctx.cfg.manufacturer == Manufacturer::Samsung && d != 1 {
                continue;
            }
            let entries = ctx.not_entries(d, scale);
            for (ei, entry) in entries.iter().take(scale.execs_per_condition).enumerate() {
                let seed = dram_core::math::mix3(mi as u64, (d * 64 + ei) as u64, 0x7E9);
                // Baseline pass at 50 °C defines the preselection mask.
                let sim_cfg = ctx.fc.sim_config().with_temperature(Temperature::BASELINE);
                ctx.fc.configure(sim_cfg);
                let base = match run_not(ctx, entry, DataPattern::Random(seed)) {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                let mask: Vec<bool> = base.iter().map(|r| r.p > 0.90).collect();
                if !mask.iter().any(|m| *m) {
                    continue;
                }
                for (ti, temp) in temps.iter().enumerate() {
                    let sim_cfg = ctx.fc.sim_config().with_temperature(*temp);
                    ctx.fc.configure(sim_cfg);
                    if let Ok(recs) = run_not(ctx, entry, DataPattern::Random(seed)) {
                        sums[ti].extend(
                            recs.iter()
                                .zip(&mask)
                                .filter(|(_, m)| **m)
                                .map(|(r, _)| r.p * 100.0),
                        );
                    }
                }
                let sim_cfg = ctx.fc.sim_config().with_temperature(Temperature::BASELINE);
                ctx.fc.configure(sim_cfg);
            }
        }
        let means: Vec<Option<f64>> = sums
            .iter()
            .map(|v| if v.is_empty() { None } else { Some(mean(v)) })
            .collect();
        let present: Vec<f64> = means.iter().flatten().copied().collect();
        if present.len() >= 2 {
            let drift = present.iter().cloned().fold(f64::MIN, f64::max)
                - present.iter().cloned().fold(f64::MAX, f64::min);
            max_drift = max_drift.max(drift);
        }
        t.push_row(Row::opt(d.to_string(), means));
    }
    t.note(format!(
        "max drift across temperatures: {max_drift:.2} points (paper: ≤0.20% for 32 dest rows; Observation 7)"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;

    #[test]
    fn temperature_effect_is_small() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        // Drift for d=1 between 50°C and 95°C stays below 2 points.
        let row = &t.rows[0];
        let vals: Vec<f64> = row.values.iter().flatten().copied().collect();
        assert!(vals.len() >= 2);
        let drift = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(drift < 2.0, "drift {drift}");
        // Hotter never helps.
        assert!(vals[0] >= *vals.last().unwrap() - 0.05);
    }
}
