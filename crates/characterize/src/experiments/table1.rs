//! Table 1: the inventory of tested COTS DDR4 modules.

use crate::report::{Row, Table};
use crate::runner::{ModuleCtx, Scale};
use std::collections::BTreeMap;

/// Regenerates Table 1 from the fleet (grouped like the paper: one row
/// per manufacturer × die × density × organization × speed).
pub fn run(fleet: &mut [ModuleCtx], _scale: &Scale) -> Table {
    let mut groups: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    for ctx in fleet.iter() {
        let c = &ctx.cfg;
        let key = format!(
            "{} {} {}-die {} {}",
            c.manufacturer, c.density, c.die, c.org, c.speed
        );
        let e = groups.entry(key).or_insert((0, 0, c.max_op_inputs()));
        e.0 += 1;
        e.1 += c.chips;
    }
    let mut t = Table::new(
        "table1",
        "Summary of DDR4 DRAM modules tested",
        "configuration",
        vec!["#modules".into(), "#chips".into(), "max op inputs".into()],
    );
    let mut modules = 0usize;
    let mut chips = 0usize;
    for (key, (m, c, inputs)) in groups {
        modules += m;
        chips += c;
        t.push_row(Row::new(key, vec![m as f64, c as f64, inputs as f64]));
    }
    t.note(format!("total: {modules} modules / {chips} chips in fleet"));
    t.note("paper: 22 modules / 256 chips analyzed (SK Hynix + Samsung); +6 Micron modules with no observed operations".to_string());
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::build_fleet;

    #[test]
    fn full_fleet_matches_paper_counts() {
        let scale = Scale::quick();
        let mut fleet = build_fleet(&scale, false);
        let t = run(&mut fleet, &scale);
        let modules: f64 = t.rows.iter().map(|r| r.values[0].unwrap()).sum();
        let chips: f64 = t.rows.iter().map(|r| r.values[1].unwrap()).sum();
        assert_eq!(modules as usize, 22);
        assert_eq!(chips as usize, 256);
        // The 8Gb M-die Hynix group is capped at 8 inputs.
        let capped = t
            .rows
            .iter()
            .find(|r| r.label.contains("8Gb M-die"))
            .expect("8Gb M-die row");
        assert_eq!(capped.values[2], Some(8.0));
    }
}
