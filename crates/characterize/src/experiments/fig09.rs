//! Fig. 9: NOT success rate by the distance of the source and
//! destination rows to the shared sense amplifiers (3×3 heat map over
//! Close/Middle/Far tertiles, aggregated over all destination cells).

use crate::patterns::DataPattern;
use crate::report::{Row, Table};
use crate::runner::{run_not, ModuleCtx, NotCellRecord, Scale};
use crate::stats::mean;
use dram_core::{DistanceRegion, Manufacturer};

/// Collects NOT records across *every* discovered shape so all nine
/// (source region × destination region) buckets are populated.
fn region_records(fleet: &mut [ModuleCtx], per_shape: usize) -> Vec<NotCellRecord> {
    let mut recs = Vec::new();
    for (mi, ctx) in fleet.iter_mut().enumerate() {
        if ctx.cfg.manufacturer == Manufacturer::Samsung {
            continue; // single-destination parts carry no load signal
        }
        for (f, l) in ctx.map.shapes() {
            let entries: Vec<_> = ctx.map.find(f, l).iter().take(per_shape).cloned().collect();
            for (ei, entry) in entries.iter().enumerate() {
                let seed = dram_core::math::mix3(0xF09, mi as u64, (f * 64 + l + ei) as u64);
                if let Ok(r) = run_not(ctx, entry, DataPattern::Random(seed)) {
                    recs.extend(r);
                }
            }
        }
    }
    recs
}

/// Regenerates Fig. 9. Rows are source regions, columns destination
/// regions.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let recs = region_records(fleet, scale.execs_per_condition.max(2));
    let mut t = Table::new(
        "fig9",
        "NOT success rate by distance to shared sense amplifiers (%)",
        "src region",
        vec!["dst Close".into(), "dst Middle".into(), "dst Far".into()],
    );
    for src in DistanceRegion::ALL {
        let mut values = Vec::new();
        for dst in DistanceRegion::ALL {
            // Stratify by total driven rows so bucket means are not
            // biased by which load levels happened to land in them
            // (the paper's exhaustive sweeps are balanced by design).
            let loads = [2usize, 3, 4, 6, 8, 12, 16, 24, 32, 48];
            let mut strata = Vec::new();
            for k in loads {
                let vals: Vec<f64> = recs
                    .iter()
                    .filter(|r| r.src_region == src && r.dst_region == dst && r.total_rows == k)
                    .map(|r| r.p * 100.0)
                    .collect();
                if !vals.is_empty() {
                    // Weight by destination cells per trial, as the
                    // paper's per-cell aggregation does.
                    let d = k - k / 3; // approx. N_RL share of the load
                    for _ in 0..d {
                        strata.push(mean(&vals));
                    }
                }
            }
            values.push(if strata.is_empty() {
                None
            } else {
                Some(mean(&strata))
            });
        }
        t.push_row(Row::opt(src.to_string(), values));
    }
    t.note("paper: Middle-Far 85.02% (best), Far-Close 44.16% (worst); Observation 6");
    t.note("consistency note: the exact paper extremes are not jointly reachable with Fig. 7's 98.37% headline under a per-cell model; ranking and direction reproduce (see EXPERIMENTS.md)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;

    #[test]
    fn far_close_is_worst_middle_far_is_best() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        let cell = |src: usize, dst: usize| -> f64 {
            t.rows[src].values[dst].unwrap_or_else(|| panic!("empty bucket {src},{dst}"))
        };
        let far_close = cell(2, 0);
        let middle_far = cell(1, 2);
        assert!(
            middle_far > far_close + 10.0,
            "MF {middle_far} vs FC {far_close}"
        );
        // Far-Close sits in the bottom of the grid; Middle-Far at the
        // top. (Bucket compositions mix load levels, so only the
        // paper's quoted extremes are asserted tightly.)
        let grid_mean: f64 = (0..9).map(|i| cell(i / 3, i % 3)).sum::<f64>() / 9.0;
        assert!(
            far_close < grid_mean,
            "FC {far_close} vs grid mean {grid_mean}"
        );
        assert!(
            middle_far > grid_mean,
            "MF {middle_far} vs grid mean {grid_mean}"
        );
    }
}
