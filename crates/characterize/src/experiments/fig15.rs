//! Fig. 15: success rates of AND, NAND, OR, and NOR vs. the number of
//! input operands (random data patterns, SK Hynix).

use crate::report::{Row, Table};
use crate::runner::{run_logic_random, ModuleCtx, Scale};
use dram_core::{LogicOp, Manufacturer};

/// The input counts characterized by the paper.
pub const INPUT_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// Paper averages (percent) for the 2- and 16-input endpoints.
pub const PAPER_MEANS: [(LogicOp, usize, f64); 8] = [
    (LogicOp::And, 2, 84.67),
    (LogicOp::And, 16, 94.94),
    (LogicOp::Nand, 2, 85.17),
    (LogicOp::Nand, 16, 94.94),
    (LogicOp::Or, 2, 95.09),
    (LogicOp::Or, 16, 95.85),
    (LogicOp::Nor, 2, 95.49),
    (LogicOp::Nor, 16, 95.87),
];

/// Collects mean success (percent) for one op at one input count over
/// the Hynix sub-fleet; `None` if no module expresses it.
///
/// Module means are weighted by the module's chip count: the paper
/// averages over *cells across all chips*, and modules carry 8, 16, or
/// 32 chips (Table 1).
pub fn op_mean(fleet: &mut [ModuleCtx], scale: &Scale, op: LogicOp, n: usize) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (mi, ctx) in fleet.iter_mut().enumerate() {
        if ctx.cfg.manufacturer != Manufacturer::SkHynix || ctx.cfg.max_op_inputs() < n {
            continue;
        }
        // AND/NAND (and OR/NOR) share input draws: the real experiment
        // reads both terminals of the same charge-share execution.
        let family = u64::from(op.is_and_family());
        let seed = dram_core::math::mix3(mi as u64, n as u64, family);
        if let Ok(recs) = run_logic_random(ctx, op, n, scale.input_draws, seed) {
            if !recs.is_empty() {
                let m: f64 = recs.iter().map(|r| r.p * 100.0).sum::<f64>() / recs.len() as f64;
                num += m * ctx.cfg.chips as f64;
                den += ctx.cfg.chips as f64;
            }
        }
    }
    if den == 0.0 {
        None
    } else {
        Some(num / den)
    }
}

/// Regenerates Fig. 15: rows are operations, columns input counts.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig15",
        "Logic operation success rate vs input count (%, random patterns)",
        "op",
        INPUT_COUNTS.iter().map(|n| format!("{n}-input")).collect(),
    );
    for op in LogicOp::ALL {
        let values: Vec<Option<f64>> = INPUT_COUNTS
            .iter()
            .map(|n| op_mean(fleet, scale, op, *n))
            .collect();
        t.push_row(Row::opt(op.name().to_uppercase(), values));
    }
    t.note("paper: 16-input AND/NAND/OR/NOR at 94.94/94.94/95.85/95.87% (Observation 10)");
    t.note("paper: success increases with inputs (Obs. 11); OR-family beats AND-family, by 10.4 points at 2 inputs (Obs. 12); AND≈NAND, OR≈NOR (Obs. 13)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;

    #[test]
    fn fig15_qualitative_relations_on_mini_fleet() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        let get = |op: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r.label == op).unwrap().values[col].unwrap()
        };
        // Observation 12: OR >> AND at 2 inputs.
        assert!(get("OR", 0) - get("AND", 0) > 4.0);
        // Observation 11: AND grows with inputs.
        assert!(get("AND", 3) > get("AND", 0) + 4.0);
        // Observation 13: NAND tracks AND (mini-fleet sampling noise
        // allows a few points; the full-fleet test is tighter).
        assert!((get("NAND", 0) - get("AND", 0)).abs() < 4.5);
    }

    #[test]
    fn fig15_absolute_means_on_full_hynix_fleet() {
        // The paper's averages are fleet means including the
        // 2400 MT/s modules; only the full Hynix fleet reproduces them.
        let scale = Scale::quick();
        let mut fleet = crate::runner::build_fleet(&scale, true);
        let and16 = op_mean(&mut fleet, &scale, LogicOp::And, 16).unwrap();
        let or16 = op_mean(&mut fleet, &scale, LogicOp::Or, 16).unwrap();
        let and2 = op_mean(&mut fleet, &scale, LogicOp::And, 2).unwrap();
        assert!((and16 - 94.94).abs() < 3.5, "AND-16 {and16}");
        assert!((or16 - 95.85).abs() < 3.0, "OR-16 {or16}");
        assert!((and2 - 84.67).abs() < 6.0, "AND-2 {and2}");
    }
}
