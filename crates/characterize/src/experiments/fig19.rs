//! Fig. 19: logic-operation success rates vs. chip temperature.

use crate::report::{Row, Table};
use crate::runner::{run_logic_random, ModuleCtx, Scale};
use crate::stats::mean;
use dram_core::{LogicOp, Manufacturer, Temperature};

/// Regenerates Fig. 19: rows are (op, N), columns temperatures.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let temps = scale.temps.clone();
    let counts = [2usize, 16];
    let mut t = Table::new(
        "fig19",
        "Logic success rate vs temperature (%)",
        "op-N",
        temps.iter().map(|x| x.to_string()).collect(),
    );
    let mut max_drift = 0.0f64;
    for op in LogicOp::ALL {
        for n in counts {
            let mut values: Vec<Option<f64>> = Vec::new();
            for temp in &temps {
                let mut vals = Vec::new();
                for (mi, ctx) in fleet.iter_mut().enumerate() {
                    if ctx.cfg.manufacturer != Manufacturer::SkHynix || ctx.cfg.max_op_inputs() < n
                    {
                        continue;
                    }
                    let sim_cfg = ctx.fc.sim_config().with_temperature(*temp);
                    ctx.fc.configure(sim_cfg);
                    let seed = dram_core::math::mix3(0xF19, mi as u64, n as u64 + op as u64 * 7);
                    if let Ok(recs) = run_logic_random(ctx, op, n, scale.input_draws, seed) {
                        vals.extend(recs.iter().map(|r| r.p * 100.0));
                    }
                    let sim_cfg = ctx.fc.sim_config().with_temperature(Temperature::BASELINE);
                    ctx.fc.configure(sim_cfg);
                }
                values.push(if vals.is_empty() {
                    None
                } else {
                    Some(mean(&vals))
                });
            }
            let present: Vec<f64> = values.iter().flatten().copied().collect();
            if present.len() >= 2 {
                let drift = present.iter().cloned().fold(f64::MIN, f64::max)
                    - present.iter().cloned().fold(f64::MAX, f64::min);
                max_drift = max_drift.max(drift);
            }
            t.push_row(Row::opt(
                format!("{}-{n}", op.name().to_uppercase()),
                values,
            ));
        }
    }
    t.note(format!(
        "max drift 50→95°C: {max_drift:.2} points (paper: ≤1.66/1.65/1.63/1.64 for AND/NAND/OR/NOR; Observation 17)"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;

    #[test]
    fn temperature_effect_is_small_for_logic() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        for row in &t.rows {
            let vals: Vec<f64> = row.values.iter().flatten().copied().collect();
            if vals.len() >= 2 {
                let drift = vals.iter().cloned().fold(f64::MIN, f64::max)
                    - vals.iter().cloned().fold(f64::MAX, f64::min);
                assert!(drift < 4.0, "{}: drift {drift}", row.label);
                // Hotter never helps (within measurement noise).
                assert!(vals[0] >= *vals.last().unwrap() - 0.3, "{}", row.label);
            }
        }
    }
}
