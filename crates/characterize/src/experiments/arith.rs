//! Extension experiment: SIMDRAM-style word arithmetic on the
//! characterized gate set (`simdram` crate).
//!
//! The paper stops at demonstrating the functionally-complete gate
//! set; this experiment asks the follow-on question its §9 poses —
//! *what does computation built on those gates look like?* — by
//! synthesizing XOR (3 native gates) and a 4-bit ripple-carry adder
//! (36 native gates) on every SK Hynix part of the fleet and
//! comparing the measured lane accuracy against the analytic
//! error-propagation estimate, with and without repetition voting.
//!
//! There is no paper figure to match; the notes record the structural
//! expectations instead (deep unprotected circuits collapse, voting
//! recovers accuracy, measurement tracks the estimate).

use crate::report::{Row, Table};
use crate::runner::{ModuleCtx, Scale, BANK, PAIR};
use crate::stats::mean;
use dram_core::{ChipId, Manufacturer};
use simdram::{reliability, DramSubstrate, SimdVm};

/// Gate counts of the synthesized circuits (documented in
/// `simdram::gates`): XOR = 3, full adder = 9 per bit.
pub const XOR_GATES: usize = 3;
/// 4-bit ripple-carry adder gate count.
pub const ADD4_GATES: usize = 36;

/// Per-module measurement of one circuit.
struct CircuitResult {
    predicted: f64,
    measured: f64,
}

/// Runs one module's VM through XOR and 4-bit add at a repetition
/// factor, returning (xor, add) results as percentages.
fn run_module(
    ctx: &ModuleCtx,
    scale: &Scale,
    repetition: usize,
    salt: u64,
) -> Option<(CircuitResult, CircuitResult)> {
    let fc = fcdram::Fcdram::with_chip(
        bender::Bender::new(dram_core::DramModule::new(ctx.cfg.clone())),
        ChipId(0),
    );
    let engine =
        fcdram::BulkEngine::with_budget(fc, BANK, PAIR.0, scale.map_budget.min(4_096)).ok()?;
    let mut sub = DramSubstrate::new(engine);
    if repetition > 1 {
        sub.set_repetition(repetition);
    }
    let mut vm = SimdVm::new(sub).ok()?;
    let lanes = vm.lanes();

    // --- XOR of two masks -------------------------------------------------
    let da: Vec<bool> = (0..lanes)
        .map(|i| dram_core::math::hash_to_unit(dram_core::math::mix2(salt, i as u64)) < 0.5)
        .collect();
    let db: Vec<bool> = (0..lanes)
        .map(|i| dram_core::math::hash_to_unit(dram_core::math::mix2(salt ^ 0xA5, i as u64)) < 0.5)
        .collect();
    let a = vm.alloc_row().ok()?;
    let b = vm.alloc_row().ok()?;
    vm.write_mask(a, &da).ok()?;
    vm.write_mask(b, &db).ok()?;
    vm.clear_trace();
    let x = vm.xor(a, b).ok()?;
    let xor_pred = reliability::expected_lane_accuracy(vm.trace());
    let got = vm.read_mask(x).ok()?;
    let xor_meas = got
        .iter()
        .zip(da.iter().zip(&db))
        .filter(|(g, (x, y))| **g == (*x ^ *y))
        .count() as f64
        / lanes.max(1) as f64;
    vm.release(x);
    vm.release(a);
    vm.release(b);

    // --- 4-bit add ---------------------------------------------------------
    let av: Vec<u64> = (0..lanes as u64)
        .map(|i| dram_core::math::mix2(salt ^ 0x44, i) & 0xF)
        .collect();
    let bv: Vec<u64> = (0..lanes as u64)
        .map(|i| dram_core::math::mix2(salt ^ 0x99, i) & 0xF)
        .collect();
    let va = vm.alloc_uint(4).ok()?;
    let vb = vm.alloc_uint(4).ok()?;
    vm.write_u64(&va, &av).ok()?;
    vm.write_u64(&vb, &bv).ok()?;
    vm.clear_trace();
    let sum = vm.add(&va, &vb).ok()?;
    let add_pred = reliability::expected_lane_accuracy(vm.trace());
    let got = vm.read_u64(&sum).ok()?;
    let add_meas = got
        .iter()
        .zip(av.iter().zip(&bv))
        .filter(|(g, (x, y))| **g == (*x + *y) & 0xF)
        .count() as f64
        / lanes.max(1) as f64;

    Some((
        CircuitResult {
            predicted: xor_pred * 100.0,
            measured: xor_meas * 100.0,
        },
        CircuitResult {
            predicted: add_pred * 100.0,
            measured: add_meas * 100.0,
        },
    ))
}

/// Regenerates the extension artifact: per-circuit predicted vs
/// measured lane accuracy, unprotected and with 5-fold voting.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let mut t = Table::new(
        "arith",
        "Extension: synthesized word arithmetic on characterized gates (%)",
        "circuit",
        vec![
            "predicted".to_string(),
            "measured".to_string(),
            "pred (k=5)".to_string(),
            "meas (k=5)".to_string(),
        ],
    );

    let mut xor1: Vec<f64> = Vec::new();
    let mut xor1m: Vec<f64> = Vec::new();
    let mut xor5: Vec<f64> = Vec::new();
    let mut xor5m: Vec<f64> = Vec::new();
    let mut add1: Vec<f64> = Vec::new();
    let mut add1m: Vec<f64> = Vec::new();
    let mut add5: Vec<f64> = Vec::new();
    let mut add5m: Vec<f64> = Vec::new();

    for (mi, ctx) in fleet.iter().enumerate() {
        if ctx.cfg.manufacturer != Manufacturer::SkHynix || ctx.cfg.max_op_inputs() < 2 {
            continue;
        }
        let salt = dram_core::math::mix2(0xA717, mi as u64);
        if let Some((x, a)) = run_module(ctx, scale, 1, salt) {
            xor1.push(x.predicted);
            xor1m.push(x.measured);
            add1.push(a.predicted);
            add1m.push(a.measured);
        }
        if let Some((x, a)) = run_module(ctx, scale, 5, salt) {
            xor5.push(x.predicted);
            xor5m.push(x.measured);
            add5.push(a.predicted);
            add5m.push(a.measured);
        }
    }

    if !xor1.is_empty() {
        t.rows.push(Row::new(
            format!("XOR ({XOR_GATES} gates)"),
            vec![mean(&xor1), mean(&xor1m), mean(&xor5), mean(&xor5m)],
        ));
    }
    if !add1.is_empty() {
        t.rows.push(Row::new(
            format!("4-bit add ({ADD4_GATES} gates)"),
            vec![mean(&add1), mean(&add1m), mean(&add5), mean(&add5m)],
        ));
    }

    t.notes.push(
        "extension (no paper figure): circuits synthesized from the \
         functionally-complete set, fleet mean over SK Hynix parts"
            .to_string(),
    );
    if !xor1.is_empty() && !add1.is_empty() {
        let xm = mean(&xor1);
        let am = mean(&add1);
        t.notes.push(format!(
            "expectation: deeper circuit → lower unprotected accuracy \
             (XOR {xm:.1}% vs 4-bit add {am:.1}%): {}",
            if xm > am { "holds ✓" } else { "VIOLATED" }
        ));
    }
    if !add5.is_empty() && !add1.is_empty() {
        let gain = mean(&add5) - mean(&add1);
        t.notes.push(format!(
            "expectation: 5-fold voting raises predicted adder accuracy \
             (Δ = {gain:+.1} pts): {}",
            if gain > 0.0 { "holds ✓" } else { "VIOLATED" }
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::build_fleet;

    #[test]
    fn arith_runs_on_a_small_fleet() {
        let scale = Scale::quick();
        let mut fleet = build_fleet(&scale, true);
        fleet.truncate(2);
        let t = run(&mut fleet, &scale);
        assert_eq!(t.rows.len(), 2, "XOR and 4-bit add rows");
        for row in &t.rows {
            for v in row.values.iter().flatten() {
                assert!((0.0..=100.0).contains(v), "{} out of range: {v}", row.label);
            }
        }
        // Voting must not lower the predicted accuracy.
        let add = &t.rows[1];
        assert!(add.values[2].unwrap() + 1e-9 >= add.values[0].unwrap());
    }
}
