//! Fig. 8: NOT success rate vs. `N_RF:N_RL` activation type
//! (the N:2N family beats N:N at equal destination-row counts).

use crate::experiments::not_records;
use crate::report::{Row, Table};
use crate::runner::{ModuleCtx, Scale};
use crate::stats::mean;
use dram_core::PatternKind;

/// Regenerates Fig. 8.
pub fn run(fleet: &mut [ModuleCtx], scale: &Scale) -> Table {
    let recs = not_records(fleet, scale, &[1, 2, 4, 8, 16, 32]);
    let mut t = Table::new(
        "fig8",
        "NOT success rate vs N_RF:N_RL activation type (%)",
        "type",
        vec!["mean".into(), "cells".into()],
    );
    let shapes: [(usize, usize); 10] = [
        (1, 1),
        (1, 2),
        (2, 2),
        (2, 4),
        (4, 4),
        (4, 8),
        (8, 8),
        (8, 16),
        (16, 16),
        (16, 32),
    ];
    let mut nn_means = Vec::new();
    let mut n2n_means = Vec::new();
    for (n_rf, n_rl) in shapes {
        let kind = if n_rl == 2 * n_rf {
            PatternKind::N2N
        } else {
            PatternKind::NN
        };
        let vals: Vec<f64> = recs
            .iter()
            .filter(|r| r.total_rows == n_rf + n_rl && r.dest_rows == n_rl && r.kind == kind)
            .map(|r| r.p * 100.0)
            .collect();
        if vals.is_empty() {
            t.push_row(Row::opt(format!("{n_rf}:{n_rl}"), vec![None, Some(0.0)]));
            continue;
        }
        let m = mean(&vals);
        t.push_row(Row::new(
            format!("{n_rf}:{n_rl}"),
            vec![m, vals.len() as f64],
        ));
        // Pair up at matching destination counts d ∈ {2,4,8,16}.
        if (2..=16).contains(&n_rl) {
            if kind == PatternKind::N2N {
                n2n_means.push(m);
            } else if n_rf == n_rl {
                nn_means.push(m);
            }
        }
    }
    if !nn_means.is_empty() && !n2n_means.is_empty() {
        let gap = mean(&n2n_means) - mean(&nn_means);
        t.note(format!(
            "N:2N − N:N average gap at matching destination counts: {gap:+.2} points (paper: +9.41%)"
        ));
    }
    t.note("Observation 5: N:2N drives fewer total rows for the same destination count, so it succeeds more often");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;

    #[test]
    fn n2n_beats_nn() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        let get = |label: &str| -> Option<f64> {
            t.rows
                .iter()
                .find(|r| r.label == label)
                .and_then(|r| r.values[0])
        };
        // At 16 destination rows: 8:16 (24 driven) vs 16:16 (32 driven).
        if let (Some(n2n), Some(nn)) = (get("8:16"), get("16:16")) {
            assert!(n2n > nn, "8:16 {n2n} must beat 16:16 {nn}");
        }
        // The note quantifies the average gap.
        assert!(t.notes.iter().any(|n| n.contains("N:2N")), "{:?}", t.notes);
    }
}
