//! Fig. 5: coverage of each `N_RF:N_RL` activation type across tested
//! `(R_F, R_L)` address pairs.

use crate::report::{Row, Table};
use crate::runner::{ModuleCtx, Scale};
use crate::stats::BoxStats;
use dram_core::{Manufacturer, PatternKind};

/// The activation shapes the paper reports, with its measured average
/// coverage (percent) for comparison.
pub const PAPER_COVERAGE: [((usize, usize), f64); 10] = [
    ((1, 1), 0.23),
    ((1, 2), 0.15),
    ((2, 2), 2.60),
    ((2, 4), 1.53),
    ((4, 4), 11.58),
    ((4, 8), 5.42),
    ((8, 8), 24.52),
    ((8, 16), 7.95),
    ((16, 16), 24.35),
    ((16, 32), 3.82),
];

/// Regenerates Fig. 5: per-shape coverage distribution across SK Hynix
/// modules (box statistics over modules).
pub fn run(fleet: &mut [ModuleCtx], _scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig5",
        "Coverage of N_RF:N_RL activation types (%)",
        "type",
        vec![
            "mean".into(),
            "min".into(),
            "q1".into(),
            "median".into(),
            "q3".into(),
            "max".into(),
            "paper mean".into(),
        ],
    );
    let hynix: Vec<&ModuleCtx> = fleet
        .iter()
        .filter(|c| c.cfg.manufacturer == Manufacturer::SkHynix)
        .collect();
    let mut totals = Vec::new();
    for ((n_rf, n_rl), paper) in PAPER_COVERAGE {
        let kind = if n_rl == 2 * n_rf {
            PatternKind::N2N
        } else {
            PatternKind::NN
        };
        let per_module: Vec<f64> = hynix
            .iter()
            .map(|ctx| {
                ctx.map
                    .coverage()
                    .iter()
                    .find(|r| r.n_rf == n_rf && r.n_rl == n_rl && r.kind == kind)
                    .map(|r| r.coverage * 100.0)
                    .unwrap_or(0.0)
            })
            .collect();
        let s = BoxStats::from_values(&per_module).expect("hynix fleet non-empty");
        t.push_row(Row::new(
            format!("{n_rf}:{n_rl}"),
            vec![s.mean, s.min, s.q1, s.median, s.q3, s.max, paper],
        ));
    }
    for ctx in &hynix {
        totals.push(ctx.map.total_coverage() * 100.0);
    }
    let total = BoxStats::from_values(&totals).expect("non-empty");
    t.note(format!(
        "total simultaneous-activation coverage: mean {:.2}% (paper: ≈82.15% summed over types)",
        total.mean
    ));
    t.note("Observation 1: COTS DRAM chips can simultaneously activate multiple rows in two neighboring subarrays");
    t.note("Observation 2: two families, N:N and N:2N, up to 48 rows (16:32)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::mini_fleet;

    #[test]
    fn coverage_shapes_match_paper_ranking() {
        let scale = Scale::quick();
        let mut fleet = mini_fleet(&scale);
        let t = run(&mut fleet, &scale);
        assert_eq!(t.rows.len(), 10);
        let get = |label: &str| -> f64 {
            t.rows.iter().find(|r| r.label == label).unwrap().values[0].unwrap()
        };
        // 8:8 and 16:16 dominate, as in the paper.
        assert!(get("8:8") > get("2:2"));
        assert!(get("16:16") > get("4:8"));
        assert!(get("1:1") < 2.0);
        // Means are within a few points of the paper's values.
        for row in &t.rows {
            let mean = row.values[0].unwrap();
            let paper = row.values[6].unwrap();
            assert!(
                (mean - paper).abs() < 6.0,
                "{}: {mean} vs paper {paper}",
                row.label
            );
        }
    }
}
