//! Program execution: turning cycle-timed command streams into the
//! device model's semantic operations by inspecting inter-command gaps.
//!
//! This is the behavioural core of the infrastructure: it recognizes
//! the paper's violated-timing idioms —
//!
//! * `ACT → (tRAS ok) → PRE → (tRP violated) → ACT` ⇒ driven
//!   copy/invert (`multi_act_copy`, NOT / RowClone);
//! * `ACT → (tRAS violated) → PRE → (tRP violated) → ACT` ⇒
//!   charge-sharing merge (`multi_act_charge_share`, AND/OR/NAND/NOR);
//! * `ACT → (frac window) → PRE` ⇒ fractional store (`frac`);
//!
//! and falls back to ordinary DDR4 semantics otherwise.

use crate::error::{BenderError, Result};
use crate::program::{DdrCommand, Program, ProgramBuilder, TimedCommand};
use dram_core::{
    BankId, Bit, ChipId, CsTerminal, DramModule, GlobalRow, OpOutcome, OutcomeKind, SpeedBin,
    Temperature, TimingParams, ViolationWindows,
};

/// One captured `RD` result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRecord {
    /// Bank the read addressed.
    pub bank: BankId,
    /// Row the read addressed.
    pub row: GlobalRow,
    /// Captured data.
    pub data: Vec<Bit>,
}

/// Everything a program execution produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Execution {
    /// Semantic operation outcomes, tagged with the index of the
    /// command (the second `ACT` or the `PRE` of a frac) that
    /// completed them.
    pub outcomes: Vec<(usize, OpOutcome)>,
    /// Captured reads in program order.
    pub reads: Vec<ReadRecord>,
}

impl Execution {
    /// The first outcome whose kind is not `NoGlitch`/`Ignored`, if any.
    pub fn primary_outcome(&self) -> Option<&OpOutcome> {
        self.outcomes
            .iter()
            .map(|(_, o)| o)
            .find(|o| !matches!(o.kind, OutcomeKind::NoGlitch | OutcomeKind::Ignored))
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankTracker {
    last_act: Option<(u64, GlobalRow)>,
    pending_pre: Option<u64>,
    open: bool,
}

/// The testing infrastructure: a module under test plus the host-side
/// programming interface (the analogue of DRAM Bender on its FPGA
/// board, including the temperature controller).
#[derive(Debug, Clone)]
pub struct Bender {
    module: DramModule,
    timing: TimingParams,
    windows: ViolationWindows,
    temperature: Temperature,
    /// One-shot terminal mask consumed by the next charge-share the
    /// executor recognizes (set via [`Bender::charge_share_masked`]).
    cs_mask: Option<CsTerminal>,
}

impl Bender {
    /// Attaches the infrastructure to a module.
    pub fn new(module: DramModule) -> Self {
        Bender {
            module,
            timing: TimingParams::default(),
            windows: ViolationWindows::default(),
            temperature: Temperature::BASELINE,
            cs_mask: None,
        }
    }

    /// The module under test.
    pub fn module(&self) -> &DramModule {
        &self.module
    }

    /// Mutable access to the module under test.
    pub fn module_mut(&mut self) -> &mut DramModule {
        &mut self.module
    }

    /// The module's speed bin.
    pub fn speed(&self) -> SpeedBin {
        self.module.config().speed
    }

    /// The manufacturer-recommended timing parameters in force.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The violated-timing windows the executor recognizes.
    pub fn windows(&self) -> &ViolationWindows {
        &self.windows
    }

    /// Sets the target temperature (heater pads + controller).
    pub fn set_temperature(&mut self, t: Temperature) {
        self.temperature = t;
    }

    /// Current target temperature.
    pub fn temperature(&self) -> Temperature {
        self.temperature
    }

    /// A program builder matched to this module's speed bin.
    pub fn builder(&self) -> ProgramBuilder {
        ProgramBuilder::new(self.speed())
    }

    /// Arms a one-shot terminal mask: the next charge share the
    /// executor recognizes (in any program) resolves only `need`'s
    /// terminal. Cleared when consumed or at the next `execute`.
    pub fn arm_cs_mask(&mut self, need: CsTerminal) {
        self.cs_mask = Some(need);
    }

    /// Executes `program` against chip `chip` of the module.
    ///
    /// # Errors
    ///
    /// Returns [`BenderError::NoSuchChip`] for bad chip indices and
    /// [`BenderError::BadProgram`] / [`BenderError::Device`] for
    /// command-order violations.
    pub fn execute(&mut self, chip: ChipId, program: &Program) -> Result<Execution> {
        if chip.index() >= self.module.chip_count() {
            return Err(BenderError::NoSuchChip {
                chip: chip.index(),
                chips: self.module.chip_count(),
            });
        }
        let speed = self.speed();
        let temp = self.temperature;
        let mut pending_mask = self.cs_mask.take();
        let dev = self.module.chip_mut(chip);
        let sim_cfg = dev.sim_config().with_temperature(temp);
        dev.configure(sim_cfg);
        let banks = dev.geometry().banks();
        let mut trackers = vec![BankTracker::default(); banks];
        let mut exec = Execution::default();

        for (idx, TimedCommand { cycle, command }) in program.commands().iter().enumerate() {
            match command {
                DdrCommand::Act(bank, row) => {
                    let b = bank.index();
                    if b >= banks {
                        return Err(BenderError::BadProgram {
                            index: idx,
                            detail: format!("bank {bank} out of range"),
                        });
                    }
                    let t = trackers[b];
                    if let (Some(cp), Some((_ca, rf))) = (t.pending_pre, t.last_act) {
                        let gap_pre_act = speed.cycles_to_ns(cycle.saturating_sub(cp));
                        if gap_pre_act < self.windows.multi_act_t_rp_ns {
                            // Violated tRP: multi-row activation. The
                            // first gap decides copy vs charge share.
                            let (ca, _) = t.last_act.expect("checked");
                            let gap_act_pre = speed.cycles_to_ns(cp.saturating_sub(ca));
                            let outcome = if gap_act_pre <= self.windows.charge_share_t_ras_ns {
                                match pending_mask.take() {
                                    Some(need) => {
                                        dev.multi_act_charge_share_masked(*bank, rf, *row, need)?
                                    }
                                    None => dev.multi_act_charge_share(*bank, rf, *row)?,
                                }
                            } else {
                                // Restored (or mostly restored) source:
                                // driven copy / NOT.
                                dev.multi_act_copy(*bank, rf, *row)?
                            };
                            let ignored = outcome.kind == OutcomeKind::Ignored;
                            trackers[b].pending_pre = None;
                            trackers[b].open = true;
                            if !ignored {
                                trackers[b].last_act = Some((*cycle, *row));
                            }
                            exec.outcomes.push((idx, outcome));
                            continue;
                        }
                        // Respected tRP: the precharge completed.
                        dev.precharge(*bank)?;
                        trackers[b].pending_pre = None;
                        trackers[b].open = false;
                    } else if let Some(_cp) = t.pending_pre {
                        dev.precharge(*bank)?;
                        trackers[b].pending_pre = None;
                        trackers[b].open = false;
                    }
                    dev.activate(*bank, *row)?;
                    trackers[b].open = true;
                    trackers[b].last_act = Some((*cycle, *row));
                }
                DdrCommand::Pre(bank) => {
                    let b = bank.index();
                    if b >= banks {
                        return Err(BenderError::BadProgram {
                            index: idx,
                            detail: format!("bank {bank} out of range"),
                        });
                    }
                    let t = trackers[b];
                    if !t.open {
                        continue; // PRE on a precharged bank is a no-op
                    }
                    if let Some(cp) = t.pending_pre {
                        // Two PREs without an ACT: finalize the first.
                        let _ = cp;
                        dev.precharge(*bank)?;
                        trackers[b] = BankTracker::default();
                        continue;
                    }
                    if let Some((ca, row)) = t.last_act {
                        let gap = speed.cycles_to_ns(cycle.saturating_sub(ca));
                        let single_open = dev.geometry().check_bank(*bank).is_ok();
                        if self.windows.in_frac_window(gap) && single_open {
                            // Interrupted restore: fractional store.
                            let outcome = dev.frac(*bank, row)?;
                            exec.outcomes.push((idx, outcome));
                            trackers[b] = BankTracker::default();
                            continue;
                        }
                    }
                    trackers[b].pending_pre = Some(*cycle);
                }
                DdrCommand::Wr(bank, data) => {
                    let b = bank.index();
                    if let Some(_cp) = trackers[b].pending_pre {
                        dev.precharge(*bank)?;
                        trackers[b].pending_pre = None;
                        trackers[b].open = false;
                    }
                    if !trackers[b].open {
                        return Err(BenderError::BadProgram {
                            index: idx,
                            detail: "WR with no open row".into(),
                        });
                    }
                    dev.write_open(*bank, data)?;
                }
                DdrCommand::Rd(bank, row) => {
                    let b = bank.index();
                    if let Some(_cp) = trackers[b].pending_pre {
                        dev.precharge(*bank)?;
                        trackers[b].pending_pre = None;
                        trackers[b].open = false;
                    }
                    if !trackers[b].open {
                        return Err(BenderError::BadProgram {
                            index: idx,
                            detail: "RD with no open row".into(),
                        });
                    }
                    let data = dev.read_row_direct(*bank, *row)?;
                    exec.reads.push(ReadRecord {
                        bank: *bank,
                        row: *row,
                        data,
                    });
                }
                DdrCommand::Ref => {
                    // Refresh: modeled as a brief time passage.
                    dev.advance_time(350.0);
                }
            }
        }

        // Finalize dangling precharges so the chip ends consistent.
        for (b, t) in trackers.iter().enumerate() {
            if t.pending_pre.is_some() && t.open {
                dev.precharge(BankId(b))?;
            }
        }
        Ok(exec)
    }

    // -----------------------------------------------------------------
    // Host convenience operations (command-accurate under the hood)
    // -----------------------------------------------------------------

    /// Writes a full row through a timing-respecting program.
    pub fn write_row(
        &mut self,
        chip: ChipId,
        bank: BankId,
        row: GlobalRow,
        data: Vec<Bit>,
    ) -> Result<()> {
        let mut b = self.builder();
        b.seq_write_row(bank, row, data);
        let p = b.finish();
        self.execute(chip, &p)?;
        Ok(())
    }

    /// Reads a full row through a timing-respecting program.
    pub fn read_row(&mut self, chip: ChipId, bank: BankId, row: GlobalRow) -> Result<Vec<Bit>> {
        let mut b = self.builder();
        b.seq_read_row(bank, row);
        let p = b.finish();
        let exec = self.execute(chip, &p)?;
        exec.reads
            .into_iter()
            .next()
            .map(|r| r.data)
            .ok_or_else(|| BenderError::BadProgram {
                index: 0,
                detail: "read produced no data".into(),
            })
    }

    /// Reads every `step`-th column of a row starting at `start`,
    /// packed 64 lanes per `u64` word — the fast-path read used by the
    /// bulk engine (see [`dram_core::Chip::read_row_packed`]).
    ///
    /// The command sequence is the same timing-respecting
    /// activate/read/precharge as [`Bender::read_row`]; only the
    /// host-side representation differs.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or an open bank.
    pub fn read_row_packed(
        &mut self,
        chip: ChipId,
        bank: BankId,
        row: GlobalRow,
        start: usize,
        step: usize,
    ) -> Result<Vec<u64>> {
        Ok(self
            .module_mut()
            .chip_mut(chip)
            .read_row_packed(bank, row, start, step)?)
    }

    /// Runs the NOT / RowClone sequence and returns its outcome.
    pub fn copy_invert(
        &mut self,
        chip: ChipId,
        bank: BankId,
        src: GlobalRow,
        dst: GlobalRow,
    ) -> Result<OpOutcome> {
        let mut b = self.builder();
        b.seq_copy_invert(bank, src, dst);
        let p = b.finish();
        let exec = self.execute(chip, &p)?;
        exec.outcomes
            .into_iter()
            .map(|(_, o)| o)
            .next()
            .ok_or_else(|| BenderError::BadProgram {
                index: 0,
                detail: "no outcome".into(),
            })
    }

    /// Runs the charge-sharing sequence and returns its outcome.
    pub fn charge_share(
        &mut self,
        chip: ChipId,
        bank: BankId,
        r_ref: GlobalRow,
        r_com: GlobalRow,
    ) -> Result<OpOutcome> {
        let mut b = self.builder();
        b.seq_charge_share(bank, r_ref, r_com);
        let p = b.finish();
        let exec = self.execute(chip, &p)?;
        exec.outcomes
            .into_iter()
            .map(|(_, o)| o)
            .next()
            .ok_or_else(|| BenderError::BadProgram {
                index: 0,
                detail: "no outcome".into(),
            })
    }

    /// Runs the charge-sharing sequence resolving only `need`'s
    /// terminal (see [`dram_core::Chip::multi_act_charge_share_masked`]
    /// for the safety contract). The command stream is identical to
    /// [`Bender::charge_share`]; the mask is a host-side promise about
    /// which cells will be read back.
    pub fn charge_share_masked(
        &mut self,
        chip: ChipId,
        bank: BankId,
        r_ref: GlobalRow,
        r_com: GlobalRow,
        need: CsTerminal,
    ) -> Result<OpOutcome> {
        self.cs_mask = Some(need);
        let out = self.charge_share(chip, bank, r_ref, r_com);
        self.cs_mask = None;
        out
    }

    /// Runs the `Frac` sequence (stores ≈VDD/2 into `row`).
    pub fn frac(&mut self, chip: ChipId, bank: BankId, row: GlobalRow) -> Result<OpOutcome> {
        let mut b = self.builder();
        b.seq_frac(bank, row);
        let p = b.finish();
        let exec = self.execute(chip, &p)?;
        exec.outcomes
            .into_iter()
            .map(|(_, o)| o)
            .next()
            .ok_or_else(|| BenderError::BadProgram {
                index: 0,
                detail: "no outcome".into(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::config::table1;
    use dram_core::CellRole;

    fn bender() -> Bender {
        let cfg = table1().into_iter().next().unwrap().with_modeled_cols(32);
        Bender::new(DramModule::new(cfg))
    }

    fn bits(seed: u64, n: usize) -> Vec<Bit> {
        (0..n)
            .map(|c| {
                Bit::from(
                    dram_core::math::hash_to_unit(dram_core::math::mix2(seed, c as u64)) < 0.5,
                )
            })
            .collect()
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut b = bender();
        let data = bits(1, 32);
        b.write_row(ChipId(0), BankId(0), GlobalRow(10), data.clone())
            .unwrap();
        let got = b.read_row(ChipId(0), BankId(0), GlobalRow(10)).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn copy_invert_produces_not_outcome() {
        let mut b = bender();
        let data = bits(2, 32);
        b.write_row(ChipId(0), BankId(0), GlobalRow(0), data)
            .unwrap();
        // Scan for a glitching pair into subarray 1.
        let mut kinds = Vec::new();
        for l in 0..40usize {
            let out = b
                .copy_invert(ChipId(0), BankId(0), GlobalRow(0), GlobalRow(512 + l))
                .unwrap();
            kinds.push(out.kind.clone());
            if matches!(out.kind, OutcomeKind::Not { .. }) {
                assert!(out.mean_success(CellRole::NotDst).unwrap() > 0.4);
                return;
            }
        }
        panic!("no NOT outcome in 40 pairs: {kinds:?}");
    }

    #[test]
    fn frac_sequence_recognized() {
        let mut b = bender();
        let out = b.frac(ChipId(0), BankId(0), GlobalRow(3)).unwrap();
        assert_eq!(out.kind, OutcomeKind::Frac);
    }

    #[test]
    fn charge_share_sequence_recognized() {
        let mut b = bender();
        for l in 0..40usize {
            let out = b
                .charge_share(ChipId(0), BankId(0), GlobalRow(7), GlobalRow(512 + l))
                .unwrap();
            if matches!(out.kind, OutcomeKind::Logic { .. }) {
                return;
            }
        }
        panic!("no logic outcome in 40 pairs");
    }

    #[test]
    fn wr_without_open_row_is_rejected() {
        let mut b = bender();
        let mut pb = b.builder();
        pb.wr(BankId(0), bits(1, 32));
        let p = pb.build();
        let err = b.execute(ChipId(0), &p).unwrap_err();
        assert!(matches!(err, BenderError::BadProgram { .. }));
    }

    #[test]
    fn rd_after_pre_is_rejected() {
        let mut b = bender();
        let mut pb = b.builder();
        pb.act(BankId(0), GlobalRow(0))
            .wait_ns(35.0)
            .pre(BankId(0))
            .wait_ns(15.0)
            .rd(BankId(0), GlobalRow(0));
        let p = pb.build();
        let err = b.execute(ChipId(0), &p).unwrap_err();
        assert!(matches!(err, BenderError::BadProgram { .. }), "{err}");
    }

    #[test]
    fn no_such_chip() {
        let mut b = bender();
        let p = b.builder().build();
        let err = b.execute(ChipId(64), &p).unwrap_err();
        assert!(matches!(err, BenderError::NoSuchChip { .. }));
    }

    #[test]
    fn respected_timing_does_not_glitch() {
        let mut b = bender();
        // ACT → tRAS → PRE → tRP → ACT: plain row switch; no outcomes.
        let mut pb = b.builder();
        pb.act(BankId(0), GlobalRow(0))
            .wait_ns(35.0)
            .pre(BankId(0))
            .wait_ns(15.0)
            .act(BankId(0), GlobalRow(512))
            .wait_ns(35.0)
            .pre(BankId(0));
        let p = pb.build();
        let exec = b.execute(ChipId(0), &p).unwrap();
        assert!(exec.outcomes.is_empty());
        assert!(exec.primary_outcome().is_none());
    }

    #[test]
    fn temperature_is_propagated() {
        let mut b = bender();
        b.set_temperature(Temperature::celsius(95.0));
        let p = {
            let mut pb = b.builder();
            pb.seq_read_row(BankId(0), GlobalRow(0));
            pb.build()
        };
        b.execute(ChipId(0), &p).unwrap();
        assert_eq!(
            b.module().chip(ChipId(0)).unwrap().temperature(),
            Temperature::celsius(95.0)
        );
    }

    #[test]
    fn double_pre_without_act_is_harmless() {
        let mut b = bender();
        let mut pb = b.builder();
        pb.act(BankId(0), GlobalRow(0))
            .wait_ns(35.0)
            .pre(BankId(0))
            .wait_ns(15.0)
            .pre(BankId(0))
            .wait_ns(15.0)
            .pre(BankId(0));
        let p = pb.build();
        let exec = b.execute(ChipId(0), &p).unwrap();
        assert!(exec.outcomes.is_empty());
        // Bank must end precharged: a fresh activate succeeds.
        b.write_row(ChipId(0), BankId(0), GlobalRow(1), bits(1, 32))
            .unwrap();
    }

    #[test]
    fn dangling_pre_is_finalized_at_program_end() {
        let mut b = bender();
        let mut pb = b.builder();
        pb.act(BankId(0), GlobalRow(0)).wait_ns(35.0).pre(BankId(0));
        let p = pb.build();
        b.execute(ChipId(0), &p).unwrap();
        // The next program can activate immediately.
        let mut pb = b.builder();
        pb.seq_read_row(BankId(0), GlobalRow(0));
        let p = pb.build();
        assert!(b.execute(ChipId(0), &p).is_ok());
    }

    #[test]
    fn banks_are_independent() {
        let mut b = bender();
        let d0 = bits(10, 32);
        let d1 = bits(11, 32);
        b.write_row(ChipId(0), BankId(0), GlobalRow(5), d0.clone())
            .unwrap();
        b.write_row(ChipId(0), BankId(1), GlobalRow(5), d1.clone())
            .unwrap();
        // A violating sequence in bank 0 must not disturb bank 1.
        let _ = b
            .copy_invert(ChipId(0), BankId(0), GlobalRow(5), GlobalRow(517))
            .unwrap();
        assert_eq!(b.read_row(ChipId(0), BankId(1), GlobalRow(5)).unwrap(), d1);
        assert_eq!(b.read_row(ChipId(0), BankId(0), GlobalRow(5)).unwrap(), d0);
    }

    #[test]
    fn ref_command_is_accepted() {
        let mut b = bender();
        let mut pb = b.builder();
        pb.push(crate::DdrCommand::Ref)
            .wait_cycles(10)
            .push(crate::DdrCommand::Ref);
        let p = pb.build();
        let exec = b.execute(ChipId(0), &p).unwrap();
        assert!(exec.outcomes.is_empty());
        assert!(exec.reads.is_empty());
    }

    #[test]
    fn out_of_range_bank_rejected_with_index() {
        let mut b = bender();
        let mut pb = b.builder();
        pb.act(BankId(99), GlobalRow(0));
        let p = pb.build();
        match b.execute(ChipId(0), &p).unwrap_err() {
            BenderError::BadProgram { index, .. } => assert_eq!(index, 0),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn write_open_after_multi_activation_updates_rows() {
        // The §4.2 mapping methodology: glitch, then WR, then read back.
        let mut b = bender();
        let data = bits(5, 32);
        for l in 0..40usize {
            let dst = GlobalRow(512 + l);
            let mut pb = b.builder();
            pb.seq_write_row(BankId(0), GlobalRow(0), bits(9, 32));
            pb.act(BankId(0), GlobalRow(0))
                .wait_ns(35.0)
                .pre(BankId(0))
                .act(BankId(0), dst)
                .wait_ns(14.0)
                .wr(BankId(0), data.clone())
                .wait_ns(35.0)
                .pre(BankId(0));
            let p = pb.build();
            let exec = b.execute(ChipId(0), &p).unwrap();
            if let Some(out) = exec.primary_outcome() {
                if matches!(out.kind, OutcomeKind::Not { .. }) {
                    let got = b.read_row(ChipId(0), BankId(0), dst).unwrap();
                    assert_eq!(got, data, "WR must overdrive the destination rows");
                    return;
                }
            }
        }
        panic!("no NOT outcome found");
    }
}
