//! Cycle-timed DDR4 command programs and a builder for the paper's
//! canonical sequences.
//!
//! A [`Program`] is a list of commands pinned to clock cycles — exactly
//! what the real DRAM Bender ships to its FPGA sequencer. Timing
//! *violations* are expressed simply by placing commands closer
//! together than the datasheet allows; the executor derives the analog
//! consequences from the gaps.

use dram_core::{BankId, Bit, GlobalRow, SpeedBin, TimingParams, ViolationWindows};
use serde::{Deserialize, Serialize};

/// One DDR4 command as the infrastructure issues it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DdrCommand {
    /// Row activation.
    Act(BankId, GlobalRow),
    /// Bank precharge.
    Pre(BankId),
    /// Column write: overdrives the open row buffer with a full row of
    /// data (the paper's §4.2 methodology writes whole rows).
    Wr(BankId, Vec<Bit>),
    /// Column read of an open row; the captured data lands in the
    /// execution's read log.
    Rd(BankId, GlobalRow),
    /// Refresh (modeled as a time passage only; experiments disable
    /// refresh as the paper does).
    Ref,
}

/// A command scheduled at an absolute clock cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedCommand {
    /// Absolute cycle at which the command is issued.
    pub cycle: u64,
    /// The command.
    pub command: DdrCommand,
}

/// An executable command program.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    cmds: Vec<TimedCommand>,
}

impl Program {
    /// The scheduled commands in issue order.
    pub fn commands(&self) -> &[TimedCommand] {
        &self.cmds
    }

    /// Mutable access to the scheduled commands, so prepared-program
    /// templates can patch `Wr` payloads in a clone without rebuilding
    /// the cycle schedule (the cycles themselves must not change).
    pub fn commands_mut(&mut self) -> &mut [TimedCommand] {
        &mut self.cmds
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }

    /// Total duration in cycles (cycle of the last command).
    pub fn duration_cycles(&self) -> u64 {
        self.cmds.last().map(|c| c.cycle).unwrap_or(0)
    }
}

/// Builder for command programs, tracking a cycle cursor.
///
/// All `ns`-valued waits are converted with the target speed bin, so
/// the *same* nominal sequence produces different absolute timings on
/// 2133 vs 2666 MT/s parts — the mechanism behind the paper's
/// speed-rate sensitivity (Figs. 11 and 20).
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    speed: SpeedBin,
    timing: TimingParams,
    windows: ViolationWindows,
    cursor: u64,
    cmds: Vec<TimedCommand>,
}

impl ProgramBuilder {
    /// Creates a builder for a module of the given speed bin with
    /// default DDR4 timings.
    pub fn new(speed: SpeedBin) -> Self {
        ProgramBuilder {
            speed,
            timing: TimingParams::default(),
            windows: ViolationWindows::default(),
            cursor: 0,
            cmds: Vec::new(),
        }
    }

    /// The speed bin this program targets.
    pub fn speed(&self) -> SpeedBin {
        self.speed
    }

    /// Emits a command at the cursor and advances one cycle.
    pub fn push(&mut self, command: DdrCommand) -> &mut Self {
        self.cmds.push(TimedCommand {
            cycle: self.cursor,
            command,
        });
        self.cursor += 1;
        self
    }

    /// Advances the cursor by whole cycles.
    pub fn wait_cycles(&mut self, cycles: u64) -> &mut Self {
        self.cursor += cycles;
        self
    }

    /// Advances the cursor by at least `ns` nanoseconds.
    pub fn wait_ns(&mut self, ns: f64) -> &mut Self {
        self.cursor += self.speed.ns_to_cycles(ns);
        self
    }

    /// `ACT` at the cursor.
    pub fn act(&mut self, bank: BankId, row: GlobalRow) -> &mut Self {
        self.push(DdrCommand::Act(bank, row))
    }

    /// `PRE` at the cursor.
    pub fn pre(&mut self, bank: BankId) -> &mut Self {
        self.push(DdrCommand::Pre(bank))
    }

    /// `WR` of a full row at the cursor.
    pub fn wr(&mut self, bank: BankId, data: Vec<Bit>) -> &mut Self {
        self.push(DdrCommand::Wr(bank, data))
    }

    /// `RD` of an open row at the cursor.
    pub fn rd(&mut self, bank: BankId, row: GlobalRow) -> &mut Self {
        self.push(DdrCommand::Rd(bank, row))
    }

    // -----------------------------------------------------------------
    // Canonical paper sequences
    // -----------------------------------------------------------------

    /// Timing-respecting row write: `ACT → WR → (tRAS) → PRE → (tRP)`.
    pub fn seq_write_row(&mut self, bank: BankId, row: GlobalRow, data: Vec<Bit>) -> &mut Self {
        let (t_rcd, t_ras, t_rp) = (
            self.timing.t_rcd_ns,
            self.timing.t_ras_ns,
            self.timing.t_rp_ns,
        );
        self.act(bank, row)
            .wait_ns(t_rcd)
            .wr(bank, data)
            .wait_ns(t_ras)
            .pre(bank)
            .wait_ns(t_rp)
    }

    /// Timing-respecting row read: `ACT → RD → (tRAS) → PRE → (tRP)`.
    pub fn seq_read_row(&mut self, bank: BankId, row: GlobalRow) -> &mut Self {
        let (t_rcd, t_ras, t_rp) = (
            self.timing.t_rcd_ns,
            self.timing.t_ras_ns,
            self.timing.t_rp_ns,
        );
        self.act(bank, row)
            .wait_ns(t_rcd)
            .rd(bank, row)
            .wait_ns(t_ras)
            .pre(bank)
            .wait_ns(t_rp)
    }

    /// The NOT / RowClone sequence (§5.1):
    /// `ACT src → (tRAS) → PRE → (<3 ns) → ACT dst → (tRAS) → PRE`.
    ///
    /// The first activation fully restores the source; the violated
    /// tRP leaves the decoder latched, so the second activation merges.
    pub fn seq_copy_invert(&mut self, bank: BankId, src: GlobalRow, dst: GlobalRow) -> &mut Self {
        let (t_ras, t_rp) = (self.timing.t_ras_ns, self.timing.t_rp_ns);
        self.act(bank, src)
            .wait_ns(t_ras)
            .pre(bank)
            // One cycle ≈ 0.75–0.94 ns: well inside the <3 ns window.
            .act(bank, dst)
            .wait_ns(t_ras)
            .pre(bank)
            .wait_ns(t_rp)
    }

    /// The charge-sharing sequence (§6.1):
    /// `ACT r_ref → (<3 ns) → PRE → (<3 ns) → ACT r_com → (tRAS) → PRE`.
    ///
    /// *Both* gaps violate the datasheet: the sense amplifiers are
    /// still off when the rows merge, so bitlines charge-share and the
    /// comparator computes AND/OR (NAND/NOR on the other terminal).
    pub fn seq_charge_share(
        &mut self,
        bank: BankId,
        r_ref: GlobalRow,
        r_com: GlobalRow,
    ) -> &mut Self {
        let (t_ras, t_rp) = (self.timing.t_ras_ns, self.timing.t_rp_ns);
        self.act(bank, r_ref)
            .pre(bank)
            .act(bank, r_com)
            .wait_ns(t_ras)
            .pre(bank)
            .wait_ns(t_rp)
    }

    /// The `Frac` sequence (FracDRAM): `ACT row → (≈7 ns) → PRE`,
    /// interrupting restoration at about half charge.
    pub fn seq_frac(&mut self, bank: BankId, row: GlobalRow) -> &mut Self {
        let mid = 0.5 * (self.windows.frac_lo_ns + self.windows.frac_hi_ns);
        let t_rp = self.timing.t_rp_ns;
        self.act(bank, row).wait_ns(mid).pre(bank).wait_ns(t_rp)
    }

    /// Re-emits an already-built program at the cursor, preserving its
    /// internal cycle gaps exactly. The cursor advances one cycle past
    /// the appended program's last command, mirroring [`push`]: a
    /// sequence appended after this one sees the same gap it would have
    /// seen had both been built inline, so fused programs stay
    /// command-for-command identical to their split counterparts.
    ///
    /// [`push`]: Self::push
    pub fn append_program(&mut self, program: &Program) -> &mut Self {
        let base = self.cursor;
        for c in program.commands() {
            self.cmds.push(TimedCommand {
                cycle: base + c.cycle,
                command: c.command.clone(),
            });
        }
        self.cursor = base + program.duration_cycles() + 1;
        self
    }

    /// Commands emitted so far (the next appended command's index).
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// Whether no commands have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }

    /// Finishes the program, leaving the builder reusable.
    pub fn build(&self) -> Program {
        Program {
            cmds: self.cmds.clone(),
        }
    }

    /// Finishes the program, consuming the builder — the hot-path form:
    /// no copy of the command list (and, through it, of every staged
    /// `Wr` payload).
    pub fn finish(self) -> Program {
        Program { cmds: self.cmds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_commands_monotonically() {
        let mut b = ProgramBuilder::new(SpeedBin::Mt2666);
        b.seq_write_row(BankId(0), GlobalRow(1), vec![Bit::One; 4])
            .seq_read_row(BankId(0), GlobalRow(1));
        let p = b.build();
        let mut last = 0;
        for c in p.commands() {
            assert!(c.cycle >= last);
            last = c.cycle;
        }
        // ACT/WR/PRE + ACT/RD/PRE.
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }

    #[test]
    fn copy_invert_violates_trp_only() {
        let mut b = ProgramBuilder::new(SpeedBin::Mt2666);
        b.seq_copy_invert(BankId(0), GlobalRow(0), GlobalRow(512));
        let p = b.build();
        let cy: Vec<u64> = p.commands().iter().map(|c| c.cycle).collect();
        let t = |cycles: u64| SpeedBin::Mt2666.cycles_to_ns(cycles);
        // ACT→PRE respects tRAS.
        assert!(t(cy[1] - cy[0]) >= 32.0);
        // PRE→ACT gap is one cycle (< 3 ns).
        assert!(t(cy[2] - cy[1]) < 3.0);
        // Second ACT→PRE respects tRAS again.
        assert!(t(cy[3] - cy[2]) >= 32.0);
    }

    #[test]
    fn charge_share_violates_both_gaps() {
        let mut b = ProgramBuilder::new(SpeedBin::Mt2133);
        b.seq_charge_share(BankId(1), GlobalRow(3), GlobalRow(515));
        let p = b.build();
        let cy: Vec<u64> = p.commands().iter().map(|c| c.cycle).collect();
        let t = |cycles: u64| SpeedBin::Mt2133.cycles_to_ns(cycles);
        assert!(t(cy[1] - cy[0]) < 3.0, "ACT→PRE must violate tRAS");
        assert!(t(cy[2] - cy[1]) < 3.0, "PRE→ACT must violate tRP");
    }

    #[test]
    fn frac_gap_is_inside_window() {
        let mut b = ProgramBuilder::new(SpeedBin::Mt2666);
        b.seq_frac(BankId(0), GlobalRow(7));
        let p = b.build();
        let cy: Vec<u64> = p.commands().iter().map(|c| c.cycle).collect();
        let gap = SpeedBin::Mt2666.cycles_to_ns(cy[1] - cy[0]);
        let w = ViolationWindows::default();
        assert!(w.in_frac_window(gap), "gap {gap} ns");
    }

    #[test]
    fn wait_ns_rounds_up() {
        let mut b = ProgramBuilder::new(SpeedBin::Mt2666);
        b.act(BankId(0), GlobalRow(0)).wait_ns(1.0).pre(BankId(0));
        let p = b.build();
        // 1 ns at 0.75 ns/cycle → 2 cycles, plus the ACT's own cycle.
        assert_eq!(p.commands()[1].cycle, 3);
    }

    #[test]
    fn duration_reports_last_cycle() {
        let mut b = ProgramBuilder::new(SpeedBin::Mt2666);
        assert_eq!(b.build().duration_cycles(), 0);
        b.act(BankId(0), GlobalRow(0))
            .wait_cycles(100)
            .pre(BankId(0));
        assert_eq!(b.build().duration_cycles(), 101);
    }
}
