//! Error type for the testing infrastructure.

use dram_core::DramError;
use std::error::Error as StdError;
use std::fmt;

/// Errors raised while building or executing command programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BenderError {
    /// The underlying device model rejected a command.
    Device(DramError),
    /// A program command was issued in an order the infrastructure
    /// cannot execute (e.g. `WR` with no open bank).
    BadProgram {
        /// Position of the offending command in the program.
        index: usize,
        /// Description of the problem.
        detail: String,
    },
    /// A chip index outside the module was addressed.
    NoSuchChip {
        /// Requested chip.
        chip: usize,
        /// Number of chips on the module.
        chips: usize,
    },
}

impl fmt::Display for BenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenderError::Device(e) => write!(f, "device error: {e}"),
            BenderError::BadProgram { index, detail } => {
                write!(f, "bad program at command {index}: {detail}")
            }
            BenderError::NoSuchChip { chip, chips } => {
                write!(f, "chip {chip} out of range (module has {chips} chips)")
            }
        }
    }
}

impl StdError for BenderError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            BenderError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DramError> for BenderError {
    fn from(e: DramError) -> Self {
        BenderError::Device(e)
    }
}

/// Result alias for infrastructure operations.
pub type Result<T> = std::result::Result<T, BenderError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = BenderError::BadProgram {
            index: 3,
            detail: "WR while precharged".into(),
        };
        assert!(e.to_string().contains("command 3"));
        let e = BenderError::NoSuchChip { chip: 9, chips: 8 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn device_errors_convert() {
        let d = DramError::IllegalCommand { detail: "x".into() };
        let e: BenderError = d.clone().into();
        assert_eq!(e, BenderError::Device(d));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BenderError>();
    }
}
