//! A small assembly format for command programs.
//!
//! The real DRAM Bender ships a programming toolchain; this module
//! provides the equivalent text form so programs can be stored in
//! files, diffed, and replayed. The format is line-oriented:
//!
//! ```text
//! # NOT: src row 0 → destination rows around 512
//! ACT  0 0        ; bank 0, row 0
//! WAIT 32ns       ; respect tRAS
//! PRE  0
//! ACT  0 512      ; violated tRP (next cycle)
//! WAIT 32ns
//! PRE  0
//! RD   0 512
//! ```
//!
//! `WAIT n` advances whole cycles; `WAIT xns` advances at least `x`
//! nanoseconds at the program's speed bin. `WR` takes hex row data
//! (column 0 is the least-significant bit of the first hex digit
//! group). `#` or `;` start comments.

use crate::error::{BenderError, Result};
use crate::program::{DdrCommand, Program, ProgramBuilder, TimedCommand};
use dram_core::{BankId, Bit, GlobalRow, SpeedBin};
use std::fmt::Write as _;

/// Serializes a program to assembly text.
///
/// Absolute cycles are converted to `WAIT` gaps, so the round-trip
/// through [`parse`] reproduces the schedule exactly.
pub fn format(program: &Program) -> String {
    let mut out = String::new();
    let mut cursor = 0u64;
    for TimedCommand { cycle, command } in program.commands() {
        if *cycle > cursor {
            let _ = writeln!(out, "WAIT {}", cycle - cursor);
        }
        cursor = cycle + 1;
        match command {
            DdrCommand::Act(b, r) => {
                let _ = writeln!(out, "ACT  {} {}", b.index(), r.index());
            }
            DdrCommand::Pre(b) => {
                let _ = writeln!(out, "PRE  {}", b.index());
            }
            DdrCommand::Rd(b, r) => {
                let _ = writeln!(out, "RD   {} {}", b.index(), r.index());
            }
            DdrCommand::Wr(b, data) => {
                let _ = writeln!(out, "WR   {} {}", b.index(), bits_to_hex(data));
            }
            DdrCommand::Ref => {
                let _ = writeln!(out, "REF");
            }
        }
    }
    out
}

/// Parses assembly text into a program for the given speed bin.
///
/// # Errors
///
/// Returns [`BenderError::BadProgram`] with a line-indexed message for
/// any syntax problem.
pub fn parse(text: &str, speed: SpeedBin) -> Result<Program> {
    let mut b = ProgramBuilder::new(speed);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split(['#', ';']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().expect("non-empty line").to_ascii_uppercase();
        let bad = |detail: String| BenderError::BadProgram {
            index: lineno,
            detail,
        };
        match op.as_str() {
            "ACT" => {
                let bank = parse_usize(parts.next(), "bank", lineno)?;
                let row = parse_usize(parts.next(), "row", lineno)?;
                b.act(BankId(bank), GlobalRow(row));
            }
            "PRE" => {
                let bank = parse_usize(parts.next(), "bank", lineno)?;
                b.pre(BankId(bank));
            }
            "RD" => {
                let bank = parse_usize(parts.next(), "bank", lineno)?;
                let row = parse_usize(parts.next(), "row", lineno)?;
                b.rd(BankId(bank), GlobalRow(row));
            }
            "WR" => {
                let bank = parse_usize(parts.next(), "bank", lineno)?;
                let hex = parts
                    .next()
                    .ok_or_else(|| bad("WR needs hex data".into()))?;
                let data = hex_to_bits(hex).map_err(|e| bad(format!("bad WR data: {e}")))?;
                b.wr(BankId(bank), data);
            }
            "REF" => {
                b.push(DdrCommand::Ref);
            }
            "WAIT" => {
                let arg = parts
                    .next()
                    .ok_or_else(|| bad("WAIT needs an argument".into()))?;
                if let Some(ns) = arg.strip_suffix("ns") {
                    let ns: f64 = ns
                        .parse()
                        .map_err(|_| bad(format!("bad WAIT duration '{arg}'")))?;
                    b.wait_ns(ns);
                } else {
                    let cycles: u64 = arg
                        .parse()
                        .map_err(|_| bad(format!("bad WAIT cycle count '{arg}'")))?;
                    b.wait_cycles(cycles);
                }
            }
            other => return Err(bad(format!("unknown opcode '{other}'"))),
        }
        if parts.next().is_some() && op != "WR" {
            return Err(bad("trailing tokens".into()));
        }
    }
    Ok(b.build())
}

fn parse_usize(tok: Option<&str>, what: &str, lineno: usize) -> Result<usize> {
    tok.ok_or_else(|| BenderError::BadProgram {
        index: lineno,
        detail: format!("missing {what}"),
    })?
    .parse()
    .map_err(|_| BenderError::BadProgram {
        index: lineno,
        detail: format!("bad {what}"),
    })
}

/// Encodes a bit row as hex, 4 bits per digit, column 0 first
/// (little-endian nibbles).
pub fn bits_to_hex(bits: &[Bit]) -> String {
    let mut s = String::with_capacity(bits.len().div_ceil(4));
    for chunk in bits.chunks(4) {
        let mut v = 0u8;
        for (i, b) in chunk.iter().enumerate() {
            if b.as_bool() {
                v |= 1 << i;
            }
        }
        let _ = write!(s, "{v:x}");
    }
    s
}

/// Decodes [`bits_to_hex`] output (4 bits per hex digit).
pub fn hex_to_bits(hex: &str) -> std::result::Result<Vec<Bit>, String> {
    let mut bits = Vec::with_capacity(hex.len() * 4);
    for c in hex.chars() {
        let v = c
            .to_digit(16)
            .ok_or_else(|| format!("invalid hex digit '{c}'"))?;
        for i in 0..4 {
            bits.push(Bit::from((v >> i) & 1 == 1));
        }
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn not_program() -> Program {
        let mut b = ProgramBuilder::new(SpeedBin::Mt2666);
        b.seq_copy_invert(BankId(0), GlobalRow(0), GlobalRow(512));
        b.build()
    }

    #[test]
    fn round_trip_preserves_schedule() {
        let p = not_program();
        let text = format(&p);
        let back = parse(&text, SpeedBin::Mt2666).unwrap();
        assert_eq!(p, back, "text:\n{text}");
    }

    #[test]
    fn round_trip_with_data() {
        let mut b = ProgramBuilder::new(SpeedBin::Mt2133);
        let data: Vec<Bit> = (0..32).map(|i| Bit::from(i % 3 == 0)).collect();
        b.seq_write_row(BankId(2), GlobalRow(7), data);
        let p = b.build();
        let back = parse(&format(&p), SpeedBin::Mt2133).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\nACT 0 5 ; open row 5\n\nWAIT 44\nPRE 0\n";
        let p = parse(text, SpeedBin::Mt2666).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.commands()[1].cycle, 45);
    }

    #[test]
    fn wait_ns_respects_speed_bin() {
        let p2133 = parse("ACT 0 0\nWAIT 30ns\nPRE 0\n", SpeedBin::Mt2133).unwrap();
        let p2666 = parse("ACT 0 0\nWAIT 30ns\nPRE 0\n", SpeedBin::Mt2666).unwrap();
        // Faster clock ⇒ more cycles for the same nanoseconds.
        assert!(p2666.commands()[1].cycle > p2133.commands()[1].cycle);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("ACT 0 0\nBOGUS 1\n", SpeedBin::Mt2666).unwrap_err();
        match err {
            BenderError::BadProgram { index, detail } => {
                assert_eq!(index, 1);
                assert!(detail.contains("BOGUS"));
            }
            other => panic!("{other}"),
        }
        assert!(parse("ACT 0\n", SpeedBin::Mt2666).is_err());
        assert!(parse("WAIT xyz\n", SpeedBin::Mt2666).is_err());
        assert!(parse("WR 0 zz\n", SpeedBin::Mt2666).is_err());
    }

    #[test]
    fn hex_codec_round_trips() {
        let bits: Vec<Bit> = (0..64).map(|i| Bit::from((i * 7) % 5 == 0)).collect();
        let hex = bits_to_hex(&bits);
        assert_eq!(hex.len(), 16);
        assert_eq!(hex_to_bits(&hex).unwrap(), bits);
    }

    #[test]
    fn parsed_program_executes() {
        use dram_core::{ChipId, DramModule};
        let cfg = dram_core::config::table1().remove(0).with_modeled_cols(16);
        let mut bender = crate::Bender::new(DramModule::new(cfg));
        let data: Vec<Bit> = (0..16).map(|i| Bit::from(i % 2 == 0)).collect();
        let text = std::format!(
            "ACT 0 3\nWAIT 14ns\nWR 0 {}\nWAIT 33ns\nPRE 0\nWAIT 14ns\nACT 0 3\nWAIT 14ns\nRD 0 3\nWAIT 33ns\nPRE 0\n",
            bits_to_hex(&data)
        );
        let p = parse(&text, bender.speed()).unwrap();
        let exec = bender.execute(ChipId(0), &p).unwrap();
        assert_eq!(exec.reads.len(), 1);
        assert_eq!(exec.reads[0].data, data);
    }
}
