//! # bender — testing-infrastructure simulator
//!
//! A software stand-in for [DRAM Bender], the FPGA-based DDR4 testing
//! infrastructure the paper uses to issue command sequences with
//! violated timing parameters. The programming model is the same:
//!
//! 1. build a cycle-timed command [`Program`] (the [`ProgramBuilder`]
//!    offers the paper's canonical sequences);
//! 2. [`Bender::execute`] it against a chip of the module under test;
//! 3. inspect the captured reads and semantic [`dram_core::OpOutcome`]s.
//!
//! [DRAM Bender]: https://github.com/CMU-SAFARI/DRAM-Bender
//!
//! ## Example
//!
//! ```
//! use bender::{Bender, ProgramBuilder};
//! use dram_core::{BankId, Bit, ChipId, DramModule, GlobalRow};
//!
//! let cfg = dram_core::config::table1().remove(0).with_modeled_cols(16);
//! let mut bender = Bender::new(DramModule::new(cfg));
//! bender.write_row(ChipId(0), BankId(0), GlobalRow(4), vec![Bit::One; 16])?;
//! let row = bender.read_row(ChipId(0), BankId(0), GlobalRow(4))?;
//! assert_eq!(row, vec![Bit::One; 16]);
//! # Ok::<(), bender::BenderError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
mod error;
mod executor;
mod program;

pub use error::{BenderError, Result};
pub use executor::{Bender, Execution, ReadRecord};
pub use program::{DdrCommand, Program, ProgramBuilder, TimedCommand};
