//! Success-rate metrics: the paper's central reliability measure.
//!
//! The *success rate* of a cell is the fraction of trials in which it
//! stores the correct operation result (§5.2 "Metric"). This module
//! provides both the Monte-Carlo view (sampling trials from per-cell
//! probabilities, as the hardware experiments do with 10,000 trials)
//! and the analytic limit (using the probabilities directly).

use dram_core::math::{mix2, mix3};
use serde::{Deserialize, Serialize};

/// Accumulates per-cell success probabilities into summary statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuccessStats {
    values: Vec<f64>,
}

impl SuccessStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one cell's success rate.
    pub fn push(&mut self, p: f64) {
        self.values.push(p.clamp(0.0, 1.0));
    }

    /// Adds many cells' success rates.
    pub fn extend_from(&mut self, ps: impl IntoIterator<Item = f64>) {
        for p in ps {
            self.push(p);
        }
    }

    /// Number of cells recorded.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Mean success rate (the paper's "average success rate").
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum success rate.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::min)
    }

    /// Maximum success rate.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::max)
    }

    /// Fraction of cells with success rate above `threshold` (the
    /// paper preselects cells >90% for several experiments).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|p| **p > threshold).count() as f64 / self.values.len() as f64
    }

    /// The recorded values (unsorted).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Deterministically samples the number of successes in `trials`
/// Bernoulli trials of probability `p`, keyed by `key` — the cheap way
/// to reproduce the paper's 10,000-trial counts from one execution's
/// per-cell probability.
pub fn sample_trials(p: f64, trials: u32, key: u64) -> u32 {
    let p = p.clamp(0.0, 1.0);
    let mut successes = 0u32;
    for t in 0..trials {
        let u = dram_core::math::hash_to_unit(mix3(key, t as u64, 0x7124));
        if u < p {
            successes += 1;
        }
    }
    successes
}

/// Measured success rate over sampled trials.
pub fn sampled_success_rate(p: f64, trials: u32, key: u64) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    f64::from(sample_trials(p, trials, key)) / f64::from(trials)
}

/// Convenience: a stable key for a cell coordinate.
pub fn cell_key(bank: usize, subarray: usize, row: usize, col: usize) -> u64 {
    mix2(
        ((bank as u64) << 48) | ((subarray as u64) << 32) | row as u64,
        col as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let mut s = SuccessStats::new();
        s.extend_from([0.5, 1.0, 0.75, 0.25]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 0.625).abs() < 1e-12);
        assert_eq!(s.min(), 0.25);
        assert_eq!(s.max(), 1.0);
        assert!((s.fraction_above(0.4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stats_clamp_out_of_range() {
        let mut s = SuccessStats::new();
        s.push(1.7);
        s.push(-0.2);
        assert_eq!(s.max(), 1.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SuccessStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.fraction_above(0.5), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn trials_converge_to_probability() {
        for &p in &[0.1, 0.5, 0.9837] {
            let rate = sampled_success_rate(p, 10_000, 42);
            assert!((rate - p).abs() < 0.02, "p={p} rate={rate}");
        }
    }

    #[test]
    fn trials_are_deterministic() {
        assert_eq!(sample_trials(0.5, 1000, 7), sample_trials(0.5, 1000, 7));
        assert_ne!(sample_trials(0.5, 10_000, 7), sample_trials(0.5, 10_000, 8));
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(sample_trials(0.0, 1000, 1), 0);
        assert_eq!(sample_trials(1.0, 1000, 1), 1000);
        assert_eq!(sampled_success_rate(0.5, 0, 1), 0.0);
    }

    #[test]
    fn cell_keys_are_distinct() {
        let a = cell_key(0, 1, 2, 3);
        let b = cell_key(0, 1, 2, 4);
        let c = cell_key(0, 1, 3, 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
