//! Success-rate metrics: the paper's central reliability measure.
//!
//! The *success rate* of a cell is the fraction of trials in which it
//! stores the correct operation result (§5.2 "Metric"). This module
//! provides both the Monte-Carlo view (sampling trials from per-cell
//! probabilities, as the hardware experiments do with 10,000 trials)
//! and the analytic limit (using the probabilities directly).

use dram_core::math::{mix2, mix3};
use serde::{Deserialize, Serialize};

/// Accumulates per-cell success probabilities into summary statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuccessStats {
    values: Vec<f64>,
}

impl SuccessStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one cell's success rate.
    pub fn push(&mut self, p: f64) {
        self.values.push(p.clamp(0.0, 1.0));
    }

    /// Adds many cells' success rates.
    pub fn extend_from(&mut self, ps: impl IntoIterator<Item = f64>) {
        for p in ps {
            self.push(p);
        }
    }

    /// Number of cells recorded.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Mean success rate (the paper's "average success rate").
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum success rate.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::min)
    }

    /// Maximum success rate.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::max)
    }

    /// Fraction of cells with success rate above `threshold` (the
    /// paper preselects cells >90% for several experiments).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|p| **p > threshold).count() as f64 / self.values.len() as f64
    }

    /// The recorded values (unsorted).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Absorbs another accumulator's values (exact merge: the result is
    /// identical to having pushed both value streams into one
    /// accumulator, in `self`-then-`other` order).
    pub fn merge(&mut self, other: &SuccessStats) {
        self.values.extend_from_slice(&other.values);
    }
}

/// Number of histogram bins in a [`SuccessAccumulator`].
///
/// 1024 bins over `[0, 1]` resolve success-rate quantiles to better
/// than 0.1 percentage points — finer than any figure in the paper.
pub const ACCUMULATOR_BINS: usize = 1024;

/// Constant-memory, *mergeable* success-rate accumulator.
///
/// [`SuccessStats`] stores every value, which is exact but unbounded: a
/// 256-chip sweep at full row width records billions of cells. This
/// accumulator keeps O(1) state — count, sum, exact min/max, and a
/// fixed 1024-bin histogram — and supports an order-insensitive
/// [`merge`](Self::merge) so per-chip shards can be combined into
/// population statistics. Two accumulators built from the same
/// multiset of values are bit-identical in every field except `sum`
/// (floating-point addition order), which the fleet runner pins by
/// always merging in fleet order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuccessAccumulator {
    count: u64,
    sum: f64,
    /// Exact minimum; `1.0` when empty (identity for `min`).
    min: f64,
    /// Exact maximum; `0.0` when empty (identity for `max`).
    max: f64,
    bins: Vec<u64>,
}

impl Default for SuccessAccumulator {
    fn default() -> Self {
        SuccessAccumulator {
            count: 0,
            sum: 0.0,
            min: 1.0,
            max: 0.0,
            bins: vec![0; ACCUMULATOR_BINS],
        }
    }
}

impl SuccessAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one success rate (clamped to `[0, 1]`).
    pub fn push(&mut self, p: f64) {
        let p = p.clamp(0.0, 1.0);
        self.count += 1;
        self.sum += p;
        self.min = self.min.min(p);
        self.max = self.max.max(p);
        let bin = ((p * ACCUMULATOR_BINS as f64) as usize).min(ACCUMULATOR_BINS - 1);
        self.bins[bin] += 1;
    }

    /// Records many success rates.
    pub fn extend_from(&mut self, ps: impl IntoIterator<Item = f64>) {
        for p in ps {
            self.push(p);
        }
    }

    /// Absorbs another accumulator. Histogram, count, min, and max are
    /// order-insensitive; `sum` (and hence `mean`) follows the merge
    /// order, so callers wanting bit-stable means must merge in a
    /// fixed order.
    pub fn merge(&mut self, other: &SuccessAccumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += *o;
        }
    }

    /// Number of values recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether anything has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean success rate (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Quantile `q ∈ [0, 1]` of the recorded distribution, linearly
    /// interpolated within the containing histogram bin and clamped to
    /// the exact `[min, max]` envelope. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile fraction {q} out of range"
        );
        if self.count == 0 {
            return 0.0;
        }
        let rank = q * (self.count - 1) as f64;
        let mut below = 0u64;
        for (i, n) in self.bins.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let upto = below + n;
            if rank < upto as f64 {
                // Interpolate the rank's position inside this bin.
                let within = (rank - below as f64 + 0.5) / *n as f64;
                let width = 1.0 / ACCUMULATOR_BINS as f64;
                let v = (i as f64 + within.clamp(0.0, 1.0)) * width;
                return v.clamp(self.min, self.max);
            }
            below = upto;
        }
        self.max
    }

    /// Fraction of recorded values in bins strictly above `threshold`'s
    /// bin (histogram resolution: 1/1024).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let t = threshold.clamp(0.0, 1.0);
        let cut = ((t * ACCUMULATOR_BINS as f64) as usize).min(ACCUMULATOR_BINS - 1);
        let above: u64 = self.bins[cut + 1..].iter().sum();
        above as f64 / self.count as f64
    }
}

/// Deterministically samples the number of successes in `trials`
/// Bernoulli trials of probability `p`, keyed by `key` — the cheap way
/// to reproduce the paper's 10,000-trial counts from one execution's
/// per-cell probability.
pub fn sample_trials(p: f64, trials: u32, key: u64) -> u32 {
    let p = p.clamp(0.0, 1.0);
    let mut successes = 0u32;
    for t in 0..trials {
        let u = dram_core::math::hash_to_unit(mix3(key, t as u64, 0x7124));
        if u < p {
            successes += 1;
        }
    }
    successes
}

/// Measured success rate over sampled trials.
pub fn sampled_success_rate(p: f64, trials: u32, key: u64) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    f64::from(sample_trials(p, trials, key)) / f64::from(trials)
}

/// Convenience: a stable key for a cell coordinate.
pub fn cell_key(bank: usize, subarray: usize, row: usize, col: usize) -> u64 {
    mix2(
        ((bank as u64) << 48) | ((subarray as u64) << 32) | row as u64,
        col as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let mut s = SuccessStats::new();
        s.extend_from([0.5, 1.0, 0.75, 0.25]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 0.625).abs() < 1e-12);
        assert_eq!(s.min(), 0.25);
        assert_eq!(s.max(), 1.0);
        assert!((s.fraction_above(0.4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stats_clamp_out_of_range() {
        let mut s = SuccessStats::new();
        s.push(1.7);
        s.push(-0.2);
        assert_eq!(s.max(), 1.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SuccessStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.fraction_above(0.5), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn trials_converge_to_probability() {
        for &p in &[0.1, 0.5, 0.9837] {
            let rate = sampled_success_rate(p, 10_000, 42);
            assert!((rate - p).abs() < 0.02, "p={p} rate={rate}");
        }
    }

    #[test]
    fn trials_are_deterministic() {
        assert_eq!(sample_trials(0.5, 1000, 7), sample_trials(0.5, 1000, 7));
        assert_ne!(sample_trials(0.5, 10_000, 7), sample_trials(0.5, 10_000, 8));
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(sample_trials(0.0, 1000, 1), 0);
        assert_eq!(sample_trials(1.0, 1000, 1), 1000);
        assert_eq!(sampled_success_rate(0.5, 0, 1), 0.0);
    }

    #[test]
    fn accumulator_matches_exact_stats() {
        let values: Vec<f64> = (0..5000)
            .map(|i| dram_core::math::hash_to_unit(mix2(0xACC, i as u64)))
            .collect();
        let mut acc = SuccessAccumulator::new();
        acc.extend_from(values.iter().copied());
        let mut exact = SuccessStats::new();
        exact.extend_from(values.iter().copied());
        assert_eq!(acc.count(), 5000);
        assert!((acc.mean() - exact.mean()).abs() < 1e-12, "mean is exact");
        assert_eq!(acc.min(), exact.min(), "min is exact");
        assert_eq!(acc.max(), exact.max(), "max is exact");
        // Quantiles resolve to histogram-bin precision.
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let approx = acc.quantile(q);
            let truth = sorted[((q * (sorted.len() - 1) as f64) as usize).min(sorted.len() - 1)];
            assert!(
                (approx - truth).abs() < 2.0 / ACCUMULATOR_BINS as f64 + 1e-9,
                "q={q}: {approx} vs {truth}"
            );
        }
        assert!((acc.fraction_above(0.5) - exact.fraction_above(0.5)).abs() < 0.005);
    }

    #[test]
    fn accumulator_merge_equals_single_stream() {
        let vals: Vec<f64> = (0..1000).map(|i| (i % 97) as f64 / 96.0).collect();
        let mut whole = SuccessAccumulator::new();
        whole.extend_from(vals.iter().copied());
        let mut left = SuccessAccumulator::new();
        let mut right = SuccessAccumulator::new();
        left.extend_from(vals[..400].iter().copied());
        right.extend_from(vals[400..].iter().copied());
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        assert_eq!(left.quantile(0.5), whole.quantile(0.5));
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn accumulator_empty_is_safe() {
        let acc = SuccessAccumulator::new();
        assert!(acc.is_empty());
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), 0.0);
        assert_eq!(acc.max(), 0.0);
        assert_eq!(acc.quantile(0.5), 0.0);
        assert_eq!(acc.fraction_above(0.9), 0.0);
    }

    #[test]
    fn accumulator_single_value() {
        let mut acc = SuccessAccumulator::new();
        acc.push(0.9837);
        assert_eq!(acc.quantile(0.0), 0.9837, "clamped to exact min");
        assert_eq!(acc.quantile(1.0), 0.9837, "clamped to exact max");
        assert_eq!(acc.mean(), 0.9837);
    }

    #[test]
    fn accumulator_clamps_and_round_trips() {
        let mut acc = SuccessAccumulator::new();
        acc.push(1.5);
        acc.push(-0.5);
        assert_eq!(acc.max(), 1.0);
        assert_eq!(acc.min(), 0.0);
        let json = serde_json::to_string(&acc).unwrap();
        let back: SuccessAccumulator = serde_json::from_str(&json).unwrap();
        assert_eq!(back, acc);
    }

    #[test]
    fn stats_merge_concatenates() {
        let mut a = SuccessStats::new();
        a.extend_from([0.1, 0.2]);
        let mut b = SuccessStats::new();
        b.extend_from([0.3]);
        a.merge(&b);
        assert_eq!(a.values(), &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn cell_keys_are_distinct() {
        let a = cell_key(0, 1, 2, 3);
        let b = cell_key(0, 1, 2, 4);
        let c = cell_key(0, 1, 3, 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
