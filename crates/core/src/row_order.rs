//! RowHammer-based reverse engineering of physical row order and
//! distance to the sense-amplifier stripes (§5.2).
//!
//! Single-sided hammering of an aggressor row flips bits in the rows
//! physically adjacent to it. A row with *one* victim sits at a
//! subarray edge — i.e. directly next to a sense-amplifier stripe.
//! From the discovered edges, every row's distance to either stripe
//! follows, along with the Close/Middle/Far tertile used by the
//! distance-dependence experiments (Figs. 9 and 17).

use crate::error::Result;
use bender::Bender;
use dram_core::{BankId, Bit, ChipId, DistanceRegion, GlobalRow, LocalRow, StripeSide, SubarrayId};
use serde::{Deserialize, Serialize};

/// Physical layout of one subarray as discovered by hammering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowOrder {
    /// Subarray this describes.
    pub subarray: SubarrayId,
    /// Row adjacent to the stripe *above* (toward lower subarray ids).
    pub top_edge: LocalRow,
    /// Row adjacent to the stripe *below*.
    pub bottom_edge: LocalRow,
    /// Number of rows.
    pub rows: usize,
}

impl RowOrder {
    /// Normalized distance (0..1) of `row` to the stripe on `side`.
    pub fn distance(&self, row: LocalRow, side: StripeSide) -> f64 {
        let span = (self.rows - 1) as f64;
        match side {
            StripeSide::Above => (row.index() as f64 - self.top_edge.index() as f64).abs() / span,
            StripeSide::Below => {
                (self.bottom_edge.index() as f64 - row.index() as f64).abs() / span
            }
        }
    }

    /// Distance tertile of `row` relative to the stripe on `side`.
    pub fn region(&self, row: LocalRow, side: StripeSide) -> DistanceRegion {
        DistanceRegion::from_normalized(self.distance(row, side))
    }
}

/// Number of hammer activations used per aggressor probe (well above
/// typical per-cell thresholds so victims reliably flip).
const HAMMER_COUNT: u64 = 400_000;

/// Discovers the physical row order of `subarray` by single-sided
/// hammering of `probes` sampled rows plus the extremal candidates.
///
/// # Errors
///
/// Fails if no edge rows are found (which would indicate the hammer
/// model is disabled for this part).
pub fn discover_row_order(
    bender: &mut Bender,
    chip: ChipId,
    bank: BankId,
    subarray: SubarrayId,
    probes: usize,
) -> Result<RowOrder> {
    let geom = *bender.module_mut().chip_mut(chip).geometry();
    let rows = geom.rows_per_subarray();
    let cols = geom.cols();
    let ones = vec![Bit::One; cols];

    // Candidate aggressors: always test the address-space extremes,
    // then sample the interior.
    let mut candidates = vec![0usize, rows - 1];
    for p in 0..probes {
        candidates.push(1 + (p * 97) % (rows - 2));
    }
    candidates.sort_unstable();
    candidates.dedup();

    let mut single_victims: Vec<(LocalRow, LocalRow)> = Vec::new();
    for aggr in candidates {
        // Charge the aggressor's potential victims so flips are visible.
        for v in [aggr.wrapping_sub(1), aggr + 1] {
            if v < rows {
                bender.write_row(
                    chip,
                    bank,
                    geom.join_row(subarray, LocalRow(v))?,
                    ones.clone(),
                )?;
            }
        }
        let flips = bender.module_mut().chip_mut(chip).hammer(
            bank,
            geom.join_row(subarray, LocalRow(aggr))?,
            HAMMER_COUNT,
        )?;
        let victims: Vec<GlobalRow> = flips
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(r, _)| *r)
            .collect();
        if victims.len() == 1 {
            let (_, vloc) = geom.split_row(victims[0])?;
            single_victims.push((LocalRow(aggr), vloc));
        }
    }

    // An edge aggressor's single victim lies *inward*; the aggressor
    // itself is the edge row.
    let top = single_victims
        .iter()
        .find(|(a, v)| v.index() > a.index())
        .map(|(a, _)| *a)
        .ok_or_else(|| crate::error::FcdramError::OpFailed {
            detail: "no top edge row discovered".into(),
        })?;
    let bottom = single_victims
        .iter()
        .find(|(a, v)| v.index() < a.index())
        .map(|(a, _)| *a)
        .ok_or_else(|| crate::error::FcdramError::OpFailed {
            detail: "no bottom edge row discovered".into(),
        })?;
    Ok(RowOrder {
        subarray,
        top_edge: top,
        bottom_edge: bottom,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::config::table1;
    use dram_core::DramModule;

    fn bender() -> Bender {
        let cfg = table1().into_iter().next().unwrap().with_modeled_cols(32);
        Bender::new(DramModule::new(cfg))
    }

    #[test]
    fn discovers_edges() {
        let mut b = bender();
        let order = discover_row_order(&mut b, ChipId(0), BankId(0), SubarrayId(1), 4).unwrap();
        assert_eq!(order.top_edge, LocalRow(0));
        assert_eq!(order.bottom_edge, LocalRow(511));
        assert_eq!(order.rows, 512);
    }

    #[test]
    fn distances_follow_edges() {
        let order = RowOrder {
            subarray: SubarrayId(0),
            top_edge: LocalRow(0),
            bottom_edge: LocalRow(511),
            rows: 512,
        };
        assert_eq!(order.distance(LocalRow(0), StripeSide::Above), 0.0);
        assert_eq!(order.distance(LocalRow(511), StripeSide::Below), 0.0);
        assert!((order.distance(LocalRow(511), StripeSide::Above) - 1.0).abs() < 1e-12);
        assert_eq!(
            order.region(LocalRow(0), StripeSide::Above),
            DistanceRegion::Close
        );
        assert_eq!(
            order.region(LocalRow(255), StripeSide::Above),
            DistanceRegion::Middle
        );
        assert_eq!(
            order.region(LocalRow(500), StripeSide::Above),
            DistanceRegion::Far
        );
    }
}
