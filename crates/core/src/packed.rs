//! Bit-packed host-side vectors: `u64` words instead of `Vec<bool>`.
//!
//! The bulk engine moves whole DRAM rows (8K+ bits) between host and
//! device on every operation. Packing 64 lanes per word turns the
//! host-side bookkeeping — expected-value computation, accuracy
//! counting, majority voting — into a handful of word operations per
//! cache line instead of a branch per bit.

use dram_core::Bit;
use serde::{Deserialize, Serialize};

/// A fixed-length bit vector packed 64 lanes per `u64` word.
///
/// Bit `i` lives in word `i / 64` at bit position `i % 64`. Unused
/// high bits of the last word are always zero (maintained by every
/// constructor and mutation).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackedBits {
    words: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// An all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        PackedBits {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut p = PackedBits {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        p.mask_tail();
        p
    }

    /// A vector filled with `value`.
    pub fn splat(value: bool, len: usize) -> Self {
        if value {
            Self::ones(len)
        } else {
            Self::zeros(len)
        }
    }

    /// Wraps LSB-first packed words (the device read layout) into a
    /// vector of `len` lanes. Extra words are dropped and tail bits
    /// cleared.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(len.div_ceil(64), 0);
        let mut p = PackedBits { words, len };
        p.mask_tail();
        p
    }

    /// Packs a `bool` slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut p = Self::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            if *b {
                p.words[i / 64] |= 1 << (i % 64);
            }
        }
        p
    }

    /// Packs a [`Bit`] slice.
    pub fn from_bits(bits: &[Bit]) -> Self {
        let mut p = Self::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            if b.as_bool() {
                p.words[i / 64] |= 1 << (i % 64);
            }
        }
        p
    }

    /// Unpacks to a `bool` vector.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Unpacks to a [`Bit`] vector.
    pub fn to_bits(&self) -> Vec<Bit> {
        (0..self.len).map(|i| Bit::from(self.get(i))).collect()
    }

    /// Expands the lanes into a `cols`-wide row at every `step`-th
    /// column starting from `start`, zeros elsewhere — the staging
    /// convention for writing shared-column vectors into full DRAM
    /// rows.
    pub fn expand_strided(&self, cols: usize, start: usize, step: usize) -> Vec<Bit> {
        let mut row = vec![Bit::Zero; cols];
        for (i, c) in (start..cols).step_by(step).enumerate().take(self.len) {
            row[c] = Bit::from(self.get(i));
        }
        row
    }

    /// Number of lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero lanes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words (unused tail bits are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Lane `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets lane `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of set lanes.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of lanes equal between `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn count_matches(&self, other: &PackedBits) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        let mut same = 0usize;
        for (i, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut eq = !(a ^ b);
            if (i + 1) * 64 > self.len {
                eq &= Self::tail_mask(self.len);
            }
            same += eq.count_ones() as usize;
        }
        same
    }

    /// Lane-wise AND with `other`.
    pub fn and_assign(&mut self, other: &PackedBits) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Lane-wise OR with `other`.
    pub fn or_assign(&mut self, other: &PackedBits) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Lane-wise XOR with `other`.
    pub fn xor_assign(&mut self, other: &PackedBits) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Lane-wise complement.
    pub fn not_in_place(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Fraction of lanes equal between `self` and `other` (1.0 for
    /// empty vectors).
    pub fn accuracy_against(&self, other: &PackedBits) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        self.count_matches(other) as f64 / self.len as f64
    }

    #[inline]
    fn tail_mask(len: usize) -> u64 {
        match len % 64 {
            0 => u64::MAX,
            r => (1u64 << r) - 1,
        }
    }

    fn mask_tail(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= Self::tail_mask(self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_tail_masking() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let p = PackedBits::from_bools(&bits);
            assert_eq!(p.to_bools(), bits);
            assert_eq!(p.len(), len);
            let mut inv = p.clone();
            inv.not_in_place();
            let expect: Vec<bool> = bits.iter().map(|b| !b).collect();
            assert_eq!(inv.to_bools(), expect, "len {len}");
            // Tail bits stay zero after NOT.
            if len % 64 != 0 && !inv.words().is_empty() {
                assert_eq!(inv.words().last().unwrap() >> (len % 64), 0);
            }
        }
    }

    #[test]
    fn logic_ops_match_boolwise() {
        let a: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let (pa, pb) = (PackedBits::from_bools(&a), PackedBits::from_bools(&b));
        let mut and = pa.clone();
        and.and_assign(&pb);
        let mut or = pa.clone();
        or.or_assign(&pb);
        for i in 0..100 {
            assert_eq!(and.get(i), a[i] && b[i]);
            assert_eq!(or.get(i), a[i] || b[i]);
        }
    }

    #[test]
    fn matches_and_accuracy() {
        let a: Vec<bool> = (0..70).map(|i| i % 2 == 0).collect();
        let mut b = a.clone();
        b[3] = !b[3];
        b[69] = !b[69];
        let (pa, pb) = (PackedBits::from_bools(&a), PackedBits::from_bools(&b));
        assert_eq!(pa.count_matches(&pb), 68);
        assert!((pa.accuracy_against(&pb) - 68.0 / 70.0).abs() < 1e-12);
        assert_eq!(pa.count_matches(&pa), 70);
    }

    #[test]
    fn bit_slice_round_trip() {
        let bits: Vec<Bit> = (0..67).map(|i| Bit::from(i % 5 == 0)).collect();
        let p = PackedBits::from_bits(&bits);
        assert_eq!(p.to_bits(), bits);
        assert_eq!(p.count_ones(), bits.iter().filter(|b| b.as_bool()).count());
    }

    #[test]
    fn splat_and_set() {
        let mut p = PackedBits::splat(true, 65);
        assert_eq!(p.count_ones(), 65);
        p.set(64, false);
        assert_eq!(p.count_ones(), 64);
        assert!(!p.get(64));
        let z = PackedBits::splat(false, 65);
        assert_eq!(z.count_ones(), 0);
    }
}
