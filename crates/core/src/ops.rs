//! The in-DRAM operations: RowClone, Frac, NOT, and N-input
//! AND/OR/NAND/NOR, executed over the command interface against a
//! discovered [`ActivationMap`].

use crate::error::{FcdramError, Result};
use crate::mapping::{ActivationMap, InSubarrayEntry, PatternEntry};
use crate::packed::PackedBits;
use bender::Bender;
use dram_core::{
    is_shared_col, BankId, Bit, CellRole, ChipId, Col, CsTerminal, DramModule, GlobalRow, LogicOp,
    ModuleConfig, OpOutcome, OutcomeKind, SubarrayId, Temperature,
};
use serde::{Deserialize, Serialize};

/// Result of a fast-path NOT execution: packed, shared columns only,
/// no per-cell records and no full-width row reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FastNotResult {
    /// Shape actually activated (`N_RF`, `N_RL`).
    pub shape: (usize, usize),
    /// First destination row's shared columns (packed).
    pub result: PackedBits,
    /// Fraction of destination cells on shared columns holding ¬src
    /// (over *all* destination rows, like [`NotReport`]).
    pub observed_success: f64,
    /// Mean model-assigned success probability of destination cells.
    pub predicted_success: f64,
}

/// Result of a fast-path logic execution (packed, shared columns only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FastLogicResult {
    /// The operation.
    pub op: LogicOp,
    /// Input count (the `N` of the `N:N` entry).
    pub n: usize,
    /// Ideal result on shared columns (packed).
    pub expected: PackedBits,
    /// First result row's shared columns (packed).
    pub result: PackedBits,
    /// Fraction of result cells (all result rows × shared columns)
    /// holding the correct value.
    pub observed_success: f64,
    /// Mean model success probability of result cells.
    pub predicted_success: f64,
}

/// Result of a fast-path in-subarray majority execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FastMajResult {
    /// Number of rows that charge-shared.
    pub n: usize,
    /// First raised row's shared columns (packed; the engine's vectors
    /// live on the shared half).
    pub result: PackedBits,
    /// Mean model success probability of the raised cells.
    pub predicted_success: f64,
}

/// Result of an executed NOT operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NotReport {
    /// Shape actually activated (`N_RF`, `N_RL`).
    pub shape: (usize, usize),
    /// Shared columns carrying the negated result.
    pub shared_cols: Vec<usize>,
    /// Read-back of each destination row (full width).
    pub dst_reads: Vec<(GlobalRow, Vec<Bit>)>,
    /// Fraction of destination cells on shared columns holding ¬src.
    pub observed_success: f64,
    /// Mean model-assigned success probability of destination cells
    /// (the trials → ∞ success rate).
    pub predicted_success: f64,
    /// The raw per-cell outcome, for fine-grained analysis.
    pub outcome: OpOutcome,
}

/// Result of an executed logic operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicReport {
    /// The operation.
    pub op: LogicOp,
    /// Input count.
    pub n: usize,
    /// Shared columns carrying results.
    pub shared_cols: Vec<usize>,
    /// The ideal result on shared columns (in `shared_cols` order).
    pub expected: Vec<Bit>,
    /// The result read back from the first result row (in
    /// `shared_cols` order).
    pub result: Vec<Bit>,
    /// Fraction of result cells (all result rows × shared columns)
    /// holding the correct value.
    pub observed_success: f64,
    /// Mean model success probability of result cells.
    pub predicted_success: f64,
    /// The raw per-cell outcome, for fine-grained analysis.
    pub outcome: OpOutcome,
}

/// Result of an executed in-subarray majority operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MajReport {
    /// Number of rows that charge-shared.
    pub n: usize,
    /// The ideal majority result per column.
    pub expected: Vec<Bit>,
    /// The result read back from the first raised row.
    pub result: Vec<Bit>,
    /// Fraction of raised-row cells holding the correct majority.
    pub observed_success: f64,
    /// Mean model success probability.
    pub predicted_success: f64,
    /// The raw per-cell outcome.
    pub outcome: OpOutcome,
}

/// The FCDRAM library facade: one chip under test, programmed through
/// the testing infrastructure.
#[derive(Debug, Clone)]
pub struct Fcdram {
    bender: Bender,
    chip: ChipId,
}

impl Fcdram {
    /// Builds the full stack (module + infrastructure) for chip 0 of a
    /// module configuration.
    pub fn new(config: ModuleConfig) -> Self {
        Fcdram {
            bender: Bender::new(DramModule::new(config)),
            chip: ChipId(0),
        }
    }

    /// Wraps an existing infrastructure, targeting `chip`.
    pub fn with_chip(bender: Bender, chip: ChipId) -> Self {
        Fcdram { bender, chip }
    }

    /// The module configuration under test.
    pub fn config(&self) -> &ModuleConfig {
        self.bender.module().config()
    }

    /// The chip under test.
    pub fn chip(&self) -> ChipId {
        self.chip
    }

    /// The underlying infrastructure.
    pub fn bender(&self) -> &Bender {
        &self.bender
    }

    /// Mutable access to the underlying infrastructure.
    pub fn bender_mut(&mut self) -> &mut Bender {
        &mut self.bender
    }

    /// The current simulation configuration (module fidelity + rig
    /// temperature).
    pub fn sim_config(&self) -> dram_core::SimConfig {
        dram_core::SimConfig::new()
            .with_fidelity(self.bender.module().fidelity())
            .with_temperature(self.bender.temperature())
    }

    /// Applies a [`dram_core::SimConfig`]: rig temperature plus the
    /// simulation fidelity of the whole module under test. Stored bits
    /// and aggregate statistics are identical across fidelity modes.
    pub fn configure(&mut self, cfg: dram_core::SimConfig) {
        self.bender.set_temperature(cfg.temperature());
        self.bender.module_mut().set_fidelity(cfg.fidelity());
    }

    /// Builder form of [`Fcdram::configure`] for construction chains.
    #[must_use]
    pub fn with_sim_config(mut self, cfg: dram_core::SimConfig) -> Self {
        self.configure(cfg);
        self
    }

    #[doc(hidden)]
    pub fn set_temperature(&mut self, t: Temperature) {
        let cfg = self.sim_config().with_temperature(t);
        self.configure(cfg);
    }

    #[doc(hidden)]
    pub fn set_fidelity(&mut self, fidelity: dram_core::SimFidelity) {
        let cfg = self.sim_config().with_fidelity(fidelity);
        self.configure(cfg);
    }

    /// Discovers the activation map of a neighboring subarray pair.
    pub fn discover(
        &mut self,
        bank: BankId,
        pair: (SubarrayId, SubarrayId),
        budget: usize,
    ) -> Result<ActivationMap> {
        ActivationMap::discover(&mut self.bender, self.chip, bank, pair, budget, 16)
    }

    /// Writes a row (timing-respecting command sequence).
    pub fn write_row(&mut self, bank: BankId, row: GlobalRow, data: Vec<Bit>) -> Result<()> {
        self.bender.write_row(self.chip, bank, row, data)?;
        Ok(())
    }

    /// Reads a row (timing-respecting command sequence).
    pub fn read_row(&mut self, bank: BankId, row: GlobalRow) -> Result<Vec<Bit>> {
        Ok(self.bender.read_row(self.chip, bank, row)?)
    }

    /// Row width in columns.
    pub fn cols(&self) -> usize {
        self.config().modeled_cols
    }

    /// In-subarray RowClone: copies `src` into `dst` (same subarray).
    ///
    /// # Errors
    ///
    /// Fails if the addresses are not in the same subarray or the pair
    /// does not clone on this chip (try a different destination).
    pub fn rowclone(&mut self, bank: BankId, src: GlobalRow, dst: GlobalRow) -> Result<OpOutcome> {
        let out = self.bender.copy_invert(self.chip, bank, src, dst)?;
        match out.kind {
            OutcomeKind::InSubarray { .. } => Ok(out),
            ref k => Err(FcdramError::OpFailed {
                detail: format!("rowclone produced {k:?}"),
            }),
        }
    }

    /// `Frac`: stores ≈VDD/2 into every cell of `row`.
    pub fn frac(&mut self, bank: BankId, row: GlobalRow) -> Result<()> {
        self.bender.frac(self.chip, bank, row)?;
        Ok(())
    }

    /// Executes a NOT through `entry`, negating `src_data` into the
    /// destination rows. The source row is written first; destination
    /// reads and success metrics are collected afterwards.
    pub fn execute_not(
        &mut self,
        bank: BankId,
        entry: &PatternEntry,
        src_data: &[Bit],
    ) -> Result<NotReport> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        if src_data.len() != geom.cols() {
            return Err(FcdramError::WidthMismatch {
                expected: geom.cols(),
                got: src_data.len(),
            });
        }
        let (sub_f, _) = geom.split_row(entry.rf)?;
        let (sub_l, _) = geom.split_row(entry.rl)?;
        let upper = SubarrayId(sub_f.index().min(sub_l.index()));

        self.bender
            .write_row(self.chip, bank, entry.rf, src_data.to_vec())?;
        let outcome = self
            .bender
            .copy_invert(self.chip, bank, entry.rf, entry.rl)?;
        let shape = match outcome.kind {
            OutcomeKind::Not { n_rf, n_rl, .. } => (n_rf, n_rl),
            ref k => {
                return Err(FcdramError::OpFailed {
                    detail: format!("NOT produced {k:?}"),
                })
            }
        };

        let shared_cols: Vec<usize> = (0..geom.cols())
            .filter(|c| is_shared_col(upper, Col(*c)))
            .collect();
        let mut dst_reads = Vec::new();
        let mut correct = 0usize;
        let mut total = 0usize;
        for row in &entry.second_rows {
            let g = geom.join_row(sub_l, *row)?;
            let data = self.bender.read_row(self.chip, bank, g)?;
            for c in &shared_cols {
                total += 1;
                if data[*c] == src_data[*c].not() {
                    correct += 1;
                }
            }
            dst_reads.push((g, data));
        }
        let predicted = outcome.mean_success(CellRole::NotDst).unwrap_or(0.0);
        Ok(NotReport {
            shape,
            shared_cols,
            dst_reads,
            observed_success: correct as f64 / total.max(1) as f64,
            predicted_success: predicted,
            outcome,
        })
    }

    /// Executes an N-input logic operation through an `N:N` entry.
    ///
    /// `inputs` are full-width rows (only the shared column half
    /// carries results). For AND/NAND the reference subarray is loaded
    /// with N−1 all-1 rows plus one `Frac` row; OR/NOR uses all-0
    /// rows. Shorter input lists are padded with the operation's
    /// identity element (all-1 for AND-family, all-0 for OR-family),
    /// which leaves the result unchanged.
    pub fn execute_logic(
        &mut self,
        bank: BankId,
        entry: &PatternEntry,
        op: LogicOp,
        inputs: &[Vec<Bit>],
    ) -> Result<LogicReport> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        let (n_ref, n_com) = entry.shape();
        if n_ref != n_com {
            return Err(FcdramError::OpFailed {
                detail: format!("logic needs an N:N entry, got {n_ref}:{n_com}"),
            });
        }
        let n = n_com;
        if inputs.is_empty() || inputs.len() > n {
            return Err(FcdramError::BadInputCount {
                n: inputs.len(),
                max: n,
            });
        }
        for input in inputs {
            if input.len() != geom.cols() {
                return Err(FcdramError::WidthMismatch {
                    expected: geom.cols(),
                    got: input.len(),
                });
            }
        }
        let (sub_ref, _) = geom.split_row(entry.rf)?;
        let (sub_com, _) = geom.split_row(entry.rl)?;
        let upper = SubarrayId(sub_ref.index().min(sub_com.index()));

        // Reference subarray: N−1 constant rows + one Frac row.
        let const_bit = if op.is_and_family() {
            Bit::One
        } else {
            Bit::Zero
        };
        let const_row = vec![const_bit; geom.cols()];
        for (i, row) in entry.first_rows.iter().enumerate() {
            let g = geom.join_row(sub_ref, *row)?;
            if i + 1 == entry.first_rows.len() {
                self.bender.frac(self.chip, bank, g)?;
            } else {
                self.bender
                    .write_row(self.chip, bank, g, const_row.clone())?;
            }
        }
        // Compute subarray: the operands, identity-padded to N rows.
        let identity = vec![const_bit; geom.cols()];
        for (i, row) in entry.second_rows.iter().enumerate() {
            let g = geom.join_row(sub_com, *row)?;
            let data = inputs.get(i).cloned().unwrap_or_else(|| identity.clone());
            self.bender.write_row(self.chip, bank, g, data)?;
        }

        let outcome = self
            .bender
            .charge_share(self.chip, bank, entry.rf, entry.rl)?;
        if !matches!(outcome.kind, OutcomeKind::Logic { .. }) {
            return Err(FcdramError::OpFailed {
                detail: format!("charge share produced {:?}", outcome.kind),
            });
        }

        let shared_cols: Vec<usize> = (0..geom.cols())
            .filter(|c| is_shared_col(upper, Col(*c)))
            .collect();
        // Ideal result per shared column.
        let expected: Vec<Bit> = shared_cols
            .iter()
            .map(|c| {
                let mut all = inputs.iter().map(|r| r[*c].as_bool());
                let agg = if op.is_and_family() {
                    all.all(|b| b)
                } else {
                    all.any(|b| b)
                };
                Bit::from(if op.is_inverted_terminal() { !agg } else { agg })
            })
            .collect();

        // Result rows: compute side for AND/OR, reference for NAND/NOR.
        let (result_sub, result_rows) = if op.is_inverted_terminal() {
            (sub_ref, &entry.first_rows)
        } else {
            (sub_com, &entry.second_rows)
        };
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut first_read: Option<Vec<Bit>> = None;
        for row in result_rows {
            let g = geom.join_row(result_sub, *row)?;
            let data = self.bender.read_row(self.chip, bank, g)?;
            for (i, c) in shared_cols.iter().enumerate() {
                total += 1;
                if data[*c] == expected[i] {
                    correct += 1;
                }
            }
            if first_read.is_none() {
                first_read = Some(shared_cols.iter().map(|c| data[*c]).collect());
            }
        }
        let role = if op.is_inverted_terminal() {
            CellRole::Reference
        } else {
            CellRole::Compute
        };
        let predicted = outcome.mean_success(role).unwrap_or(0.0);
        Ok(LogicReport {
            op,
            n,
            shared_cols,
            expected,
            result: first_read.unwrap_or_default(),
            observed_success: correct as f64 / total.max(1) as f64,
            predicted_success: predicted,
            outcome,
        })
    }

    /// Fast-path NOT: same command sequence as [`Fcdram::execute_not`],
    /// but destination rows are read back packed and shared-columns
    /// only, and no full-width `dst_reads` are materialized.
    ///
    /// `observed_success`/`predicted_success` are identical to the
    /// values [`Fcdram::execute_not`] reports for the same state.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fcdram::execute_not`].
    pub fn execute_not_packed(
        &mut self,
        bank: BankId,
        entry: &PatternEntry,
        src_data: &[Bit],
    ) -> Result<FastNotResult> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        if src_data.len() != geom.cols() {
            return Err(FcdramError::WidthMismatch {
                expected: geom.cols(),
                got: src_data.len(),
            });
        }
        let (sub_f, _) = geom.split_row(entry.rf)?;
        let (sub_l, _) = geom.split_row(entry.rl)?;
        let upper = SubarrayId(sub_f.index().min(sub_l.index()));
        let shared_start = (upper.index() + 1) % 2;
        let lanes = (geom.cols() - shared_start).div_ceil(2);

        self.bender
            .write_row(self.chip, bank, entry.rf, src_data.to_vec())?;
        let outcome = self
            .bender
            .copy_invert(self.chip, bank, entry.rf, entry.rl)?;
        let shape = match outcome.kind {
            OutcomeKind::Not { n_rf, n_rl, .. } => (n_rf, n_rl),
            ref k => {
                return Err(FcdramError::OpFailed {
                    detail: format!("NOT produced {k:?}"),
                })
            }
        };

        // Ideal: ¬src on the shared half.
        let mut expected = PackedBits::zeros(lanes);
        for (i, c) in (shared_start..geom.cols()).step_by(2).enumerate() {
            expected.set(i, !src_data[c].as_bool());
        }
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut first: Option<PackedBits> = None;
        for row in &entry.second_rows {
            let g = geom.join_row(sub_l, *row)?;
            let words = self
                .bender
                .read_row_packed(self.chip, bank, g, shared_start, 2)?;
            let read = PackedBits::from_words(words, lanes);
            correct += read.count_matches(&expected);
            total += lanes;
            if first.is_none() {
                first = Some(read);
            }
        }
        Ok(FastNotResult {
            shape,
            result: first.unwrap_or_else(|| PackedBits::zeros(lanes)),
            observed_success: correct as f64 / total.max(1) as f64,
            predicted_success: outcome.mean_success(CellRole::NotDst).unwrap_or(0.0),
        })
    }

    /// Fast-path N-input logic: same command sequence and write
    /// pattern as [`Fcdram::execute_logic`], with packed shared-column
    /// inputs and read-back. Inputs carry one lane per shared column.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fcdram::execute_logic`].
    pub fn execute_logic_packed(
        &mut self,
        bank: BankId,
        entry: &PatternEntry,
        op: LogicOp,
        inputs: &[PackedBits],
    ) -> Result<FastLogicResult> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        let (n_ref, n_com) = entry.shape();
        if n_ref != n_com {
            return Err(FcdramError::OpFailed {
                detail: format!("logic needs an N:N entry, got {n_ref}:{n_com}"),
            });
        }
        let n = n_com;
        if inputs.is_empty() || inputs.len() > n {
            return Err(FcdramError::BadInputCount {
                n: inputs.len(),
                max: n,
            });
        }
        let (sub_ref, _) = geom.split_row(entry.rf)?;
        let (sub_com, _) = geom.split_row(entry.rl)?;
        let upper = SubarrayId(sub_ref.index().min(sub_com.index()));
        let shared_start = (upper.index() + 1) % 2;
        let lanes = (geom.cols() - shared_start).div_ceil(2);
        for input in inputs {
            if input.len() != lanes {
                return Err(FcdramError::WidthMismatch {
                    expected: lanes,
                    got: input.len(),
                });
            }
        }

        // Reference subarray: N−1 constant rows + one Frac row.
        let const_bit = if op.is_and_family() {
            Bit::One
        } else {
            Bit::Zero
        };
        let const_row = vec![const_bit; geom.cols()];
        for (i, row) in entry.first_rows.iter().enumerate() {
            let g = geom.join_row(sub_ref, *row)?;
            if i + 1 == entry.first_rows.len() {
                self.bender.frac(self.chip, bank, g)?;
            } else {
                self.bender
                    .write_row(self.chip, bank, g, const_row.clone())?;
            }
        }
        // Compute subarray: the operands (shared half, zeros on the off
        // half — matching the engine's legacy expansion), identity-
        // padded to N rows with full-width constant rows.
        for (i, row) in entry.second_rows.iter().enumerate() {
            let g = geom.join_row(sub_com, *row)?;
            let data = match inputs.get(i) {
                Some(p) => p.expand_strided(geom.cols(), shared_start, 2),
                None => const_row.clone(),
            };
            self.bender.write_row(self.chip, bank, g, data)?;
        }

        let outcome = self
            .bender
            .charge_share(self.chip, bank, entry.rf, entry.rl)?;
        if !matches!(outcome.kind, OutcomeKind::Logic { .. }) {
            return Err(FcdramError::OpFailed {
                detail: format!("charge share produced {:?}", outcome.kind),
            });
        }

        // Ideal result, computed word-wise.
        let mut expected = PackedBits::splat(op.is_and_family(), lanes);
        for input in inputs {
            if op.is_and_family() {
                expected.and_assign(input);
            } else {
                expected.or_assign(input);
            }
        }
        if op.is_inverted_terminal() {
            expected.not_in_place();
        }

        // Result rows: compute side for AND/OR, reference for NAND/NOR.
        let (result_sub, result_rows) = if op.is_inverted_terminal() {
            (sub_ref, &entry.first_rows)
        } else {
            (sub_com, &entry.second_rows)
        };
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut first: Option<PackedBits> = None;
        for row in result_rows {
            let g = geom.join_row(result_sub, *row)?;
            let words = self
                .bender
                .read_row_packed(self.chip, bank, g, shared_start, 2)?;
            let read = PackedBits::from_words(words, lanes);
            correct += read.count_matches(&expected);
            total += lanes;
            if first.is_none() {
                first = Some(read);
            }
        }
        let role = if op.is_inverted_terminal() {
            CellRole::Reference
        } else {
            CellRole::Compute
        };
        Ok(FastLogicResult {
            op,
            n,
            expected,
            result: first.unwrap_or_else(|| PackedBits::zeros(lanes)),
            observed_success: correct as f64 / total.max(1) as f64,
            predicted_success: outcome.mean_success(role).unwrap_or(0.0),
        })
    }

    /// Value-path NOT for prepared execution: identical command
    /// sequence and stochastic draws as [`Fcdram::execute_not_packed`],
    /// but only the first destination row is read back, so
    /// `observed_success` covers that row alone. `result` and
    /// `predicted_success` are bit-identical to the packed variant.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fcdram::execute_not_packed`].
    pub fn execute_not_packed_value(
        &mut self,
        bank: BankId,
        entry: &PatternEntry,
        src_data: &[Bit],
    ) -> Result<FastNotResult> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        if src_data.len() != geom.cols() {
            return Err(FcdramError::WidthMismatch {
                expected: geom.cols(),
                got: src_data.len(),
            });
        }
        let (sub_f, _) = geom.split_row(entry.rf)?;
        let (sub_l, _) = geom.split_row(entry.rl)?;
        let upper = SubarrayId(sub_f.index().min(sub_l.index()));
        let shared_start = (upper.index() + 1) % 2;
        let lanes = (geom.cols() - shared_start).div_ceil(2);

        self.bender
            .write_row(self.chip, bank, entry.rf, src_data.to_vec())?;
        let outcome = self
            .bender
            .copy_invert(self.chip, bank, entry.rf, entry.rl)?;
        let shape = match outcome.kind {
            OutcomeKind::Not { n_rf, n_rl, .. } => (n_rf, n_rl),
            ref k => {
                return Err(FcdramError::OpFailed {
                    detail: format!("NOT produced {k:?}"),
                })
            }
        };
        let mut expected = PackedBits::zeros(lanes);
        for (i, c) in (shared_start..geom.cols()).step_by(2).enumerate() {
            expected.set(i, !src_data[c].as_bool());
        }
        let g = geom.join_row(sub_l, entry.second_rows[0])?;
        let words = self
            .bender
            .read_row_packed(self.chip, bank, g, shared_start, 2)?;
        let read = PackedBits::from_words(words, lanes);
        let correct = read.count_matches(&expected);
        Ok(FastNotResult {
            shape,
            result: read,
            observed_success: correct as f64 / lanes.max(1) as f64,
            predicted_success: outcome.mean_success(CellRole::NotDst).unwrap_or(0.0),
        })
    }

    /// Value-path N-input logic for prepared execution: identical
    /// writes and stochastic draws as [`Fcdram::execute_logic_packed`],
    /// but the charge share is masked to the terminal being read
    /// (compute for AND/OR, reference for NAND/NOR) and only the first
    /// result row is read back. `result`, `expected`, and
    /// `predicted_success` are bit-identical to the packed variant;
    /// `observed_success` covers the first result row alone.
    ///
    /// Masking is only safe when every raised row is rewritten before
    /// its next read — callers (`BulkEngine`) must verify their row
    /// plan satisfies this (see `BulkEngine::mask_safe`).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fcdram::execute_logic_packed`].
    pub fn execute_logic_packed_value(
        &mut self,
        bank: BankId,
        entry: &PatternEntry,
        op: LogicOp,
        inputs: &[PackedBits],
    ) -> Result<FastLogicResult> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        let (n_ref, n_com) = entry.shape();
        if n_ref != n_com {
            return Err(FcdramError::OpFailed {
                detail: format!("logic needs an N:N entry, got {n_ref}:{n_com}"),
            });
        }
        let n = n_com;
        if inputs.is_empty() || inputs.len() > n {
            return Err(FcdramError::BadInputCount {
                n: inputs.len(),
                max: n,
            });
        }
        let (sub_ref, _) = geom.split_row(entry.rf)?;
        let (sub_com, _) = geom.split_row(entry.rl)?;
        let upper = SubarrayId(sub_ref.index().min(sub_com.index()));
        let shared_start = (upper.index() + 1) % 2;
        let lanes = (geom.cols() - shared_start).div_ceil(2);
        for input in inputs {
            if input.len() != lanes {
                return Err(FcdramError::WidthMismatch {
                    expected: lanes,
                    got: input.len(),
                });
            }
        }

        let const_bit = if op.is_and_family() {
            Bit::One
        } else {
            Bit::Zero
        };
        let const_row = vec![const_bit; geom.cols()];
        for (i, row) in entry.first_rows.iter().enumerate() {
            let g = geom.join_row(sub_ref, *row)?;
            if i + 1 == entry.first_rows.len() {
                self.bender.frac(self.chip, bank, g)?;
            } else {
                self.bender
                    .write_row(self.chip, bank, g, const_row.clone())?;
            }
        }
        for (i, row) in entry.second_rows.iter().enumerate() {
            let g = geom.join_row(sub_com, *row)?;
            let data = match inputs.get(i) {
                Some(p) => p.expand_strided(geom.cols(), shared_start, 2),
                None => const_row.clone(),
            };
            self.bender.write_row(self.chip, bank, g, data)?;
        }

        let need = if op.is_inverted_terminal() {
            CsTerminal::Reference
        } else {
            CsTerminal::Compute
        };
        let outcome = self
            .bender
            .charge_share_masked(self.chip, bank, entry.rf, entry.rl, need)?;
        if !matches!(outcome.kind, OutcomeKind::Logic { .. }) {
            return Err(FcdramError::OpFailed {
                detail: format!("charge share produced {:?}", outcome.kind),
            });
        }

        let mut expected = PackedBits::splat(op.is_and_family(), lanes);
        for input in inputs {
            if op.is_and_family() {
                expected.and_assign(input);
            } else {
                expected.or_assign(input);
            }
        }
        if op.is_inverted_terminal() {
            expected.not_in_place();
        }

        let (result_sub, result_rows) = if op.is_inverted_terminal() {
            (sub_ref, &entry.first_rows)
        } else {
            (sub_com, &entry.second_rows)
        };
        let g = geom.join_row(result_sub, result_rows[0])?;
        let words = self
            .bender
            .read_row_packed(self.chip, bank, g, shared_start, 2)?;
        let read = PackedBits::from_words(words, lanes);
        let correct = read.count_matches(&expected);
        let role = if op.is_inverted_terminal() {
            CellRole::Reference
        } else {
            CellRole::Compute
        };
        Ok(FastLogicResult {
            op,
            n,
            expected,
            result: read,
            observed_success: correct as f64 / lanes.max(1) as f64,
            predicted_success: outcome.mean_success(role).unwrap_or(0.0),
        })
    }

    /// Fused value-path NOT: the same device-call sequence as
    /// [`Fcdram::execute_not_packed_value`], but the source write, an
    /// optional deferred row write carried over from the previous
    /// operation (`prelude`), and the copy/invert sequence ship as ONE
    /// command program instead of two-or-three. Every `seq_*` ends with
    /// a timing-respecting precharge, so concatenation preserves the
    /// executor's per-command device calls exactly — results and
    /// stochastic draws are bit-identical to the split path.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fcdram::execute_not_packed_value`].
    pub fn execute_not_packed_value_fused(
        &mut self,
        bank: BankId,
        entry: &PatternEntry,
        src_data: &[Bit],
        prelude: Option<(GlobalRow, Vec<Bit>)>,
    ) -> Result<FastNotResult> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        if src_data.len() != geom.cols() {
            return Err(FcdramError::WidthMismatch {
                expected: geom.cols(),
                got: src_data.len(),
            });
        }
        let (sub_f, _) = geom.split_row(entry.rf)?;
        let (sub_l, _) = geom.split_row(entry.rl)?;
        let upper = SubarrayId(sub_f.index().min(sub_l.index()));
        let shared_start = (upper.index() + 1) % 2;
        let lanes = (geom.cols() - shared_start).div_ceil(2);

        let mut b = self.bender.builder();
        if let Some((row, data)) = prelude {
            b.seq_write_row(bank, row, data);
        }
        b.seq_write_row(bank, entry.rf, src_data.to_vec());
        b.seq_copy_invert(bank, entry.rf, entry.rl);
        let program = b.finish();
        let exec = self.bender.execute(self.chip, &program)?;
        let outcome = exec
            .outcomes
            .into_iter()
            .map(|(_, o)| o)
            .next_back()
            .ok_or_else(|| FcdramError::OpFailed {
                detail: "fused NOT produced no outcome".into(),
            })?;
        let shape = match outcome.kind {
            OutcomeKind::Not { n_rf, n_rl, .. } => (n_rf, n_rl),
            ref k => {
                return Err(FcdramError::OpFailed {
                    detail: format!("NOT produced {k:?}"),
                })
            }
        };
        let mut expected = PackedBits::zeros(lanes);
        for (i, c) in (shared_start..geom.cols()).step_by(2).enumerate() {
            expected.set(i, !src_data[c].as_bool());
        }
        let g = geom.join_row(sub_l, entry.second_rows[0])?;
        let words = self
            .bender
            .read_row_packed(self.chip, bank, g, shared_start, 2)?;
        let read = PackedBits::from_words(words, lanes);
        let correct = read.count_matches(&expected);
        Ok(FastNotResult {
            shape,
            result: read,
            observed_success: correct as f64 / lanes.max(1) as f64,
            predicted_success: outcome.mean_success(CellRole::NotDst).unwrap_or(0.0),
        })
    }

    /// Fused value-path N-input logic: the same device-call sequence as
    /// [`Fcdram::execute_logic_packed_value`], but the reference-side
    /// constant writes, the `Frac`, the operand writes, an optional
    /// deferred row write from the previous operation (`prelude`), and
    /// the masked charge share ship as ONE command program instead of
    /// `2N (+1)` separate ones. Inputs are borrowed to spare the
    /// per-call operand clones of the split path. Results, success
    /// metrics, and stochastic draws are bit-identical to the split
    /// path (same per-command device calls; see
    /// [`Fcdram::execute_not_packed_value_fused`] for why).
    ///
    /// The charge-share mask is armed on the infrastructure and
    /// consumed by this program's (only) charge share, so the masking
    /// safety contract is the same as the split variant's.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fcdram::execute_logic_packed_value`].
    pub fn execute_logic_packed_value_fused(
        &mut self,
        bank: BankId,
        entry: &PatternEntry,
        op: LogicOp,
        inputs: &[&PackedBits],
        prelude: Option<(GlobalRow, Vec<Bit>)>,
    ) -> Result<FastLogicResult> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        let (n_ref, n_com) = entry.shape();
        if n_ref != n_com {
            return Err(FcdramError::OpFailed {
                detail: format!("logic needs an N:N entry, got {n_ref}:{n_com}"),
            });
        }
        let n = n_com;
        if inputs.is_empty() || inputs.len() > n {
            return Err(FcdramError::BadInputCount {
                n: inputs.len(),
                max: n,
            });
        }
        let (sub_ref, _) = geom.split_row(entry.rf)?;
        let (sub_com, _) = geom.split_row(entry.rl)?;
        let upper = SubarrayId(sub_ref.index().min(sub_com.index()));
        let shared_start = (upper.index() + 1) % 2;
        let lanes = (geom.cols() - shared_start).div_ceil(2);
        for input in inputs {
            if input.len() != lanes {
                return Err(FcdramError::WidthMismatch {
                    expected: lanes,
                    got: input.len(),
                });
            }
        }

        let const_bit = if op.is_and_family() {
            Bit::One
        } else {
            Bit::Zero
        };
        let const_row = vec![const_bit; geom.cols()];
        let mut b = self.bender.builder();
        if let Some((row, data)) = prelude {
            b.seq_write_row(bank, row, data);
        }
        for (i, row) in entry.first_rows.iter().enumerate() {
            let g = geom.join_row(sub_ref, *row)?;
            if i + 1 == entry.first_rows.len() {
                b.seq_frac(bank, g);
            } else {
                b.seq_write_row(bank, g, const_row.clone());
            }
        }
        for (i, row) in entry.second_rows.iter().enumerate() {
            let g = geom.join_row(sub_com, *row)?;
            let data = match inputs.get(i) {
                Some(p) => p.expand_strided(geom.cols(), shared_start, 2),
                None => const_row.clone(),
            };
            b.seq_write_row(bank, g, data);
        }
        b.seq_charge_share(bank, entry.rf, entry.rl);
        let program = b.finish();

        let need = if op.is_inverted_terminal() {
            CsTerminal::Reference
        } else {
            CsTerminal::Compute
        };
        self.bender.arm_cs_mask(need);
        let exec = self.bender.execute(self.chip, &program)?;
        let outcome = exec
            .outcomes
            .into_iter()
            .map(|(_, o)| o)
            .next_back()
            .ok_or_else(|| FcdramError::OpFailed {
                detail: "fused logic produced no outcome".into(),
            })?;
        if !matches!(outcome.kind, OutcomeKind::Logic { .. }) {
            return Err(FcdramError::OpFailed {
                detail: format!("charge share produced {:?}", outcome.kind),
            });
        }

        let mut expected = PackedBits::splat(op.is_and_family(), lanes);
        for input in inputs {
            if op.is_and_family() {
                expected.and_assign(input);
            } else {
                expected.or_assign(input);
            }
        }
        if op.is_inverted_terminal() {
            expected.not_in_place();
        }

        let (result_sub, result_rows) = if op.is_inverted_terminal() {
            (sub_ref, &entry.first_rows)
        } else {
            (sub_com, &entry.second_rows)
        };
        let g = geom.join_row(result_sub, result_rows[0])?;
        let words = self
            .bender
            .read_row_packed(self.chip, bank, g, shared_start, 2)?;
        let read = PackedBits::from_words(words, lanes);
        let correct = read.count_matches(&expected);
        let role = if op.is_inverted_terminal() {
            CellRole::Reference
        } else {
            CellRole::Compute
        };
        Ok(FastLogicResult {
            op,
            n,
            expected,
            result: read,
            observed_success: correct as f64 / lanes.max(1) as f64,
            predicted_success: outcome.mean_success(role).unwrap_or(0.0),
        })
    }

    /// Fast-path in-subarray majority: same command sequence as
    /// [`Fcdram::execute_maj`], reading back only the first raised
    /// row's shared columns (packed).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fcdram::execute_maj`].
    pub fn execute_maj_packed(
        &mut self,
        bank: BankId,
        entry: &InSubarrayEntry,
        inputs: &[Vec<Bit>],
        shared_start: usize,
    ) -> Result<FastMajResult> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        let n = entry.rows.len();
        if inputs.len() != n {
            return Err(FcdramError::BadInputCount {
                n: inputs.len(),
                max: n,
            });
        }
        for input in inputs {
            if input.len() != geom.cols() {
                return Err(FcdramError::WidthMismatch {
                    expected: geom.cols(),
                    got: input.len(),
                });
            }
        }
        let (sub, _) = geom.split_row(entry.rf)?;
        for (row, data) in entry.rows.iter().zip(inputs) {
            self.bender
                .write_row(self.chip, bank, geom.join_row(sub, *row)?, data.clone())?;
        }
        let outcome = self
            .bender
            .charge_share(self.chip, bank, entry.rf, entry.rl)?;
        if !matches!(outcome.kind, OutcomeKind::InSubarray { .. }) {
            return Err(FcdramError::OpFailed {
                detail: format!("in-subarray activation produced {:?}", outcome.kind),
            });
        }
        let lanes = (geom.cols() - shared_start.min(geom.cols())).div_ceil(2);
        let g = geom.join_row(sub, entry.rows[0])?;
        let words = self
            .bender
            .read_row_packed(self.chip, bank, g, shared_start, 2)?;
        Ok(FastMajResult {
            n,
            result: PackedBits::from_words(words, lanes),
            predicted_success: outcome.mean_success(CellRole::OffMaj).unwrap_or(0.0),
        })
    }

    /// In-DRAM bulk initialization (§2.2, RowClone lineage): writes
    /// `data` to the entry's first row once, then lets a single
    /// violated-timing double activation broadcast it to *all* raised
    /// rows of the set — one row write amortized over `2^k` rows.
    ///
    /// Returns the per-row copy accuracy (fraction of cells holding
    /// `data` across the raised rows, excluding the source).
    pub fn broadcast(
        &mut self,
        bank: BankId,
        entry: &InSubarrayEntry,
        data: &[Bit],
    ) -> Result<f64> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        if data.len() != geom.cols() {
            return Err(FcdramError::WidthMismatch {
                expected: geom.cols(),
                got: data.len(),
            });
        }
        let (sub, loc_f) = geom.split_row(entry.rf)?;
        self.bender
            .write_row(self.chip, bank, entry.rf, data.to_vec())?;
        let outcome = self
            .bender
            .copy_invert(self.chip, bank, entry.rf, entry.rl)?;
        if !matches!(outcome.kind, OutcomeKind::InSubarray { .. }) {
            return Err(FcdramError::OpFailed {
                detail: format!("broadcast produced {:?}", outcome.kind),
            });
        }
        let mut correct = 0usize;
        let mut total = 0usize;
        for row in entry.rows.iter().filter(|r| **r != loc_f) {
            let got = self
                .bender
                .read_row(self.chip, bank, geom.join_row(sub, *row)?)?;
            for c in 0..geom.cols() {
                total += 1;
                if got[c] == data[c] {
                    correct += 1;
                }
            }
        }
        Ok(correct as f64 / total.max(1) as f64)
    }

    /// Executes an in-subarray N-row majority (the Ambit/ComputeDRAM
    /// baseline the paper builds on, §2.2): all raised rows
    /// charge-share and the sense amplifiers resolve the per-column
    /// majority, which overwrites every raised row.
    ///
    /// Unlike the cross-subarray logic operations, in-subarray MAJ
    /// computes on *every* column (both bitline halves see a
    /// precharged reference). With constant rows it expresses AND/OR:
    /// `MAJ4(A, B, 1, 0) = AND(A, B)`, `MAJ4(A, B, 1, 1) = OR(A, B)`.
    pub fn execute_maj(
        &mut self,
        bank: BankId,
        entry: &InSubarrayEntry,
        inputs: &[Vec<Bit>],
    ) -> Result<MajReport> {
        let geom = *self.bender.module_mut().chip_mut(self.chip).geometry();
        let n = entry.rows.len();
        if inputs.len() != n {
            return Err(FcdramError::BadInputCount {
                n: inputs.len(),
                max: n,
            });
        }
        for input in inputs {
            if input.len() != geom.cols() {
                return Err(FcdramError::WidthMismatch {
                    expected: geom.cols(),
                    got: input.len(),
                });
            }
        }
        let (sub, _) = geom.split_row(entry.rf)?;
        for (row, data) in entry.rows.iter().zip(inputs) {
            self.bender
                .write_row(self.chip, bank, geom.join_row(sub, *row)?, data.clone())?;
        }
        let outcome = self
            .bender
            .charge_share(self.chip, bank, entry.rf, entry.rl)?;
        if !matches!(outcome.kind, OutcomeKind::InSubarray { .. }) {
            return Err(FcdramError::OpFailed {
                detail: format!("in-subarray activation produced {:?}", outcome.kind),
            });
        }
        let expected: Vec<Bit> = (0..geom.cols())
            .map(|c| {
                let ones = inputs.iter().filter(|r| r[c].as_bool()).count();
                Bit::from(2 * ones > n)
            })
            .collect();
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut first_read: Option<Vec<Bit>> = None;
        for row in &entry.rows {
            let data = self
                .bender
                .read_row(self.chip, bank, geom.join_row(sub, *row)?)?;
            for c in 0..geom.cols() {
                total += 1;
                if data[c] == expected[c] {
                    correct += 1;
                }
            }
            if first_read.is_none() {
                first_read = Some(data);
            }
        }
        let predicted = outcome.mean_success(CellRole::OffMaj).unwrap_or(0.0);
        Ok(MajReport {
            n,
            expected,
            result: first_read.unwrap_or_default(),
            observed_success: correct as f64 / total.max(1) as f64,
            predicted_success: predicted,
            outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::config::table1;

    fn fc() -> Fcdram {
        let cfg = table1().into_iter().next().unwrap().with_modeled_cols(64);
        Fcdram::new(cfg)
    }

    fn pattern(seed: u64, n: usize) -> Vec<Bit> {
        (0..n)
            .map(|c| {
                Bit::from(
                    dram_core::math::hash_to_unit(dram_core::math::mix2(seed, c as u64)) < 0.5,
                )
            })
            .collect()
    }

    fn map_for(fc: &mut Fcdram) -> ActivationMap {
        fc.discover(BankId(0), (SubarrayId(0), SubarrayId(1)), 8192)
            .unwrap()
    }

    #[test]
    fn not_through_map_negates() {
        let mut fc = fc();
        let map = map_for(&mut fc);
        let entry = map
            .find_dst(1)
            .first()
            .cloned()
            .cloned()
            .or_else(|| map.find_dst(2).first().cloned().cloned())
            .expect("a small NOT pattern");
        let src = pattern(11, fc.cols());
        let report = fc.execute_not(BankId(0), &entry, &src).unwrap();
        assert!(
            report.observed_success > 0.9,
            "observed {}",
            report.observed_success
        );
        assert!(
            report.predicted_success > 0.9,
            "predicted {}",
            report.predicted_success
        );
        assert_eq!(report.shared_cols.len(), fc.cols() / 2);
    }

    #[test]
    fn and_2_through_map() {
        let mut fc = fc();
        let map = map_for(&mut fc);
        let entry = map.find_nn(2).expect("2:2 entry").clone();
        let a = pattern(1, fc.cols());
        let b = pattern(2, fc.cols());
        let report = fc
            .execute_logic(BankId(0), &entry, LogicOp::And, &[a.clone(), b.clone()])
            .unwrap();
        assert_eq!(report.n, 2);
        // Expected vector is the bitwise AND on shared columns.
        for (i, c) in report.shared_cols.iter().enumerate() {
            assert_eq!(
                report.expected[i],
                Bit::from(a[*c].as_bool() && b[*c].as_bool())
            );
        }
        assert!(
            report.observed_success > 0.55,
            "observed {}",
            report.observed_success
        );
    }

    #[test]
    fn nand_is_inverted_and() {
        let mut fc = fc();
        let map = map_for(&mut fc);
        let entry = map.find_nn(2).expect("2:2 entry").clone();
        let a = pattern(3, fc.cols());
        let b = pattern(4, fc.cols());
        let and = fc
            .execute_logic(BankId(0), &entry, LogicOp::And, &[a.clone(), b.clone()])
            .unwrap();
        let nand = fc
            .execute_logic(BankId(0), &entry, LogicOp::Nand, &[a, b])
            .unwrap();
        for (x, y) in and.expected.iter().zip(&nand.expected) {
            assert_eq!(x.not(), *y);
        }
    }

    #[test]
    fn or_identity_padding() {
        let mut fc = fc();
        let map = map_for(&mut fc);
        let entry = map.find_nn(4).expect("4:4 entry").clone();
        // Three inputs into a 4:4 pattern: padded with all-0 for OR.
        let ins = vec![
            pattern(5, fc.cols()),
            pattern(6, fc.cols()),
            pattern(7, fc.cols()),
        ];
        let report = fc
            .execute_logic(BankId(0), &entry, LogicOp::Or, &ins)
            .unwrap();
        for (i, c) in report.shared_cols.iter().enumerate() {
            let expect = ins.iter().any(|r| r[*c].as_bool());
            assert_eq!(report.expected[i], Bit::from(expect));
        }
        assert!(report.observed_success > 0.5);
    }

    #[test]
    fn logic_rejects_mismatched_shape() {
        let mut fc = fc();
        let map = map_for(&mut fc);
        // Find an N:2N entry if one exists; it must be rejected.
        if let Some(entry) = map
            .shapes()
            .into_iter()
            .find(|(f, l)| f != l)
            .and_then(|(f, l)| map.find(f, l).first().cloned())
        {
            let ins = vec![pattern(1, fc.cols()); 2];
            let err = fc
                .execute_logic(BankId(0), &entry, LogicOp::And, &ins)
                .unwrap_err();
            assert!(matches!(err, FcdramError::OpFailed { .. }));
        }
    }

    #[test]
    fn logic_rejects_too_many_inputs() {
        let mut fc = fc();
        let map = map_for(&mut fc);
        let entry = map.find_nn(2).expect("2:2 entry").clone();
        let ins = vec![pattern(1, fc.cols()); 3];
        let err = fc
            .execute_logic(BankId(0), &entry, LogicOp::And, &ins)
            .unwrap_err();
        assert!(matches!(err, FcdramError::BadInputCount { .. }));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut fc = fc();
        let map = map_for(&mut fc);
        let entry = map.find_nn(2).expect("2:2 entry").clone();
        let err = fc
            .execute_not(BankId(0), &entry, &[Bit::One; 3])
            .unwrap_err();
        assert!(matches!(err, FcdramError::WidthMismatch { .. }));
    }

    #[test]
    fn rowclone_copies_within_subarray() {
        let mut fc = fc();
        let src_data = pattern(21, fc.cols());
        fc.write_row(BankId(0), GlobalRow(5), src_data.clone())
            .unwrap();
        // Scan for a working clone destination in the same subarray.
        for dst in [261usize, 266, 271, 280, 300, 320, 350] {
            if let Ok(out) = fc.rowclone(BankId(0), GlobalRow(5), GlobalRow(dst)) {
                if matches!(out.kind, OutcomeKind::InSubarray { rows: 2 }) {
                    let got = fc.read_row(BankId(0), GlobalRow(dst)).unwrap();
                    let same = got.iter().zip(&src_data).filter(|(a, b)| a == b).count();
                    assert!(same * 10 >= fc.cols() * 9);
                    return;
                }
            }
        }
        panic!("no clean rowclone pair found");
    }

    #[test]
    fn broadcast_initializes_many_rows_from_one_write() {
        let mut fc = fc();
        let sets = crate::mapping::discover_in_subarray(
            fc.bender_mut(),
            dram_core::ChipId(0),
            BankId(0),
            SubarrayId(4),
            8192,
            4,
        )
        .unwrap();
        // Prefer a wide set: one write initializes many rows.
        let entry = sets
            .iter()
            .rev()
            .find(|(n, v)| **n >= 4 && !v.is_empty())
            .map(|(_, v)| v[0].clone())
            .expect("a wide in-subarray set");
        let data = pattern(77, fc.cols());
        let accuracy = fc.broadcast(BankId(0), &entry, &data).unwrap();
        assert!(accuracy > 0.95, "broadcast accuracy {accuracy}");
        assert!(entry.rows.len() >= 4);
    }

    #[test]
    fn in_subarray_maj_computes_majority() {
        let mut fc = fc();
        let sets = crate::mapping::discover_in_subarray(
            fc.bender_mut(),
            dram_core::ChipId(0),
            BankId(0),
            SubarrayId(2),
            8192,
            4,
        )
        .unwrap();
        let entry = sets
            .get(&4)
            .and_then(|v| v.first())
            .expect("a 4-row in-subarray set")
            .clone();
        let cols = fc.cols();
        let a = pattern(31, cols);
        let b = pattern(32, cols);
        let ones = vec![Bit::One; cols];
        let zeros = vec![Bit::Zero; cols];
        // MAJ4(A, B, 1, 0) = AND(A, B).
        let report = fc
            .execute_maj(BankId(0), &entry, &[a.clone(), b.clone(), ones, zeros])
            .unwrap();
        assert_eq!(report.n, 4);
        for c in 0..cols {
            let expect = Bit::from(a[c].as_bool() && b[c].as_bool());
            assert_eq!(report.expected[c], expect, "col {c}");
        }
        assert!(report.observed_success > 0.6, "{}", report.observed_success);
        assert!(
            report.predicted_success > 0.6,
            "{}",
            report.predicted_success
        );
    }

    #[test]
    fn maj_rejects_wrong_input_count() {
        let mut fc = fc();
        let sets = crate::mapping::discover_in_subarray(
            fc.bender_mut(),
            dram_core::ChipId(0),
            BankId(0),
            SubarrayId(2),
            4096,
            2,
        )
        .unwrap();
        if let Some(entry) = sets.values().next().and_then(|v| v.first()) {
            let ins = vec![pattern(1, fc.cols())];
            if entry.rows.len() != 1 {
                let err = fc.execute_maj(BankId(0), entry, &ins).unwrap_err();
                assert!(matches!(err, FcdramError::BadInputCount { .. }));
            }
        }
    }

    #[test]
    fn samsung_part_fails_logic_gracefully() {
        let cfg = table1()
            .into_iter()
            .find(|m| m.manufacturer == dram_core::Manufacturer::Samsung)
            .unwrap()
            .with_modeled_cols(32);
        let mut fc = Fcdram::new(cfg);
        // Samsung: sequential only ⇒ charge share unsupported.
        let entry = PatternEntry {
            rf: GlobalRow(0),
            rl: GlobalRow(512),
            first_rows: vec![dram_core::LocalRow(0)],
            second_rows: vec![dram_core::LocalRow(0)],
            kind: dram_core::PatternKind::NN,
        };
        let ins = vec![vec![Bit::One; 32]];
        let err = fc
            .execute_logic(BankId(0), &entry, LogicOp::And, &ins)
            .unwrap_err();
        assert!(matches!(err, FcdramError::OpFailed { .. }));
    }
}
