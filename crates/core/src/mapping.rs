//! Reverse engineering the chip: subarray boundaries and the
//! `N_RF:N_RL` activation patterns available between a pair of
//! neighboring subarrays (§4 of the paper).
//!
//! Discovery offers two modes:
//!
//! * **shape scan** — queries the activation produced for each
//!   `(R_F, R_L)` address pair and records which rows would be raised.
//!   This is the exhaustive mode used for coverage statistics (Fig. 5);
//!   it corresponds to the paper's full 409,600-combination sweeps.
//! * **command-level validation** — for a subset of pairs, runs the
//!   §4.2 write–read methodology over the DDR4 command interface:
//!   initialize candidate rows with pattern A, issue the violated
//!   sequence followed by a `WR` of pattern B, then read candidates
//!   back. Rows holding B were raised in `R_L`'s subarray; rows
//!   holding ¬B on the shared column half were raised in `R_F`'s.
//!   This cross-checks the shape scan end-to-end.

use crate::error::{FcdramError, Result};
use bender::Bender;
use dram_core::{
    is_shared_col, BankId, Bit, ChipId, GlobalRow, LocalRow, MultiActivation, PatternKind,
    SubarrayId,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One usable activation pattern: the address pair plus the row sets
/// it raises.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternEntry {
    /// First activated row address.
    pub rf: GlobalRow,
    /// Second activated row address.
    pub rl: GlobalRow,
    /// Rows raised in `rf`'s subarray.
    pub first_rows: Vec<LocalRow>,
    /// Rows raised in `rl`'s subarray.
    pub second_rows: Vec<LocalRow>,
    /// Activation family.
    pub kind: PatternKind,
}

impl PatternEntry {
    /// `(N_RF, N_RL)` shape of this entry.
    pub fn shape(&self) -> (usize, usize) {
        (self.first_rows.len(), self.second_rows.len())
    }
}

/// Coverage of one activation shape across the scanned address pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Rows raised in `R_F`'s subarray.
    pub n_rf: usize,
    /// Rows raised in `R_L`'s subarray.
    pub n_rl: usize,
    /// Pattern family.
    pub kind: PatternKind,
    /// Fraction of all scanned pairs producing this shape.
    pub coverage: f64,
}

/// The discovered activation behaviour of one neighboring subarray
/// pair in one bank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivationMap {
    /// Bank scanned.
    pub bank: BankId,
    /// The neighboring subarray pair `(upper, lower)`.
    pub pair: (SubarrayId, SubarrayId),
    #[serde(with = "tuple_keyed_map")]
    entries: BTreeMap<(usize, usize), Vec<PatternEntry>>,
    #[serde(with = "tuple_keyed_map")]
    shape_counts: BTreeMap<(usize, usize, bool), usize>,
    scanned: usize,
}

/// Serializes `BTreeMap`s whose keys are tuples as sequences of
/// `(key, value)` pairs, so they survive formats (like JSON) that only
/// allow string object keys.
mod tuple_keyed_map {
    use serde::{Content, Deserialize, Error, Serialize};
    use std::collections::BTreeMap;

    pub fn serialize<K, V>(map: &BTreeMap<K, V>) -> Content
    where
        K: Serialize + Ord,
        V: Serialize,
    {
        Content::Array(
            map.iter()
                .map(|(k, v)| Content::Array(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }

    pub fn deserialize<K, V>(c: &Content) -> Result<BTreeMap<K, V>, Error>
    where
        K: Deserialize + Ord,
        V: Deserialize,
    {
        let pairs: Vec<(K, V)> = Vec::from_content(c)?;
        Ok(pairs.into_iter().collect())
    }
}

impl ActivationMap {
    /// Scans `budget` address pairs between the neighboring subarrays
    /// `pair` of `bank` and records up to `cap_per_shape` usable
    /// entries per shape.
    ///
    /// # Errors
    ///
    /// Fails if the subarrays are not neighbors or indices are invalid.
    pub fn discover(
        bender: &mut Bender,
        chip: ChipId,
        bank: BankId,
        pair: (SubarrayId, SubarrayId),
        budget: usize,
        cap_per_shape: usize,
    ) -> Result<Self> {
        let dev = bender.module_mut().chip_mut(chip);
        let geom = *dev.geometry();
        geom.check_bank(bank)?;
        geom.check_subarray(pair.0)?;
        geom.check_subarray(pair.1)?;
        if !geom.are_neighbors(pair.0, pair.1) {
            return Err(FcdramError::OpFailed {
                detail: format!("subarrays {} and {} are not neighbors", pair.0, pair.1),
            });
        }
        let rows = geom.rows_per_subarray();
        let total = rows * rows;
        let budget = budget.min(total).max(1);
        let mut entries: BTreeMap<(usize, usize), Vec<PatternEntry>> = BTreeMap::new();
        let mut shape_counts: BTreeMap<(usize, usize, bool), usize> = BTreeMap::new();
        let mut scanned = 0usize;
        // Deterministic pseudo-random walk through the pair space so
        // the retained entries sample all row positions (the stored
        // entries feed the distance-dependence experiments, which need
        // sources and destinations across the whole subarray).
        while scanned < budget {
            let idx = (dram_core::math::mix3(0x5CA9, scanned as u64, rows as u64) % total as u64)
                as usize;
            let f = idx / rows;
            let l = idx % rows;
            let rf = geom.join_row(pair.0, LocalRow(f))?;
            let rl = geom.join_row(pair.1, LocalRow(l))?;
            if let MultiActivation::CrossSubarray {
                first_rows,
                second_rows,
                kind,
                simultaneous: true,
            } = dev.decoder().activation(&geom, rf, rl)
            {
                let shape = (first_rows.len(), second_rows.len());
                *shape_counts
                    .entry((shape.0, shape.1, kind == PatternKind::N2N))
                    .or_insert(0) += 1;
                let list = entries.entry(shape).or_default();
                if list.len() < cap_per_shape {
                    list.push(PatternEntry {
                        rf,
                        rl,
                        first_rows,
                        second_rows,
                        kind,
                    });
                }
            }
            scanned += 1;
        }
        Ok(ActivationMap {
            bank,
            pair,
            entries,
            shape_counts,
            scanned,
        })
    }

    /// Number of address pairs scanned.
    pub fn scanned(&self) -> usize {
        self.scanned
    }

    /// Usable entries for an exact `(N_RF, N_RL)` shape.
    pub fn find(&self, n_rf: usize, n_rl: usize) -> &[PatternEntry] {
        self.entries
            .get(&(n_rf, n_rl))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// First entry of the `N:N` shape for `n`, if discovered.
    pub fn find_nn(&self, n: usize) -> Option<&PatternEntry> {
        self.find(n, n).first()
    }

    /// Entries whose destination-row count is `n_rl` (any `N_RF`),
    /// smallest total load first — the preferred NOT configurations.
    pub fn find_dst(&self, n_rl: usize) -> Vec<&PatternEntry> {
        let mut v: Vec<&PatternEntry> = self
            .entries
            .iter()
            .filter(|((_, l), _)| *l == n_rl)
            .flat_map(|(_, es)| es.iter())
            .collect();
        v.sort_by_key(|e| e.first_rows.len() + e.second_rows.len());
        v
    }

    /// All discovered shapes.
    pub fn shapes(&self) -> Vec<(usize, usize)> {
        self.entries.keys().copied().collect()
    }

    /// Coverage rows (Fig. 5): fraction of scanned pairs per shape.
    pub fn coverage(&self) -> Vec<CoverageRow> {
        self.shape_counts
            .iter()
            .map(|((n_rf, n_rl, n2n), count)| CoverageRow {
                n_rf: *n_rf,
                n_rl: *n_rl,
                kind: if *n2n {
                    PatternKind::N2N
                } else {
                    PatternKind::NN
                },
                coverage: *count as f64 / self.scanned.max(1) as f64,
            })
            .collect()
    }

    /// Total fraction of scanned pairs that produced any simultaneous
    /// activation.
    pub fn total_coverage(&self) -> f64 {
        self.shape_counts.values().sum::<usize>() as f64 / self.scanned.max(1) as f64
    }
}

/// One usable in-subarray multi-row activation (the Ambit /
/// ComputeDRAM / QUAC lineage: all raised rows charge-share against
/// their precharged reference bitlines, computing a majority).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InSubarrayEntry {
    /// First activated row address.
    pub rf: GlobalRow,
    /// Second activated row address.
    pub rl: GlobalRow,
    /// Rows raised in the subarray (sorted).
    pub rows: Vec<LocalRow>,
}

/// Scans `budget` same-subarray `(R_F, R_L)` pairs of `subarray` and
/// returns up to `cap` usable entries per raised-set size.
///
/// Set sizes are powers of two on simultaneous-capable parts; the
/// four-row sets support Ambit-style AND/OR via majority with constant
/// rows (e.g. `MAJ4(A, B, 1, 0) = AND(A, B)`).
pub fn discover_in_subarray(
    bender: &mut Bender,
    chip: ChipId,
    bank: BankId,
    subarray: SubarrayId,
    budget: usize,
    cap: usize,
) -> Result<BTreeMap<usize, Vec<InSubarrayEntry>>> {
    let dev = bender.module_mut().chip_mut(chip);
    let geom = *dev.geometry();
    geom.check_bank(bank)?;
    geom.check_subarray(subarray)?;
    let rows = geom.rows_per_subarray();
    let total = rows * rows;
    let mut out: BTreeMap<usize, Vec<InSubarrayEntry>> = BTreeMap::new();
    for i in 0..budget.min(total) {
        let idx = (dram_core::math::mix3(0x1A5B, i as u64, rows as u64) % total as u64) as usize;
        let (f, l) = (idx / rows, idx % rows);
        if f == l {
            continue;
        }
        let rf = geom.join_row(subarray, LocalRow(f))?;
        let rl = geom.join_row(subarray, LocalRow(l))?;
        if let MultiActivation::SameSubarray { rows: raised } =
            dev.decoder().activation(&geom, rf, rl)
        {
            let list = out.entry(raised.len()).or_default();
            if list.len() < cap {
                list.push(InSubarrayEntry {
                    rf,
                    rl,
                    rows: raised,
                });
            }
        }
    }
    Ok(out)
}

/// Discovers subarray boundaries in a bank through RowClone probing
/// (§4.2): a copy succeeds only within a subarray, and a cross-copy
/// inverts the shared half — so scanning `(src, src + k)` pairs at
/// growing `k` reveals where the boundary falls.
///
/// Returns the discovered subarray size in rows. `probe_rows` controls
/// how many source rows per candidate boundary are tested.
pub fn discover_subarray_rows(
    bender: &mut Bender,
    chip: ChipId,
    bank: BankId,
    probe_rows: usize,
) -> Result<usize> {
    let geom = *bender.module_mut().chip_mut(chip).geometry();
    let cols = geom.cols();
    let rows = geom.rows_per_subarray();
    // Candidate power-of-two sizes from 64 up to the bank size.
    let mut candidate = 64usize;
    let pattern: Vec<Bit> = (0..cols).map(|c| Bit::from(c % 3 == 0)).collect();
    let inverse: Vec<Bit> = pattern.iter().map(|b| b.not()).collect();
    while candidate <= rows {
        // Probe across the candidate boundary: src just below it,
        // dst just above. If every cross-boundary copy behaves like a
        // NOT (inverted shared half) or fails, the boundary is real.
        let mut boundary_like = 0usize;
        let mut probes = 0usize;
        for p in 0..probe_rows.max(1) {
            let src = GlobalRow(candidate - 1 - (p % 8));
            let dst = GlobalRow(candidate + (p * 7) % 16);
            if geom.check_row(dst).is_err() {
                continue;
            }
            bender.write_row(chip, bank, src, pattern.clone())?;
            bender.write_row(chip, bank, dst, inverse.clone())?;
            let _ = bender.copy_invert(chip, bank, src, dst)?;
            let got = bender.read_row(chip, bank, dst)?;
            probes += 1;
            // Same-subarray copy ⇒ dst == pattern on (nearly) all
            // columns. Cross-subarray ⇒ inverted on the shared half.
            let same = got.iter().zip(&pattern).filter(|(a, b)| a == b).count();
            if same < cols * 9 / 10 {
                boundary_like += 1;
            }
        }
        if probes > 0 && boundary_like * 2 > probes {
            return Ok(candidate);
        }
        candidate *= 2;
    }
    Err(FcdramError::OpFailed {
        detail: "no subarray boundary found".into(),
    })
}

/// Command-level validation of a pattern entry using the §4.2
/// write–read methodology. Returns the inferred `(first, second)` row
/// sets.
pub fn validate_entry(
    bender: &mut Bender,
    chip: ChipId,
    bank: BankId,
    entry: &PatternEntry,
) -> Result<(Vec<LocalRow>, Vec<LocalRow>)> {
    let geom = *bender.module_mut().chip_mut(chip).geometry();
    let cols = geom.cols();
    let (sub_f, loc_f) = geom.split_row(entry.rf)?;
    let (sub_l, loc_l) = geom.split_row(entry.rl)?;
    let upper = SubarrayId(sub_f.index().min(sub_l.index()));

    // Candidate rows: every address reachable by merging predecode
    // groups of the two addresses, in both sections.
    let candidates = merge_candidates(loc_f, loc_l);
    let pattern_a: Vec<Bit> = (0..cols).map(|c| Bit::from(c % 2 == 0)).collect();
    let pattern_b: Vec<Bit> = (0..cols).map(|c| Bit::from(c % 4 < 2)).collect();
    debug_assert_ne!(pattern_a, pattern_b);

    // 1. Initialize candidates in both subarrays with pattern A.
    for sub in [sub_f, sub_l] {
        for r in &candidates {
            bender.write_row(chip, bank, geom.join_row(sub, *r)?, pattern_a.clone())?;
        }
    }

    // 2. Violated sequence + WR of pattern B + precharge.
    let mut pb = bender.builder();
    pb.act(bank, entry.rf)
        .wait_ns(35.0)
        .pre(bank)
        .act(bank, entry.rl)
        .wait_ns(14.0)
        .wr(bank, pattern_b.clone())
        .wait_ns(35.0)
        .pre(bank);
    let program = pb.build();
    bender.execute(chip, &program)?;

    // 3. Read candidates back and classify.
    let mut first = Vec::new();
    let mut second = Vec::new();
    for r in &candidates {
        let got_l = bender.read_row(chip, bank, geom.join_row(sub_l, *r)?)?;
        if mostly_equal(&got_l, &pattern_b, cols) {
            second.push(*r);
        }
        let got_f = bender.read_row(chip, bank, geom.join_row(sub_f, *r)?)?;
        let inverted_on_shared = (0..cols)
            .filter(|c| is_shared_col(upper, dram_core::Col(*c)))
            .filter(|c| got_f[*c] == pattern_b[*c].not())
            .count();
        if inverted_on_shared * 10 > cols * 4 {
            // ≥80% of the shared half inverted.
            first.push(*r);
        }
    }
    Ok((first, second))
}

/// All local rows reachable by merging any subset of differing 2-bit
/// predecode groups and the section bit of two addresses.
fn merge_candidates(a: LocalRow, b: LocalRow) -> Vec<LocalRow> {
    let (a, b) = (a.index(), b.index());
    let mut groups: Vec<usize> = Vec::new();
    for g in 0..4 {
        if ((a >> (2 * g)) ^ (b >> (2 * g))) & 0b11 != 0 {
            groups.push(g);
        }
    }
    let sections: Vec<usize> = if a >> 8 == b >> 8 {
        vec![a >> 8]
    } else {
        vec![0, 1]
    };
    let mut out = Vec::new();
    for mask in 0..(1usize << groups.len()) {
        for base in [a, b] {
            let mut addr = base & 0xFF;
            for (i, g) in groups.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    let other = if base == a { b } else { a };
                    addr = (addr & !(0b11 << (2 * g))) | (other & (0b11 << (2 * g)));
                }
            }
            for s in &sections {
                out.push(LocalRow(addr | (s << 8)));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn mostly_equal(a: &[Bit], b: &[Bit], cols: usize) -> bool {
    a.iter().zip(b).filter(|(x, y)| x == y).count() * 10 >= cols * 9
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::config::table1;
    use dram_core::DramModule;

    fn bender() -> Bender {
        let cfg = table1().into_iter().next().unwrap().with_modeled_cols(32);
        Bender::new(DramModule::new(cfg))
    }

    #[test]
    fn discover_finds_patterns() {
        let mut b = bender();
        let map = ActivationMap::discover(
            &mut b,
            ChipId(0),
            BankId(0),
            (SubarrayId(0), SubarrayId(1)),
            4096,
            8,
        )
        .unwrap();
        assert_eq!(map.scanned(), 4096);
        assert!(
            map.total_coverage() > 0.7,
            "coverage {}",
            map.total_coverage()
        );
        // The dominant shapes of Fig. 5 must appear.
        assert!(
            !map.find(8, 8).is_empty(),
            "8:8 missing: {:?}",
            map.shapes()
        );
        assert!(!map.find(16, 16).is_empty(), "16:16 missing");
        assert!(map.find_nn(4).is_some());
    }

    #[test]
    fn coverage_rows_sum_to_total() {
        let mut b = bender();
        let map = ActivationMap::discover(
            &mut b,
            ChipId(0),
            BankId(0),
            (SubarrayId(2), SubarrayId(3)),
            2048,
            4,
        )
        .unwrap();
        let sum: f64 = map.coverage().iter().map(|r| r.coverage).sum();
        assert!((sum - map.total_coverage()).abs() < 1e-9);
    }

    #[test]
    fn non_neighbor_pair_rejected() {
        let mut b = bender();
        let err = ActivationMap::discover(
            &mut b,
            ChipId(0),
            BankId(0),
            (SubarrayId(0), SubarrayId(2)),
            64,
            4,
        )
        .unwrap_err();
        assert!(matches!(err, FcdramError::OpFailed { .. }));
    }

    #[test]
    fn find_dst_prefers_light_patterns() {
        let mut b = bender();
        let map = ActivationMap::discover(
            &mut b,
            ChipId(0),
            BankId(0),
            (SubarrayId(0), SubarrayId(1)),
            8192,
            8,
        )
        .unwrap();
        let v = map.find_dst(16);
        if v.len() >= 2 {
            let loads: Vec<usize> = v
                .iter()
                .map(|e| e.first_rows.len() + e.second_rows.len())
                .collect();
            assert!(loads.windows(2).all(|w| w[0] <= w[1]), "{loads:?}");
        }
    }

    #[test]
    fn subarray_boundary_discovery_matches_geometry() {
        let mut b = bender();
        let rows = discover_subarray_rows(&mut b, ChipId(0), BankId(1), 8).unwrap();
        assert_eq!(rows, 512);
    }

    #[test]
    fn command_level_validation_matches_oracle() {
        let mut b = bender();
        let map = ActivationMap::discover(
            &mut b,
            ChipId(0),
            BankId(0),
            (SubarrayId(0), SubarrayId(1)),
            2048,
            4,
        )
        .unwrap();
        // Validate a small-shape entry end-to-end over commands.
        let entry = map
            .shapes()
            .into_iter()
            .filter_map(|(f, l)| map.find(f, l).first())
            .min_by_key(|e| e.first_rows.len() + e.second_rows.len())
            .cloned()
            .expect("at least one entry");
        let (first, second) = validate_entry(&mut b, ChipId(0), BankId(0), &entry).unwrap();
        assert_eq!(first, entry.first_rows, "first rows disagree");
        assert_eq!(second, entry.second_rows, "second rows disagree");
    }

    #[test]
    fn merge_candidates_contains_both_addresses() {
        let c = merge_candidates(LocalRow(0b0_1010_1010), LocalRow(0b1_0101_0101));
        assert!(c.contains(&LocalRow(0b0_1010_1010)));
        assert!(c.contains(&LocalRow(0b1_0101_0101)));
        // 4 differing groups + section ⇒ 2^4 * 2 = 32 candidates.
        assert_eq!(c.len(), 32);
    }
}
