//! Error type for the fcdram library.

use bender::BenderError;
use dram_core::DramError;
use std::error::Error as StdError;
use std::fmt;

/// Errors raised by the fcdram library.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FcdramError {
    /// The testing infrastructure failed.
    Bender(BenderError),
    /// No activation pattern of the requested shape was discovered on
    /// this chip (not every chip supports every N_RF:N_RL shape).
    NoPattern {
        /// Requested rows in the first subarray.
        n_rf: usize,
        /// Requested rows in the second subarray.
        n_rl: usize,
    },
    /// The operation input count is not expressible (must be 2..=16 on
    /// N:N-capable parts; this chip may support less).
    BadInputCount {
        /// Requested inputs.
        n: usize,
        /// Maximum this chip supports.
        max: usize,
    },
    /// A data buffer did not match the expected width.
    WidthMismatch {
        /// Expected number of bits.
        expected: usize,
        /// Provided number of bits.
        got: usize,
    },
    /// The engine ran out of free rows for allocation.
    OutOfRows,
    /// The operation produced no usable outcome (e.g. the chip ignored
    /// the violating sequence — Micron behaviour).
    OpFailed {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for FcdramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FcdramError::Bender(e) => write!(f, "infrastructure error: {e}"),
            FcdramError::NoPattern { n_rf, n_rl } => {
                write!(
                    f,
                    "no {n_rf}:{n_rl} activation pattern discovered on this chip"
                )
            }
            FcdramError::BadInputCount { n, max } => {
                write!(f, "unsupported input count {n} (chip supports up to {max})")
            }
            FcdramError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "data width mismatch: expected {expected} bits, got {got}"
                )
            }
            FcdramError::OutOfRows => write!(f, "no free rows left for allocation"),
            FcdramError::OpFailed { detail } => write!(f, "operation failed: {detail}"),
        }
    }
}

impl StdError for FcdramError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            FcdramError::Bender(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BenderError> for FcdramError {
    fn from(e: BenderError) -> Self {
        FcdramError::Bender(e)
    }
}

impl From<DramError> for FcdramError {
    fn from(e: DramError) -> Self {
        FcdramError::Bender(BenderError::Device(e))
    }
}

/// Result alias for library operations.
pub type Result<T> = std::result::Result<T, FcdramError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(FcdramError::NoPattern { n_rf: 8, n_rl: 16 }
            .to_string()
            .contains("8:16"));
        assert!(FcdramError::BadInputCount { n: 3, max: 16 }
            .to_string()
            .contains('3'));
        assert!(FcdramError::OutOfRows.to_string().contains("free rows"));
    }

    #[test]
    fn conversions() {
        let d = DramError::IllegalCommand { detail: "x".into() };
        let e: FcdramError = d.into();
        assert!(matches!(e, FcdramError::Bender(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FcdramError>();
    }
}
