//! Bulk bitwise engine: a user-facing vector API over the in-DRAM
//! operations.
//!
//! Vectors live on the *shared column half* of rows in the compute
//! subarray of a discovered pair, so every operation is a genuine
//! in-DRAM bulk operation over `cols/2` bits. An optional repetition
//! mode majority-votes k executions per operation, trading bandwidth
//! for reliability (the paper's future-work direction).

use crate::error::{FcdramError, Result};
use crate::mapping::{ActivationMap, InSubarrayEntry, PatternEntry};
use crate::ops::Fcdram;
use crate::packed::PackedBits;
use dram_core::{BankId, Bit, GlobalRow, LocalRow, LogicOp, SimFidelity, SubarrayId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Handle to an allocated in-DRAM bit vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVecHandle {
    row: GlobalRow,
    len: usize,
}

impl BitVecHandle {
    /// Number of usable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing DRAM row.
    pub fn row(&self) -> GlobalRow {
        self.row
    }
}

/// Statistics of one executed bulk operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpStats {
    /// Number of in-DRAM executions performed (>1 under repetition).
    pub executions: usize,
    /// Fraction of result bits that matched the ideal result.
    pub accuracy: f64,
    /// Mean per-cell success probability the model assigned.
    pub predicted_success: f64,
}

/// Per-visit state: caches that amortize fixed host-side costs over a
/// run of fused value-path operations, plus the one deferred result
/// write the fused command programs carry forward (see
/// [`BulkEngine::begin_visit`]).
#[derive(Debug, Default)]
struct VisitState {
    /// Cached NOT destination entry (cloned from the map once).
    not_entry: Option<PatternEntry>,
    /// Cached `N:N` entries, keyed by N.
    nn_entries: BTreeMap<usize, PatternEntry>,
    /// The previous operation's result write, deferred so it ships as
    /// the prelude of the next fused program (or is flushed at visit
    /// end) instead of paying its own program execution.
    pending: Option<(GlobalRow, Vec<Bit>)>,
}

/// The bulk bitwise engine.
///
/// Runs the chip in the fast fidelity mode ([`SimFidelity::fast`]):
/// aggregate statistics only, packed host I/O, threaded column kernels
/// on wide rows. Stored bits are identical to full-telemetry runs.
#[derive(Debug)]
pub struct BulkEngine {
    fc: Fcdram,
    bank: BankId,
    map: ActivationMap,
    com_subarray: SubarrayId,
    shared_cols: Vec<usize>,
    shared_start: usize,
    free_rows: Vec<GlobalRow>,
    repetition: usize,
    maj_entry: Option<InSubarrayEntry>,
    /// Whether masked charge shares are provably safe on this map: the
    /// NOT entries' raised rows (whose *old* cell content feeds the
    /// copy/NOT kernel on sample failure) must be disjoint from every
    /// logic entry's raised rows (which a masked charge share may
    /// leave unresolved). Computed once at construction.
    mask_safe: bool,
    /// Active fused visit, if any (see [`BulkEngine::begin_visit`]).
    visit: Option<VisitState>,
}

impl BulkEngine {
    /// Builds an engine on `bank` of the chip, discovering the
    /// activation map of subarray pair `(pair_upper, pair_upper+1)`.
    ///
    /// Only the rows of the pattern entries the engine actually
    /// executes through (the first discovered entry of each needed
    /// shape: the NOT destination pattern and the `N:N` entries for
    /// N ∈ {2, 4, 8, 16}) are reserved as operation scratch; the rest
    /// of the compute subarray is the allocation pool.
    pub fn new(fc: Fcdram, bank: BankId, pair_upper: SubarrayId) -> Result<Self> {
        BulkEngine::with_budget(fc, bank, pair_upper, 16_384)
    }

    /// As [`BulkEngine::new`] with an explicit discovery scan budget
    /// (`(R_F, R_L)` address pairs probed while mapping the subarray
    /// pair). Smaller budgets build faster but may miss the larger
    /// activation shapes.
    ///
    /// # Errors
    ///
    /// Fails when discovery finds no usable activation pattern on
    /// this part (e.g., Micron behaviour).
    pub fn with_budget(
        mut fc: Fcdram,
        bank: BankId,
        pair_upper: SubarrayId,
        scan_budget: usize,
    ) -> Result<Self> {
        let pair = (pair_upper, SubarrayId(pair_upper.index() + 1));
        let map = fc.discover(bank, pair, scan_budget)?;
        let geom = fc.config().geometry();
        let shared_cols: Vec<usize> = (0..geom.cols())
            .filter(|c| dram_core::is_shared_col(pair.0, dram_core::Col(*c)))
            .collect();
        // Reserve exactly the entries `not`/`logic` will select.
        let mut reserved: BTreeSet<LocalRow> = BTreeSet::new();
        for n_dst in [1usize, 2] {
            if let Some(e) = map.find_dst(n_dst).first() {
                reserved.extend(e.second_rows.iter().copied());
            }
        }
        for n in [2usize, 4, 8, 16] {
            if let Some(e) = map.find_nn(n) {
                reserved.extend(e.second_rows.iter().copied());
            }
        }
        let com_sub = pair.1;
        // Ambit-style in-subarray majority: keep one four-row
        // activation set in the compute subarray when the part has one
        // (SK Hynix behaviour), reserving its rows as scratch.
        let chip = fc.chip();
        let maj_entry = crate::mapping::discover_in_subarray(
            fc.bender_mut(),
            chip,
            bank,
            com_sub,
            scan_budget.min(4_096),
            2,
        )
        .ok()
        .and_then(|sets| sets.get(&4).and_then(|v| v.first().cloned()));
        if let Some(e) = &maj_entry {
            reserved.extend(e.rows.iter().copied());
        }
        let free_rows: Vec<GlobalRow> = (0..geom.rows_per_subarray())
            .filter(|r| !reserved.contains(&LocalRow(*r)))
            .map(|r| geom.join_row(com_sub, LocalRow(r)).expect("in range"))
            .collect();
        // Masked charge shares skip resolving rows the caller promises
        // to rewrite before their next read. The one consumer of *old*
        // row content is the copy/NOT kernel (failed samples retain the
        // previous bit), so masking is safe iff the NOT entries' raised
        // rows never coincide with a logic entry's raised rows.
        let mut not_rows: BTreeSet<(usize, usize)> = BTreeSet::new();
        for n_dst in [1usize, 2] {
            if let Some(e) = map.find_dst(n_dst).first() {
                let (sf, _) = geom.split_row(e.rf)?;
                let (sl, _) = geom.split_row(e.rl)?;
                not_rows.extend(e.first_rows.iter().map(|r| (sf.index(), r.index())));
                not_rows.extend(e.second_rows.iter().map(|r| (sl.index(), r.index())));
            }
        }
        let mut cs_rows: BTreeSet<(usize, usize)> = BTreeSet::new();
        for n in [2usize, 4, 8, 16] {
            if let Some(e) = map.find_nn(n) {
                let (sf, _) = geom.split_row(e.rf)?;
                let (sl, _) = geom.split_row(e.rl)?;
                cs_rows.extend(e.first_rows.iter().map(|r| (sf.index(), r.index())));
                cs_rows.extend(e.second_rows.iter().map(|r| (sl.index(), r.index())));
            }
        }
        let mask_safe = not_rows.is_disjoint(&cs_rows);
        // Bulk workloads never inspect per-cell records: run the chip
        // in the fast fidelity mode (identical stored bits and
        // aggregate statistics, no per-cell vectors).
        let cfg = fc.sim_config().with_fidelity(SimFidelity::fast());
        fc.configure(cfg);
        Ok(BulkEngine {
            fc,
            bank,
            map,
            com_subarray: com_sub,
            shared_cols,
            shared_start: (pair.0.index() + 1) % 2,
            free_rows,
            repetition: 1,
            maj_entry,
            mask_safe,
            visit: None,
        })
    }

    /// Opens a fused visit: until [`BulkEngine::end_visit`], the
    /// value-path operations ([`BulkEngine::not_known`],
    /// [`BulkEngine::logic_known`]) each ship as ONE combined command
    /// program (operand writes + gate sequence), with the result write
    /// deferred into the *next* operation's program. Pattern-entry
    /// lookups are cached for the visit. The device-call sequence —
    /// and with it every stored bit, stochastic draw, and success
    /// statistic — is identical to unfused execution; only the
    /// per-program fixed costs are amortized.
    ///
    /// Nested calls are idempotent (an active visit is kept).
    pub fn begin_visit(&mut self) {
        if self.visit.is_none() {
            self.visit = Some(VisitState::default());
        }
    }

    /// Closes the current fused visit, flushing the deferred result
    /// write (if any). A no-op when no visit is active.
    pub fn end_visit(&mut self) -> Result<()> {
        if let Some(visit) = self.visit.take() {
            if let Some((row, data)) = visit.pending {
                self.fc.write_row(self.bank, row, data)?;
            }
        }
        Ok(())
    }

    /// Flushes the visit's deferred result write without closing the
    /// visit, so operations that read device rows directly (copies,
    /// legacy paths, host read-backs) observe a consistent chip.
    fn flush_pending(&mut self) -> Result<()> {
        if let Some(visit) = self.visit.as_mut() {
            if let Some((row, data)) = visit.pending.take() {
                self.fc.write_row(self.bank, row, data)?;
            }
        }
        Ok(())
    }

    /// Whether the value-path ops may use masked charge shares on this
    /// part's activation map (see the field docs for the criterion).
    pub fn mask_safe(&self) -> bool {
        self.mask_safe
    }

    /// The current simulation configuration of the chip under the
    /// engine.
    pub fn sim_config(&self) -> dram_core::SimConfig {
        self.fc.sim_config()
    }

    /// Applies a [`dram_core::SimConfig`] — fidelity and temperature
    /// in one call (the engine constructs itself at
    /// [`SimFidelity::fast`]). Stored bits are identical across
    /// fidelity modes; operations degrade slightly when hot (the
    /// paper's Figs. 10 and 19).
    pub fn configure(&mut self, cfg: dram_core::SimConfig) {
        self.fc.configure(cfg);
    }

    /// Builder form of [`BulkEngine::configure`] for construction
    /// chains.
    #[must_use]
    pub fn with_sim_config(mut self, cfg: dram_core::SimConfig) -> Self {
        self.configure(cfg);
        self
    }

    #[doc(hidden)]
    pub fn set_fidelity(&mut self, fidelity: SimFidelity) {
        let cfg = self.sim_config().with_fidelity(fidelity);
        self.configure(cfg);
    }

    /// Whether this part offers Ambit-style in-subarray majority (a
    /// four-row simultaneous activation set was discovered in the
    /// compute subarray).
    pub fn has_native_maj(&self) -> bool {
        self.maj_entry.is_some()
    }

    /// Bits per vector (the shared column half of a row).
    pub fn capacity_bits(&self) -> usize {
        self.shared_cols.len()
    }

    /// The discovered activation map (for inspection).
    pub fn map(&self) -> &ActivationMap {
        &self.map
    }

    /// The compute subarray vectors are allocated in.
    pub fn compute_subarray(&self) -> SubarrayId {
        self.com_subarray
    }

    /// The bank this engine computes in.
    pub fn bank(&self) -> BankId {
        self.bank
    }

    /// Column offset of the first shared column (operands and results
    /// live on every other column starting here).
    pub fn shared_start(&self) -> usize {
        self.shared_start
    }

    /// The wrapped library facade (command interface included), for
    /// callers that drive the same chip through explicit command
    /// programs — e.g. a command-schedule execution backend that must
    /// stay bit-identical to this engine's operation sequences.
    pub fn fcdram(&self) -> &Fcdram {
        &self.fc
    }

    /// Mutable access to the wrapped library facade.
    pub fn fcdram_mut(&mut self) -> &mut Fcdram {
        &mut self.fc
    }

    #[doc(hidden)]
    pub fn set_temperature(&mut self, t: dram_core::Temperature) {
        let cfg = self.sim_config().with_temperature(t);
        self.configure(cfg);
    }

    /// Enables k-fold repetition with majority voting (k odd).
    ///
    /// # Panics
    ///
    /// Panics if `k` is even or zero.
    pub fn set_repetition(&mut self, k: usize) {
        assert!(k >= 1 && k % 2 == 1, "repetition must be odd and >= 1");
        self.repetition = k;
    }

    /// Allocates a vector.
    ///
    /// # Errors
    ///
    /// Returns [`FcdramError::OutOfRows`] when the pool is exhausted.
    pub fn alloc(&mut self) -> Result<BitVecHandle> {
        let row = self.free_rows.pop().ok_or(FcdramError::OutOfRows)?;
        Ok(BitVecHandle {
            row,
            len: self.shared_cols.len(),
        })
    }

    /// Frees a vector, returning its row to the pool.
    pub fn free(&mut self, v: BitVecHandle) {
        self.free_rows.push(v.row);
    }

    /// Writes host bits into a vector.
    pub fn write(&mut self, v: &BitVecHandle, bits: &[bool]) -> Result<()> {
        if bits.len() != v.len {
            return Err(FcdramError::WidthMismatch {
                expected: v.len,
                got: bits.len(),
            });
        }
        self.write_packed(v, &PackedBits::from_bools(bits))
    }

    /// Writes a packed vector (64 lanes per word, no per-bit `Vec`).
    pub fn write_packed(&mut self, v: &BitVecHandle, bits: &PackedBits) -> Result<()> {
        if bits.len() != v.len {
            return Err(FcdramError::WidthMismatch {
                expected: v.len,
                got: bits.len(),
            });
        }
        self.flush_pending()?;
        let row = self.expand_packed(bits);
        self.fc.write_row(self.bank, v.row, row)
    }

    /// Reads a vector back to host bits.
    pub fn read(&mut self, v: &BitVecHandle) -> Result<Vec<bool>> {
        Ok(self.read_packed(v)?.to_bools())
    }

    /// Reads a vector back packed: the device thresholds only the
    /// shared column half directly into `u64` words.
    pub fn read_packed(&mut self, v: &BitVecHandle) -> Result<PackedBits> {
        self.flush_pending()?;
        let chip = self.fc.chip();
        let words =
            self.fc
                .bender_mut()
                .read_row_packed(chip, self.bank, v.row, self.shared_start, 2)?;
        Ok(PackedBits::from_words(words, self.shared_cols.len()))
    }

    /// In-DRAM NOT: `out ← ¬a`.
    pub fn not(&mut self, a: &BitVecHandle, out: &BitVecHandle) -> Result<OpStats> {
        let src = self.read_packed(a)?;
        let mut ideal = src.clone();
        ideal.not_in_place();
        let entry = self
            .map
            .find_dst(1)
            .first()
            .cloned()
            .cloned()
            .or_else(|| self.map.find_dst(2).first().cloned().cloned())
            .ok_or(FcdramError::NoPattern { n_rf: 1, n_rl: 1 })?;
        let src_full = self.expand_packed(&src);
        if self.repetition == 1 {
            let rep = self.fc.execute_not_packed(self.bank, &entry, &src_full)?;
            return self.finish_packed(out, rep.result, &ideal, rep.predicted_success);
        }
        let mut votes = vec![0u32; self.shared_cols.len()];
        let mut predicted = 0.0;
        for _ in 0..self.repetition {
            let rep = self.fc.execute_not_packed(self.bank, &entry, &src_full)?;
            predicted += rep.predicted_success;
            tally(&mut votes, &rep.result);
        }
        let result = majority(&votes, self.repetition);
        self.finish_packed(out, result, &ideal, predicted)
    }

    /// In-DRAM N-input logic: `out ← op(inputs...)`.
    ///
    /// Uses the smallest discovered `N:N` pattern with `N ≥
    /// inputs.len()`, identity-padding unused rows.
    pub fn logic(
        &mut self,
        op: LogicOp,
        inputs: &[&BitVecHandle],
        out: &BitVecHandle,
    ) -> Result<OpStats> {
        if inputs.len() < 2 {
            return Err(FcdramError::BadInputCount {
                n: inputs.len(),
                max: 16,
            });
        }
        let n = [2usize, 4, 8, 16]
            .into_iter()
            .find(|n| *n >= inputs.len() && self.map.find_nn(*n).is_some())
            .ok_or(FcdramError::BadInputCount {
                n: inputs.len(),
                max: self.fc.config().max_op_inputs(),
            })?;
        let entry = self.map.find_nn(n).expect("checked").clone();

        let packed_inputs: Vec<PackedBits> = inputs
            .iter()
            .map(|h| self.read_packed(h))
            .collect::<Result<_>>()?;
        if self.repetition == 1 {
            let rep = self
                .fc
                .execute_logic_packed(self.bank, &entry, op, &packed_inputs)?;
            let ideal = rep.expected;
            return self.finish_packed(out, rep.result, &ideal, rep.predicted_success);
        }
        let mut votes = vec![0u32; self.shared_cols.len()];
        let mut predicted = 0.0;
        let mut ideal = None;
        for _ in 0..self.repetition {
            let rep = self
                .fc
                .execute_logic_packed(self.bank, &entry, op, &packed_inputs)?;
            predicted += rep.predicted_success;
            tally(&mut votes, &rep.result);
            ideal.get_or_insert(rep.expected);
        }
        let result = majority(&votes, self.repetition);
        self.finish_packed(
            out,
            result,
            &ideal.expect("at least one execution"),
            predicted,
        )
    }

    /// Convenience wrappers.
    pub fn and(&mut self, ins: &[&BitVecHandle], out: &BitVecHandle) -> Result<OpStats> {
        self.logic(LogicOp::And, ins, out)
    }

    /// In-DRAM OR.
    pub fn or(&mut self, ins: &[&BitVecHandle], out: &BitVecHandle) -> Result<OpStats> {
        self.logic(LogicOp::Or, ins, out)
    }

    /// In-DRAM NAND.
    pub fn nand(&mut self, ins: &[&BitVecHandle], out: &BitVecHandle) -> Result<OpStats> {
        self.logic(LogicOp::Nand, ins, out)
    }

    /// In-DRAM NOR.
    pub fn nor(&mut self, ins: &[&BitVecHandle], out: &BitVecHandle) -> Result<OpStats> {
        self.logic(LogicOp::Nor, ins, out)
    }

    /// In-DRAM three-input majority via Ambit-style simultaneous
    /// four-row activation in the compute subarray:
    /// `MAJ4(a, b, c, 1) = MAJ3(a, b, c)` (the all-1 fourth row turns
    /// the ≥3-of-4 threshold into ≥2-of-3).
    ///
    /// This is the baseline operation lineage the paper builds on
    /// (§2.2, §8.1); it computes the carry of a full adder in a single
    /// command sequence where the functionally-complete gate set needs
    /// four.
    ///
    /// # Errors
    ///
    /// Returns [`FcdramError::OpFailed`] when the part has no four-row
    /// in-subarray activation set (check [`BulkEngine::has_native_maj`]).
    pub fn maj3(
        &mut self,
        a: &BitVecHandle,
        b: &BitVecHandle,
        c: &BitVecHandle,
        out: &BitVecHandle,
    ) -> Result<OpStats> {
        let entry = self
            .maj_entry
            .clone()
            .ok_or_else(|| FcdramError::OpFailed {
                detail: "no four-row in-subarray activation set discovered".to_string(),
            })?;
        let (da, db, dc) = (
            self.read_packed(a)?,
            self.read_packed(b)?,
            self.read_packed(c)?,
        );
        // MAJ3 = (a∧b) ∨ (a∧c) ∨ (b∧c), word-wise.
        let mut ideal = da.clone();
        ideal.and_assign(&db);
        let mut ac = da.clone();
        ac.and_assign(&dc);
        let mut bc = db.clone();
        bc.and_assign(&dc);
        ideal.or_assign(&ac);
        ideal.or_assign(&bc);
        let cols = self.fc.config().modeled_cols;
        let inputs = vec![
            self.expand_packed(&da),
            self.expand_packed(&db),
            self.expand_packed(&dc),
            vec![Bit::One; cols],
        ];
        if self.repetition == 1 {
            let rep = self
                .fc
                .execute_maj_packed(self.bank, &entry, &inputs, self.shared_start)?;
            return self.finish_packed(out, rep.result, &ideal, rep.predicted_success);
        }
        let mut votes = vec![0u32; self.shared_cols.len()];
        let mut predicted = 0.0;
        for _ in 0..self.repetition {
            let rep = self
                .fc
                .execute_maj_packed(self.bank, &entry, &inputs, self.shared_start)?;
            predicted += rep.predicted_success;
            tally(&mut votes, &rep.result);
        }
        let result = majority(&votes, self.repetition);
        self.finish_packed(out, result, &ideal, predicted)
    }

    /// In-DRAM copy (`out ← a`) via in-subarray RowClone.
    ///
    /// Both vectors live in the compute subarray, so the copy is a
    /// sub-`tRP` `ACT → PRE → ACT` pair that never moves data over the
    /// channel. Row pairs that do not clone on this chip (the decoder
    /// glitch predicate rejects them) fall back to a host read +
    /// write; the fallback is reported with `executions: 0`.
    ///
    /// # Errors
    ///
    /// Propagates device addressing errors; the non-cloning-pair case
    /// is handled internally by the fallback.
    pub fn copy(&mut self, a: &BitVecHandle, out: &BitVecHandle) -> Result<OpStats> {
        let ideal = self.read_packed(a)?;
        match self.fc.rowclone(self.bank, a.row, out.row) {
            Ok(outcome) => {
                let got = self.read_packed(out)?;
                let accuracy = got.accuracy_against(&ideal);
                let predicted = outcome
                    .mean_success(dram_core::CellRole::CloneDst)
                    .unwrap_or(1.0);
                Ok(OpStats {
                    executions: 1,
                    accuracy,
                    predicted_success: predicted,
                })
            }
            Err(_) => {
                self.write_packed(out, &ideal)?;
                Ok(OpStats {
                    executions: 0,
                    accuracy: 1.0,
                    predicted_success: 1.0,
                })
            }
        }
    }

    /// Value-path NOT for prepared execution: the caller supplies the
    /// operand's current value (tracked host-side), eliding the input
    /// read-back, and the destination pattern is read back first-row
    /// only. Stored bits, stochastic draws, result, and
    /// `predicted_success` are bit-identical to [`BulkEngine::not`] on
    /// the same state; returns the result bits alongside the stats so
    /// the caller can keep tracking values.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`BulkEngine::not`].
    pub fn not_known(
        &mut self,
        val: &PackedBits,
        out: &BitVecHandle,
    ) -> Result<(OpStats, PackedBits)> {
        let mut ideal = val.clone();
        ideal.not_in_place();
        if self.repetition == 1 && self.visit.is_some() {
            let entry = self.visit_not_entry()?;
            let src_full = self.expand_packed(val);
            let prelude = self.take_pending();
            let rep = self
                .fc
                .execute_not_packed_value_fused(self.bank, &entry, &src_full, prelude)?;
            return self.finish_deferred(out, rep.result, &ideal, rep.predicted_success);
        }
        let entry = self
            .map
            .find_dst(1)
            .first()
            .cloned()
            .cloned()
            .or_else(|| self.map.find_dst(2).first().cloned().cloned())
            .ok_or(FcdramError::NoPattern { n_rf: 1, n_rl: 1 })?;
        let src_full = self.expand_packed(val);
        if self.repetition == 1 {
            let rep = self
                .fc
                .execute_not_packed_value(self.bank, &entry, &src_full)?;
            let bits = rep.result.clone();
            let stats = self.finish_packed(out, rep.result, &ideal, rep.predicted_success)?;
            return Ok((stats, bits));
        }
        self.flush_pending()?;
        let mut votes = vec![0u32; self.shared_cols.len()];
        let mut predicted = 0.0;
        for _ in 0..self.repetition {
            let rep = self
                .fc
                .execute_not_packed_value(self.bank, &entry, &src_full)?;
            predicted += rep.predicted_success;
            tally(&mut votes, &rep.result);
        }
        let result = majority(&votes, self.repetition);
        let stats = self.finish_packed(out, result.clone(), &ideal, predicted)?;
        Ok((stats, result))
    }

    /// Value-path N-input logic for prepared execution: operand values
    /// are supplied by the caller (no input read-backs) and the charge
    /// share is masked to the terminal being read when
    /// [`BulkEngine::mask_safe`] holds (falling back to the full
    /// kernel otherwise). Stored result bits, stochastic draws, and
    /// `predicted_success` are bit-identical to [`BulkEngine::logic`]
    /// on the same state.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`BulkEngine::logic`].
    pub fn logic_known(
        &mut self,
        op: LogicOp,
        vals: &[&PackedBits],
        out: &BitVecHandle,
    ) -> Result<(OpStats, PackedBits)> {
        if vals.len() < 2 {
            return Err(FcdramError::BadInputCount {
                n: vals.len(),
                max: 16,
            });
        }
        let n = [2usize, 4, 8, 16]
            .into_iter()
            .find(|n| *n >= vals.len() && self.map.find_nn(*n).is_some())
            .ok_or(FcdramError::BadInputCount {
                n: vals.len(),
                max: self.fc.config().max_op_inputs(),
            })?;
        if self.repetition == 1 && self.mask_safe && self.visit.is_some() {
            let entry = self.visit_nn_entry(n)?;
            let prelude = self.take_pending();
            let rep = self
                .fc
                .execute_logic_packed_value_fused(self.bank, &entry, op, vals, prelude)?;
            let ideal = rep.expected;
            return self.finish_deferred(out, rep.result, &ideal, rep.predicted_success);
        }
        self.flush_pending()?;
        let entry = self.map.find_nn(n).expect("checked").clone();
        let packed_inputs: Vec<PackedBits> = vals.iter().map(|p| (*p).clone()).collect();
        let masked = self.mask_safe;
        let run = |fc: &mut Fcdram, bank: BankId| {
            if masked {
                fc.execute_logic_packed_value(bank, &entry, op, &packed_inputs)
            } else {
                fc.execute_logic_packed(bank, &entry, op, &packed_inputs)
            }
        };
        if self.repetition == 1 {
            let rep = run(&mut self.fc, self.bank)?;
            let bits = rep.result.clone();
            let stats =
                self.finish_packed(out, rep.result, &rep.expected, rep.predicted_success)?;
            return Ok((stats, bits));
        }
        let mut votes = vec![0u32; self.shared_cols.len()];
        let mut predicted = 0.0;
        let mut ideal = None;
        for _ in 0..self.repetition {
            let rep = run(&mut self.fc, self.bank)?;
            predicted += rep.predicted_success;
            tally(&mut votes, &rep.result);
            ideal.get_or_insert(rep.expected);
        }
        let result = majority(&votes, self.repetition);
        let stats = self.finish_packed(
            out,
            result.clone(),
            &ideal.expect("at least one execution"),
            predicted,
        )?;
        Ok((stats, result))
    }

    /// Value-path copy for prepared execution: the source's current
    /// value is supplied by the caller, eliding the input read-back.
    /// The RowClone attempt and its stochastic draws are identical to
    /// [`BulkEngine::copy`] on the same state.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`BulkEngine::copy`].
    pub fn copy_known(
        &mut self,
        a: &BitVecHandle,
        src_val: &PackedBits,
        out: &BitVecHandle,
    ) -> Result<(OpStats, PackedBits)> {
        // RowClone reads the source row on-device: any deferred fused
        // result write must land first.
        self.flush_pending()?;
        match self.fc.rowclone(self.bank, a.row, out.row) {
            Ok(outcome) => {
                let got = self.read_packed(out)?;
                let accuracy = got.accuracy_against(src_val);
                let predicted = outcome
                    .mean_success(dram_core::CellRole::CloneDst)
                    .unwrap_or(1.0);
                Ok((
                    OpStats {
                        executions: 1,
                        accuracy,
                        predicted_success: predicted,
                    },
                    got,
                ))
            }
            Err(_) => {
                self.write_packed(out, src_val)?;
                Ok((
                    OpStats {
                        executions: 0,
                        accuracy: 1.0,
                        predicted_success: 1.0,
                    },
                    src_val.clone(),
                ))
            }
        }
    }

    /// Fills a vector with a constant bit (a host row write; see
    /// [`Fcdram::broadcast`] for the amortized in-DRAM bulk
    /// initialization of many rows at once).
    ///
    /// # Errors
    ///
    /// Propagates device addressing errors.
    pub fn fill(&mut self, v: &BitVecHandle, value: bool) -> Result<()> {
        self.write_packed(v, &PackedBits::splat(value, v.len))
    }

    /// The module configuration of the underlying chip.
    pub fn config(&self) -> &dram_core::ModuleConfig {
        self.fc.config()
    }

    /// Expands shared-column lanes into a full-width row (zeros on the
    /// off half). The shared columns are exactly every other column
    /// starting at `shared_start`, so this is a strided expansion.
    fn expand_packed(&self, bits: &PackedBits) -> Vec<Bit> {
        bits.expand_strided(self.fc.config().modeled_cols, self.shared_start, 2)
    }

    /// Takes the visit's deferred result write (to ship as the next
    /// fused program's prelude).
    fn take_pending(&mut self) -> Option<(GlobalRow, Vec<Bit>)> {
        self.visit.as_mut().and_then(|v| v.pending.take())
    }

    /// The visit-cached NOT destination entry (cloned from the map on
    /// first use).
    fn visit_not_entry(&mut self) -> Result<PatternEntry> {
        let cached = self.visit.as_ref().and_then(|v| v.not_entry.clone());
        if let Some(e) = cached {
            return Ok(e);
        }
        let entry = self
            .map
            .find_dst(1)
            .first()
            .cloned()
            .cloned()
            .or_else(|| self.map.find_dst(2).first().cloned().cloned())
            .ok_or(FcdramError::NoPattern { n_rf: 1, n_rl: 1 })?;
        if let Some(v) = self.visit.as_mut() {
            v.not_entry = Some(entry.clone());
        }
        Ok(entry)
    }

    /// The visit-cached `N:N` entry (cloned from the map on first use).
    fn visit_nn_entry(&mut self, n: usize) -> Result<PatternEntry> {
        let cached = self
            .visit
            .as_ref()
            .and_then(|v| v.nn_entries.get(&n).cloned());
        if let Some(e) = cached {
            return Ok(e);
        }
        let entry = self
            .map
            .find_nn(n)
            .ok_or(FcdramError::NoPattern { n_rf: n, n_rl: n })?
            .clone();
        if let Some(v) = self.visit.as_mut() {
            v.nn_entries.insert(n, entry.clone());
        }
        Ok(entry)
    }

    /// Visit-mode counterpart of [`finish_packed`](Self::finish_packed):
    /// identical statistics, but the result write is deferred into the
    /// visit instead of executing its own program now.
    fn finish_deferred(
        &mut self,
        out: &BitVecHandle,
        result: PackedBits,
        ideal: &PackedBits,
        predicted: f64,
    ) -> Result<(OpStats, PackedBits)> {
        let accuracy = result.accuracy_against(ideal);
        let full = self.expand_packed(&result);
        self.visit
            .as_mut()
            .expect("finish_deferred requires an active visit")
            .pending = Some((out.row, full));
        Ok((
            OpStats {
                executions: 1,
                accuracy,
                predicted_success: predicted,
            },
            result,
        ))
    }

    fn finish_packed(
        &mut self,
        out: &BitVecHandle,
        result: PackedBits,
        ideal: &PackedBits,
        predicted_sum: f64,
    ) -> Result<OpStats> {
        let k = self.repetition;
        let accuracy = result.accuracy_against(ideal);
        self.write_packed(out, &result)?;
        Ok(OpStats {
            executions: k,
            accuracy,
            predicted_success: predicted_sum / k as f64,
        })
    }
}

/// Adds one packed execution's set lanes into per-lane vote counters.
fn tally(votes: &mut [u32], result: &PackedBits) {
    for (i, v) in votes.iter_mut().enumerate() {
        *v += u32::from(result.get(i));
    }
}

/// Majority-of-`k` over per-lane vote counters.
fn majority(votes: &[u32], k: usize) -> PackedBits {
    let mut out = PackedBits::zeros(votes.len());
    for (i, v) in votes.iter().enumerate() {
        if 2 * (*v as usize) > k {
            out.set(i, true);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::config::table1;

    fn engine() -> BulkEngine {
        let cfg = table1().into_iter().next().unwrap().with_modeled_cols(64);
        BulkEngine::new(Fcdram::new(cfg), BankId(0), SubarrayId(0)).unwrap()
    }

    fn bits(seed: u64, n: usize) -> Vec<bool> {
        (0..n)
            .map(|c| dram_core::math::hash_to_unit(dram_core::math::mix2(seed, c as u64)) < 0.5)
            .collect()
    }

    #[test]
    fn alloc_write_read_round_trip() {
        let mut e = engine();
        assert_eq!(e.capacity_bits(), 32);
        let v = e.alloc().unwrap();
        let data = bits(1, 32);
        e.write(&v, &data).unwrap();
        assert_eq!(e.read(&v).unwrap(), data);
    }

    #[test]
    fn alloc_exhaustion_and_free() {
        let mut e = engine();
        let mut handles = Vec::new();
        loop {
            match e.alloc() {
                Ok(h) => handles.push(h),
                Err(FcdramError::OutOfRows) => break,
                Err(other) => panic!("{other}"),
            }
        }
        assert!(!handles.is_empty());
        let h = handles.pop().unwrap();
        e.free(h);
        assert!(e.alloc().is_ok());
    }

    #[test]
    fn bulk_not_inverts_mostly() {
        let mut e = engine();
        let a = e.alloc().unwrap();
        let out = e.alloc().unwrap();
        let data = bits(2, 32);
        e.write(&a, &data).unwrap();
        let stats = e.not(&a, &out).unwrap();
        assert!(stats.accuracy > 0.9, "accuracy {}", stats.accuracy);
        let got = e.read(&out).unwrap();
        let expect: Vec<bool> = data.iter().map(|b| !b).collect();
        let same = got.iter().zip(&expect).filter(|(x, y)| x == y).count();
        assert!(same >= 29, "{same}/32");
    }

    #[test]
    fn bulk_and_or() {
        let mut e = engine();
        let a = e.alloc().unwrap();
        let b = e.alloc().unwrap();
        let out = e.alloc().unwrap();
        let da = bits(3, 32);
        let db = bits(4, 32);
        e.write(&a, &da).unwrap();
        e.write(&b, &db).unwrap();
        let s_and = e.and(&[&a, &b], &out).unwrap();
        assert!(s_and.accuracy > 0.6, "AND accuracy {}", s_and.accuracy);
        // Inputs must be intact afterwards (re-written each execution).
        assert_eq!(e.read(&a).unwrap(), da);
        let s_or = e.or(&[&a, &b], &out).unwrap();
        assert!(s_or.accuracy > 0.7, "OR accuracy {}", s_or.accuracy);
    }

    #[test]
    fn repetition_improves_accuracy() {
        let mut e = engine();
        let a = e.alloc().unwrap();
        let b = e.alloc().unwrap();
        let out = e.alloc().unwrap();
        e.write(&a, &bits(5, 32)).unwrap();
        e.write(&b, &bits(6, 32)).unwrap();
        let single = e.and(&[&a, &b], &out).unwrap();
        e.set_repetition(9);
        let voted = e.and(&[&a, &b], &out).unwrap();
        assert_eq!(voted.executions, 9);
        assert!(
            voted.accuracy >= single.accuracy - 0.05,
            "voted {} vs single {}",
            voted.accuracy,
            single.accuracy
        );
    }

    #[test]
    fn three_input_or_uses_padding() {
        let mut e = engine();
        let a = e.alloc().unwrap();
        let b = e.alloc().unwrap();
        let c = e.alloc().unwrap();
        let out = e.alloc().unwrap();
        let (da, db, dc) = (bits(7, 32), bits(8, 32), bits(9, 32));
        e.write(&a, &da).unwrap();
        e.write(&b, &db).unwrap();
        e.write(&c, &dc).unwrap();
        let stats = e.or(&[&a, &b, &c], &out).unwrap();
        assert!(stats.accuracy > 0.55, "{}", stats.accuracy);
    }

    #[test]
    fn single_input_logic_rejected() {
        let mut e = engine();
        let a = e.alloc().unwrap();
        let out = e.alloc().unwrap();
        let err = e.and(&[&a], &out).unwrap_err();
        assert!(matches!(err, FcdramError::BadInputCount { .. }));
    }

    #[test]
    #[should_panic(expected = "repetition must be odd")]
    fn even_repetition_panics() {
        let mut e = engine();
        e.set_repetition(2);
    }

    #[test]
    fn copy_and_fill_round_trip() {
        let mut e = engine();
        let a = e.alloc().unwrap();
        let b = e.alloc().unwrap();
        let data = bits(10, 32);
        e.write(&a, &data).unwrap();
        let stats = e.copy(&a, &b).unwrap();
        assert!(stats.accuracy > 0.9, "copy accuracy {}", stats.accuracy);
        let got = e.read(&b).unwrap();
        let same = got.iter().zip(&data).filter(|(x, y)| x == y).count();
        assert!(same >= 29, "{same}/32 cells copied");
        e.fill(&b, true).unwrap();
        assert_eq!(e.read(&b).unwrap(), vec![true; 32]);
        e.fill(&b, false).unwrap();
        assert_eq!(e.read(&b).unwrap(), vec![false; 32]);
    }

    #[test]
    fn ops_never_corrupt_unrelated_vectors() {
        // The allocation pool must be disjoint from the reserved
        // operation scratch rows: filling every allocatable vector
        // with known data and then executing each operation kind must
        // leave all uninvolved vectors bit-identical.
        let mut e = engine();
        let mut handles = Vec::new();
        while let Ok(h) = e.alloc() {
            handles.push(h);
        }
        assert!(handles.len() >= 8, "pool too small: {}", handles.len());
        let snapshots: Vec<Vec<bool>> = handles
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let data = bits(1000 + i as u64, 32);
                e.write(h, &data).unwrap();
                data
            })
            .collect();

        let (a, b, c, out) = (handles[0], handles[1], handles[2], handles[3]);
        e.not(&a, &out).unwrap();
        e.and(&[&a, &b], &out).unwrap();
        e.nor(&[&a, &b, &c], &out).unwrap();
        e.copy(&a, &out).unwrap();
        if e.has_native_maj() {
            e.maj3(&a, &b, &c, &out).unwrap();
        }

        for (i, h) in handles.iter().enumerate().skip(4) {
            assert_eq!(
                e.read(h).unwrap(),
                snapshots[i],
                "vector {i} was corrupted by an unrelated operation"
            );
        }
        // The inputs themselves also survive (operands are staged).
        for (i, h) in [a, b, c].iter().enumerate() {
            assert_eq!(e.read(h).unwrap(), snapshots[i], "input {i} clobbered");
        }
    }

    #[test]
    fn value_path_matches_legacy_bits_and_predictions() {
        // Two engines in identical state: the value-path ops (operand
        // values supplied host-side, masked charge shares, first-row
        // read-backs) must store the same bits and report the same
        // accuracy/prediction as the legacy handle-path ops.
        let mut e1 = engine();
        let mut e2 = engine();
        assert!(e1.mask_safe(), "table-1 part must allow masking");
        let setup = |e: &mut BulkEngine| {
            let a = e.alloc().unwrap();
            let b = e.alloc().unwrap();
            let c = e.alloc().unwrap();
            let out = e.alloc().unwrap();
            e.write(&a, &bits(20, 32)).unwrap();
            e.write(&b, &bits(21, 32)).unwrap();
            e.write(&c, &bits(22, 32)).unwrap();
            (a, b, c, out)
        };
        let (a1, b1, c1, o1) = setup(&mut e1);
        let (a2, b2, c2, o2) = setup(&mut e2);
        let va = PackedBits::from_bools(&bits(20, 32));
        let vb = PackedBits::from_bools(&bits(21, 32));
        let vc = PackedBits::from_bools(&bits(22, 32));

        for op in [LogicOp::And, LogicOp::Nor, LogicOp::Or, LogicOp::Nand] {
            let s1 = e1.logic(op, &[&a1, &b1, &c1], &o1).unwrap();
            let (s2, bits2) = e2.logic_known(op, &[&va, &vb, &vc], &o2).unwrap();
            assert_eq!(s1, s2, "{op:?} stats diverge");
            assert_eq!(e1.read_packed(&o1).unwrap(), bits2, "{op:?} bits diverge");
            assert_eq!(e2.read_packed(&o2).unwrap(), bits2);
        }
        let s1 = e1.not(&a1, &o1).unwrap();
        let (s2, nb) = e2.not_known(&va, &o2).unwrap();
        assert_eq!(s1, s2, "NOT stats diverge");
        assert_eq!(e1.read_packed(&o1).unwrap(), nb);
        let s1 = e1.copy(&b1, &o1).unwrap();
        let (s2, cb) = e2.copy_known(&b2, &vb, &o2).unwrap();
        assert_eq!(s1, s2, "copy stats diverge");
        assert_eq!(e1.read_packed(&o1).unwrap(), cb);
        // Repetition voting follows the same draws on both paths.
        e1.set_repetition(3);
        e2.set_repetition(3);
        let s1 = e1.logic(LogicOp::Nand, &[&a1, &c1], &o1).unwrap();
        let (s2, rb) = e2.logic_known(LogicOp::Nand, &[&va, &vc], &o2).unwrap();
        assert_eq!(s1, s2, "repetition stats diverge");
        assert_eq!(e1.read_packed(&o1).unwrap(), rb);
        // Operand rows survive value-path ops untouched.
        assert_eq!(e2.read_packed(&a2).unwrap(), va);
        assert_eq!(e2.read_packed(&c2).unwrap(), vc);
    }

    #[test]
    fn native_maj3_computes_majority() {
        let mut e = engine();
        assert!(e.has_native_maj(), "SK Hynix parts discover a 4-row set");
        let a = e.alloc().unwrap();
        let b = e.alloc().unwrap();
        let c = e.alloc().unwrap();
        let out = e.alloc().unwrap();
        let (da, db, dc) = (bits(11, 32), bits(12, 32), bits(13, 32));
        e.write(&a, &da).unwrap();
        e.write(&b, &db).unwrap();
        e.write(&c, &dc).unwrap();
        let stats = e.maj3(&a, &b, &c, &out).unwrap();
        assert!(stats.accuracy > 0.5, "maj accuracy {}", stats.accuracy);
        let got = e.read(&out).unwrap();
        let ideal: Vec<bool> = (0..32)
            .map(|i| u8::from(da[i]) + u8::from(db[i]) + u8::from(dc[i]) >= 2)
            .collect();
        let same = got.iter().zip(&ideal).filter(|(x, y)| x == y).count();
        assert!(same >= 20, "{same}/32 majority cells correct");
        // Inputs survive (operands are staged, never clobbered).
        assert_eq!(e.read(&a).unwrap(), da);
    }
}
