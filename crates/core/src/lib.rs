//! # fcdram — functionally-complete Boolean logic in (simulated) DRAM
//!
//! A library reproduction of *"Functionally-Complete Boolean Logic in
//! Real DRAM Chips: Experimental Characterization and Analysis"*
//! (Yüksel et al., HPCA 2024). It implements, over a behavioral DDR4
//! device model and a DRAM-Bender-style command interface:
//!
//! * **reverse engineering** — subarray boundaries via RowClone
//!   probing, physical row order via RowHammer, and the
//!   `N_RF:N_RL` activation-pattern map of every neighboring subarray
//!   pair ([`mapping`], [`row_order`]);
//! * **in-DRAM operations** — RowClone, `Frac` (VDD/2), NOT, and
//!   N-input AND / OR / NAND / NOR for N up to 16 ([`ops`]);
//! * **a bulk bitwise engine** — allocate bit vectors in DRAM and
//!   combine them with in-DRAM gates, optionally with repetition
//!   voting for reliability ([`bitwise`]);
//! * **success-rate metrics** matching the paper's methodology
//!   ([`success`]).
//!
//! ## Quickstart
//!
//! ```
//! use fcdram::{BulkEngine, Fcdram};
//! use dram_core::{BankId, SubarrayId};
//!
//! // Chip 0 of the first Table-1 module, narrowed for the doctest.
//! let cfg = dram_core::config::table1().remove(0).with_modeled_cols(32);
//! let mut engine = BulkEngine::new(Fcdram::new(cfg), BankId(0), SubarrayId(0))?;
//! let a = engine.alloc()?;
//! let b = engine.alloc()?;
//! let out = engine.alloc()?;
//! engine.write(&a, &vec![true; engine.capacity_bits()])?;
//! engine.write(&b, &vec![true; engine.capacity_bits()])?;
//! let stats = engine.and(&[&a, &b], &out)?;
//! assert!(stats.accuracy > 0.0);
//! # Ok::<(), fcdram::FcdramError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitwise;
pub mod error;
pub mod mapping;
pub mod ops;
pub mod packed;
pub mod row_order;
pub mod success;

pub use bitwise::{BitVecHandle, BulkEngine, OpStats};
pub use error::{FcdramError, Result};
pub use mapping::{ActivationMap, CoverageRow, InSubarrayEntry, PatternEntry};
pub use ops::{
    FastLogicResult, FastMajResult, FastNotResult, Fcdram, LogicReport, MajReport, NotReport,
};
pub use packed::PackedBits;
pub use row_order::{discover_row_order, RowOrder};
pub use success::{sample_trials, sampled_success_rate, SuccessAccumulator, SuccessStats};

// Re-export the device-model vocabulary users need at the API surface.
pub use dram_core::{
    BankId, Bit, ChipId, GlobalRow, LocalRow, LogicOp, ModuleConfig, PatternKind, SubarrayId,
    Temperature,
};
