//! Expression frontend: parse boolean formulas and truth tables.
//!
//! The grammar is C-like with `|` binding loosest and `!` tightest:
//!
//! ```text
//! expr := xor ('|' xor)*
//! xor  := and ('^' and)*
//! and  := not ('&' not)*
//! not  := ('!' | '~') not | atom
//! atom := '(' expr ')' | ident | '0' | '1'
//! ```
//!
//! Identifiers (`[A-Za-z_][A-Za-z0-9_]*`) name inputs; they are
//! numbered in first-appearance order, which is also the operand order
//! every backend expects.
//!
//! # Examples
//!
//! ```
//! let e = fcsynth::Expr::parse("(a & b) | (a & c) | (b & c)")?;
//! assert_eq!(e.inputs(), ["a", "b", "c"]);
//! # Ok::<(), fcsynth::SynthError>(())
//! ```

use crate::error::{Result, SynthError};

/// Operator applied by an [`ExprNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprOp {
    /// Logical negation (unary).
    Not,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Exclusive or.
    Xor,
}

/// One node of a parsed expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprNode {
    /// A named input, by index into [`Expr::inputs`].
    Var(usize),
    /// A literal `0` or `1`.
    Const(bool),
    /// `op` applied to one (NOT) or two children.
    Apply(ExprOp, Vec<ExprNode>),
}

/// A parsed boolean expression plus its input-name table.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    root: ExprNode,
    inputs: Vec<String>,
}

impl Expr {
    /// Parses an expression string.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Parse`] with a byte offset for any syntax
    /// problem.
    pub fn parse(text: &str) -> Result<Expr> {
        let mut p = Parser {
            src: text.as_bytes(),
            pos: 0,
            inputs: Vec::new(),
        };
        let root = p.expr()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(SynthError::Parse {
                at: p.pos,
                detail: format!("unexpected trailing input '{}'", p.rest()),
            });
        }
        Ok(Expr {
            root,
            inputs: p.inputs,
        })
    }

    /// Builds the expression computing a raw truth table.
    ///
    /// `bits[i]` is the output for the input assignment whose bit `j`
    /// (of `i`) is the value of input `j` — LSB-first, so `bits` has
    /// exactly `2^n` entries for `n` inputs. Inputs are named
    /// `x0..x{n-1}`. The expression is the canonical sum of products;
    /// the DAG optimizer shares and folds it from there.
    ///
    /// # Errors
    ///
    /// Fails when `n` is 0 or above 16, or `bits` is not `2^n` long.
    pub fn from_truth_table(n: usize, bits: &[bool]) -> Result<Expr> {
        if n == 0 || n > 16 {
            return Err(SynthError::BadTruthTable {
                detail: format!("input count {n} outside 1..=16"),
            });
        }
        if bits.len() != 1 << n {
            return Err(SynthError::BadTruthTable {
                detail: format!(
                    "expected {} entries for {n} inputs, got {}",
                    1 << n,
                    bits.len()
                ),
            });
        }
        let mut minterms = Vec::new();
        for (m, out) in bits.iter().enumerate() {
            if !*out {
                continue;
            }
            let lits: Vec<ExprNode> = (0..n)
                .map(|j| {
                    if m >> j & 1 == 1 {
                        ExprNode::Var(j)
                    } else {
                        ExprNode::Apply(ExprOp::Not, vec![ExprNode::Var(j)])
                    }
                })
                .collect();
            minterms.push(if lits.len() == 1 {
                lits.into_iter().next().expect("one literal")
            } else {
                ExprNode::Apply(ExprOp::And, lits)
            });
        }
        let root = match minterms.len() {
            0 => ExprNode::Const(false),
            1 => minterms.into_iter().next().expect("one minterm"),
            _ => ExprNode::Apply(ExprOp::Or, minterms),
        };
        Ok(Expr {
            root,
            inputs: (0..n).map(|j| format!("x{j}")).collect(),
        })
    }

    /// Parses a truth table given as a string of `0`/`1` digits
    /// (LSB-first, as in [`Expr::from_truth_table`]); whitespace and
    /// `_` separators are ignored.
    ///
    /// # Errors
    ///
    /// Fails on non-binary digits or a length that is not a power of
    /// two in `2..=65536`.
    pub fn parse_truth_table(text: &str) -> Result<Expr> {
        let mut bits = Vec::new();
        for c in text.chars() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                c if c.is_whitespace() || c == '_' => {}
                other => {
                    return Err(SynthError::BadTruthTable {
                        detail: format!("invalid digit '{other}'"),
                    })
                }
            }
        }
        if !bits.len().is_power_of_two() || bits.len() < 2 {
            return Err(SynthError::BadTruthTable {
                detail: format!("length {} is not a power of two >= 2", bits.len()),
            });
        }
        Expr::from_truth_table(bits.len().trailing_zeros() as usize, &bits)
    }

    /// The root node.
    pub fn root(&self) -> &ExprNode {
        &self.root
    }

    /// Input names in first-appearance (operand) order.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Evaluates the expression on one input assignment (reference
    /// semantics used by tests).
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != self.inputs().len()`.
    pub fn eval(&self, values: &[bool]) -> bool {
        assert_eq!(values.len(), self.inputs.len(), "input arity");
        eval_node(&self.root, values)
    }
}

fn eval_node(node: &ExprNode, values: &[bool]) -> bool {
    match node {
        ExprNode::Var(i) => values[*i],
        ExprNode::Const(b) => *b,
        ExprNode::Apply(ExprOp::Not, xs) => !eval_node(&xs[0], values),
        ExprNode::Apply(ExprOp::And, xs) => xs.iter().all(|x| eval_node(x, values)),
        ExprNode::Apply(ExprOp::Or, xs) => xs.iter().any(|x| eval_node(x, values)),
        ExprNode::Apply(ExprOp::Xor, xs) => xs.iter().fold(false, |a, x| a ^ eval_node(x, values)),
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    inputs: Vec<String>,
}

impl Parser<'_> {
    fn rest(&self) -> String {
        String::from_utf8_lossy(&self.src[self.pos..]).into_owned()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<ExprNode> {
        let mut lhs = self.xor()?;
        while self.eat(b'|') {
            let rhs = self.xor()?;
            lhs = ExprNode::Apply(ExprOp::Or, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn xor(&mut self) -> Result<ExprNode> {
        let mut lhs = self.and()?;
        while self.eat(b'^') {
            let rhs = self.and()?;
            lhs = ExprNode::Apply(ExprOp::Xor, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<ExprNode> {
        let mut lhs = self.not()?;
        while self.eat(b'&') {
            let rhs = self.not()?;
            lhs = ExprNode::Apply(ExprOp::And, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn not(&mut self) -> Result<ExprNode> {
        if self.eat(b'!') || self.eat(b'~') {
            return Ok(ExprNode::Apply(ExprOp::Not, vec![self.not()?]));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<ExprNode> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let inner = self.expr()?;
                if !self.eat(b')') {
                    return Err(SynthError::Parse {
                        at: self.pos,
                        detail: "expected ')'".into(),
                    });
                }
                Ok(inner)
            }
            Some(b'0') => {
                self.pos += 1;
                Ok(ExprNode::Const(false))
            }
            Some(b'1') => {
                self.pos += 1;
                Ok(ExprNode::Const(true))
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .src
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ASCII ident")
                    .to_string();
                let idx = match self.inputs.iter().position(|n| *n == name) {
                    Some(i) => i,
                    None => {
                        self.inputs.push(name);
                        self.inputs.len() - 1
                    }
                };
                Ok(ExprNode::Var(idx))
            }
            Some(c) => Err(SynthError::Parse {
                at: self.pos,
                detail: format!("unexpected character '{}'", c as char),
            }),
            None => Err(SynthError::Parse {
                at: self.pos,
                detail: "unexpected end of input".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_named_inputs_in_order() {
        let e = Expr::parse("b | a & !b").unwrap();
        assert_eq!(e.inputs(), ["b", "a"]);
    }

    #[test]
    fn precedence_not_over_and_over_xor_over_or() {
        // !a & b ^ c | d parses as (((!a) & b) ^ c) | d.
        let e = Expr::parse("!a & b ^ c | d").unwrap();
        let check = |vals: [bool; 4]| {
            let [a, b, c, d] = vals;
            assert_eq!(e.eval(&vals), (((!a) && b) ^ c) || d, "{vals:?}");
        };
        for m in 0..16u32 {
            check([m & 1 == 1, m & 2 == 2, m & 4 == 4, m & 8 == 8]);
        }
    }

    #[test]
    fn parens_and_constants() {
        let e = Expr::parse("(a | 0) & (1 ^ b)").unwrap();
        assert!(e.eval(&[true, false]));
        assert!(!e.eval(&[true, true]));
    }

    #[test]
    fn double_negation_and_tilde() {
        let e = Expr::parse("~~a").unwrap();
        assert!(e.eval(&[true]));
        assert!(!e.eval(&[false]));
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in ["a &", "(a | b", "a @ b", "", "a b"] {
            let err = Expr::parse(bad).unwrap_err();
            assert!(matches!(err, SynthError::Parse { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn truth_table_round_trips_through_eval() {
        // 3-input majority, LSB-first: index m has bits (a, b, c).
        let bits: Vec<bool> = (0..8u32).map(|m| m.count_ones() >= 2).collect();
        let e = Expr::from_truth_table(3, &bits).unwrap();
        for (m, bit) in bits.iter().enumerate() {
            let vals = [m & 1 == 1, m & 2 == 2, m & 4 == 4];
            assert_eq!(e.eval(&vals), *bit, "minterm {m}");
        }
    }

    #[test]
    fn truth_table_text_form() {
        let e = Expr::parse_truth_table("0110_1001").unwrap();
        assert_eq!(e.inputs().len(), 3);
        // 3-input odd parity.
        for m in 0..8usize {
            let vals = [m & 1 == 1, m & 2 == 2, m & 4 == 4];
            assert_eq!(e.eval(&vals), (m.count_ones() % 2) == 1, "minterm {m}");
        }
    }

    #[test]
    fn truth_table_shape_validation() {
        assert!(Expr::from_truth_table(0, &[]).is_err());
        assert!(Expr::from_truth_table(2, &[true; 3]).is_err());
        assert!(Expr::parse_truth_table("012").is_err());
        assert!(Expr::parse_truth_table("011").is_err());
    }

    #[test]
    fn degenerate_tables() {
        let zero = Expr::parse_truth_table("0000").unwrap();
        let one = Expr::parse_truth_table("1111").unwrap();
        for m in 0..4usize {
            let vals = [m & 1 == 1, m & 2 == 2];
            assert!(!zero.eval(&vals));
            assert!(one.eval(&vals));
        }
    }
}
