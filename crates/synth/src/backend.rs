//! Execution backends for mapped programs.
//!
//! Two targets, verified against [`crate::dag::Circuit::eval_packed`]:
//!
//! * **[`SimdVm`]** — each [`Step`](crate::mapper::Step) executes as
//!   exactly one native operation on the VM's substrate (the mapper
//!   already chunked every gate to the substrate fan-in), so the
//!   executed trace matches the mapping's predictions one-to-one. On
//!   [`simdram::HostSubstrate`] the result is bit-exact; on
//!   [`simdram::DramSubstrate`] it inherits the characterized
//!   per-cell success rates.
//! * **[`bender`] assembly** — the program as a cycle-timed DDR4
//!   command schedule in the textual format of [`bender::asm`], for
//!   command-level replay. The emission mirrors [`simdram::cost`]'s
//!   steady-state accounting: per gate, N operand stagings, N−1
//!   constant reference rows, one `Frac`, the violated double
//!   activation, and one result copy-out; per NOT, a cross-subarray
//!   copy-invert pair (invert into staging, restore-polarity back to
//!   the destination's home row).

use crate::error::{Result, SynthError};
use crate::mapper::{Output, SynthProgram};
use bender::{Program, ProgramBuilder};
use dram_core::timing::SpeedBin;
use dram_core::{BankId, Bit, GlobalRow, LogicOp};
use fcdram::PackedBits;
use simdram::{BitRow, SimdVm, Substrate};

/// Executes a mapped program on a [`SimdVm`], one native operation per
/// step.
///
/// `inputs` are the operand rows in register order; they are read but
/// never freed or clobbered. The returned row is owned by the caller
/// (for constant or passthrough outputs it is a fresh copy).
///
/// # Errors
///
/// Fails on an operand-count mismatch or when the substrate runs out
/// of rows.
pub fn execute_on_vm<S: Substrate>(
    vm: &mut SimdVm<S>,
    prog: &SynthProgram,
    inputs: &[BitRow],
) -> Result<BitRow> {
    execute_on_vm_observed(vm, prog, inputs, |_, _| {})
}

/// [`execute_on_vm`] with a per-step observer: `on_step(i, step)` is
/// called after step `i` executes.
///
/// This is the job-scheduler entry point — the observer is where
/// per-operation accounting (retry draws, modeled latency/energy,
/// per-job success bookkeeping) hooks into an execution without the
/// backend knowing about any of it.
///
/// # Errors
///
/// Same conditions as [`execute_on_vm`].
pub fn execute_on_vm_observed<S: Substrate, F: FnMut(usize, &crate::mapper::Step)>(
    vm: &mut SimdVm<S>,
    prog: &SynthProgram,
    inputs: &[BitRow],
    mut on_step: F,
) -> Result<BitRow> {
    if inputs.len() != prog.inputs.len() {
        return Err(SynthError::InputMismatch {
            expected: prog.inputs.len(),
            got: inputs.len(),
        });
    }
    let n_in = inputs.len();
    let last_use = prog.last_use();
    let mut regs: Vec<Option<BitRow>> = vec![None; prog.n_regs];
    for (r, row) in inputs.iter().enumerate() {
        regs[r] = Some(*row);
    }
    for (i, step) in prog.steps.iter().enumerate() {
        let args: Vec<BitRow> = step
            .args
            .iter()
            .map(|r| regs[*r].expect("mapper emits defs before uses"))
            .collect();
        let out = match step.op {
            None => vm.bit_not(args[0])?,
            Some(LogicOp::And) => vm.bit_and(&args)?,
            Some(LogicOp::Or) => vm.bit_or(&args)?,
            Some(LogicOp::Nand) => vm.bit_nand(&args)?,
            Some(LogicOp::Nor) => vm.bit_nor(&args)?,
        };
        regs[step.out] = Some(out);
        on_step(i, step);
        // Free temporaries at their last use to keep row pressure at
        // the live-range width instead of the program length.
        for r in &step.args {
            if *r >= n_in && last_use[*r] <= i {
                if let Some(row) = regs[*r].take() {
                    vm.release(row);
                }
            }
        }
    }
    match prog.output {
        Output::Const(b) => {
            let out = vm.alloc_row()?;
            let src = if b { vm.one_row() } else { vm.zero_row() };
            vm.substrate_mut().copy(src, out)?;
            Ok(out)
        }
        Output::Reg(r) if r < n_in => {
            let out = vm.alloc_row()?;
            vm.substrate_mut().copy(inputs[r], out)?;
            Ok(out)
        }
        Output::Reg(r) => Ok(regs[r].take().expect("output register defined")),
    }
}

/// Convenience wrapper: stages packed operand columns into fresh rows,
/// executes, reads the packed result back, and frees every staged row.
///
/// # Errors
///
/// Fails on operand mismatch, ragged lane counts, or row exhaustion.
pub fn execute_packed<S: Substrate>(
    vm: &mut SimdVm<S>,
    prog: &SynthProgram,
    operands: &[PackedBits],
) -> Result<PackedBits> {
    execute_packed_observed(vm, prog, operands, |_, _| {})
}

/// [`execute_packed`] with a per-step observer (see
/// [`execute_on_vm_observed`]). The operand staging rows are taken as
/// one [`simdram::RowLease`] and returned as one lease, so a
/// scheduler's row accounting stays per job.
///
/// # Errors
///
/// Same conditions as [`execute_packed`].
pub fn execute_packed_observed<S: Substrate, F: FnMut(usize, &crate::mapper::Step)>(
    vm: &mut SimdVm<S>,
    prog: &SynthProgram,
    operands: &[PackedBits],
    on_step: F,
) -> Result<PackedBits> {
    if operands.len() != prog.inputs.len() {
        return Err(SynthError::InputMismatch {
            expected: prog.inputs.len(),
            got: operands.len(),
        });
    }
    let lease = vm.lease_rows(operands.len())?;
    let staged: Result<()> = (|| {
        for (i, o) in operands.iter().enumerate() {
            vm.substrate_mut().write_packed(lease.row(i), o)?;
        }
        Ok(())
    })();
    let result = staged.and_then(|()| execute_on_vm_observed(vm, prog, lease.rows(), on_step));
    let out = match result {
        Ok(out) => {
            let packed = vm.substrate_mut().read_packed(out);
            vm.release(out);
            packed.map_err(SynthError::from)
        }
        Err(e) => Err(e),
    };
    vm.end_lease(lease);
    out
}

/// Emits mapped programs as [`bender`] command schedules.
///
/// Register `r` lives in home row `r` of the first subarray, whose
/// *top* rows hold the reference/frac row and the constant rows of
/// each gate; the paired subarray holds the operand staging rows, so
/// every staging, charge-share, and copy-out activation pairs a
/// home-subarray row with a paired-subarray row. The schedule is
/// *replay-accurate* (every violated-timing sequence of the paper, in
/// execution order, with legal addresses for the target geometry); it
/// does not functionally simulate the charge sharing — that is the
/// device model's job when the program is executed.
#[derive(Debug, Clone)]
pub struct BenderEmitter {
    /// Target bank.
    pub bank: BankId,
    /// Rows per subarray of the target geometry (the default 512
    /// matches every Table-1 part).
    pub rows_per_subarray: usize,
    /// Columns written into constant reference rows. Must be a
    /// multiple of 4 so `WR` hex data round-trips exactly.
    pub cols: usize,
    /// Speed bin the cycle schedule targets.
    pub speed: SpeedBin,
}

impl Default for BenderEmitter {
    fn default() -> Self {
        BenderEmitter {
            bank: BankId(0),
            rows_per_subarray: 512,
            cols: 32,
            speed: SpeedBin::Mt2666,
        }
    }
}

/// Reference-side scratch at the *top* of the home subarray: the
/// frac/reference row plus 15 constant rows (so every staging,
/// charge-share, and copy-out activation pairs a home-subarray row
/// with a paired-subarray row, as the paper's sequences require).
const REF_SCRATCH: usize = simdram::MAX_FAN_IN;

impl BenderEmitter {
    /// Emits the command program.
    ///
    /// # Errors
    ///
    /// Fails when the register file exceeds the home subarray, the
    /// scratch layout exceeds the paired subarray, or `cols` is not a
    /// multiple of 4.
    pub fn emit(&self, prog: &SynthProgram) -> Result<Program> {
        if self.cols == 0 || !self.cols.is_multiple_of(4) {
            return Err(SynthError::Backend(format!(
                "cols {} must be a positive multiple of 4",
                self.cols
            )));
        }
        if prog.n_regs.max(1) + REF_SCRATCH > self.rows_per_subarray {
            return Err(SynthError::OutOfRows {
                need: prog.n_regs.max(1) + REF_SCRATCH,
                have: self.rows_per_subarray,
            });
        }
        let rps = self.rows_per_subarray;
        // Home rows (registers) fill the first subarray bottom-up;
        // reference scratch occupies its top; operand staging rows
        // live in the paired subarray.
        let home = |r: usize| GlobalRow(r);
        let ref_row = GlobalRow(rps - 1);
        let const_row = |j: usize| GlobalRow(rps - 2 - j);
        let stage = |i: usize| GlobalRow(rps + i);
        let mut b = ProgramBuilder::new(self.speed);
        for step in &prog.steps {
            match step.op {
                None => {
                    // NOT: one cross-subarray copy-invert into the
                    // staging row, one copy-invert back to the home
                    // row (restoring polarity, RowClone-style).
                    b.seq_copy_invert(self.bank, home(step.args[0]), stage(0));
                    b.seq_copy_invert(self.bank, stage(0), home(step.out));
                }
                Some(op) => {
                    let n = step.args.len();
                    // Stage the N operands into the compute side.
                    for (i, arg) in step.args.iter().enumerate() {
                        b.seq_copy_invert(self.bank, home(*arg), stage(i));
                    }
                    // N−1 constant reference rows: all-1 for the AND
                    // family, all-0 for the OR family (§6.1).
                    let fill = Bit::from(op.is_and_family());
                    for j in 0..n.saturating_sub(1) {
                        b.seq_write_row(self.bank, const_row(j), vec![fill; self.cols]);
                    }
                    // Frac the reference row to VDD/2, then the
                    // double-violated charge-sharing activation pairing
                    // the reference side with the staged compute side.
                    b.seq_frac(self.bank, ref_row);
                    b.seq_charge_share(self.bank, ref_row, stage(0));
                    // Result copy-out to the destination home row.
                    b.seq_copy_invert(self.bank, stage(0), home(step.out));
                }
            }
        }
        match prog.output {
            Output::Const(v) => {
                b.seq_write_row(self.bank, home(0), vec![Bit::from(v); self.cols]);
            }
            Output::Reg(_) => {}
        }
        Ok(b.build())
    }

    /// Emits the program as assembly text ([`bender::asm::format`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BenderEmitter::emit`].
    pub fn emit_asm(&self, prog: &SynthProgram) -> Result<String> {
        Ok(bender::asm::format(&self.emit(prog)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::dag::Circuit;
    use crate::expr::Expr;
    use crate::mapper::Mapper;
    use simdram::HostSubstrate;

    fn mapped(text: &str) -> crate::mapper::Mapping {
        let cost = CostModel::table1_defaults();
        Mapper::new(&cost, 16).map(&Circuit::from_expr(&Expr::parse(text).unwrap()))
    }

    fn random_operands(n: usize, lanes: usize, seed: u64) -> Vec<PackedBits> {
        (0..n)
            .map(|i| {
                let mut p = PackedBits::zeros(lanes);
                for l in 0..lanes {
                    let h = dram_core::math::mix3(seed, i as u64, l as u64);
                    p.set(l, h & 1 == 1);
                }
                p
            })
            .collect()
    }

    #[test]
    fn host_execution_is_bit_exact() {
        for text in [
            "a ^ b ^ c ^ d",
            "(a & b) | (a & c) | (b & c)",
            "!(a | b | c) & (d ^ e)",
            "a",
            "!a",
            "a & !a",
            "a | 1",
        ] {
            let expr = Expr::parse(text).unwrap();
            let circuit = Circuit::from_expr(&expr);
            let m = mapped(text);
            let lanes = 130;
            let ops = random_operands(circuit.inputs().len(), lanes, 0xBEEF);
            let expect = circuit.eval_packed(&ops);
            let mut vm = SimdVm::new(HostSubstrate::new(lanes, 256)).unwrap();
            let got = execute_packed(&mut vm, &m.program, &ops).unwrap();
            assert_eq!(got, expect, "{text}");
        }
    }

    #[test]
    fn execution_frees_every_temporary() {
        let m = mapped("(a & b & c & d) ^ (e | f | g | h)");
        let lanes = 64;
        let mut vm = SimdVm::new(HostSubstrate::new(lanes, 256)).unwrap();
        let live0 = vm.substrate().live_rows();
        let ops = random_operands(8, lanes, 7);
        let out = execute_packed(&mut vm, &m.program, &ops).unwrap();
        assert_eq!(out.len(), lanes);
        assert_eq!(
            vm.substrate().live_rows(),
            live0,
            "all staged and temporary rows returned"
        );
    }

    #[test]
    fn observed_execution_sees_every_step_and_narrowed_stays_exact() {
        let text = "(a & b & c & d & e & f & g & h) ^ !(i | j | k | l | m)";
        let expr = Expr::parse(text).unwrap();
        let circuit = Circuit::from_expr(&expr);
        let m = mapped(text);
        let lanes = 77;
        let ops = random_operands(circuit.inputs().len(), lanes, 0x0B5E);
        let expect = circuit.eval_packed(&ops);
        for prog in [
            m.program.clone(),
            m.program.narrowed(3),
            m.program.narrowed(2),
        ] {
            let mut vm = SimdVm::new(HostSubstrate::new(lanes, 256)).unwrap();
            let mut seen = Vec::new();
            let got = execute_packed_observed(&mut vm, &prog, &ops, |i, s| {
                seen.push((i, s.args.len()));
            })
            .unwrap();
            assert_eq!(got, expect, "narrowed program diverged");
            assert_eq!(seen.len(), prog.steps.len(), "observer missed steps");
            for (k, (i, _)) in seen.iter().enumerate() {
                assert_eq!(*i, k, "steps observed in order");
            }
        }
    }

    #[test]
    fn operand_mismatch_is_rejected() {
        let m = mapped("a & b");
        let mut vm = SimdVm::new(HostSubstrate::new(8, 64)).unwrap();
        let err = execute_packed(&mut vm, &m.program, &random_operands(1, 8, 1)).unwrap_err();
        assert!(matches!(
            err,
            SynthError::InputMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn vm_trace_matches_mapping() {
        let m = mapped("(a ^ b) & (c | d | e)");
        let lanes = 32;
        let mut vm = SimdVm::new(HostSubstrate::new(lanes, 256)).unwrap();
        let ops = random_operands(5, lanes, 3);
        vm.clear_trace();
        let _ = execute_packed(&mut vm, &m.program, &ops).unwrap();
        // Staging writes/reads are host transfers; the in-DRAM op
        // count must equal the mapping exactly.
        assert_eq!(vm.trace().in_dram_ops(), m.native_ops);
    }

    #[test]
    fn bender_emission_round_trips_and_scales() {
        let m = mapped("(a & b & c) | !(d & e)");
        let em = BenderEmitter::default();
        let p = em.emit(&m.program).unwrap();
        assert!(!p.is_empty());
        let text = em.emit_asm(&m.program).unwrap();
        let back = bender::asm::parse(&text, em.speed).unwrap();
        assert_eq!(back, p, "asm round-trip");
        // More gates, more commands.
        let small = em.emit(&mapped("a & b").program).unwrap();
        assert!(p.len() > small.len());
    }

    #[test]
    fn bender_emission_validates_shape() {
        let m = mapped("a & b");
        let bad_cols = BenderEmitter {
            cols: 30,
            ..BenderEmitter::default()
        };
        assert!(bad_cols.emit(&m.program).is_err());
        let tiny = BenderEmitter {
            rows_per_subarray: 16,
            ..BenderEmitter::default()
        };
        assert!(matches!(
            tiny.emit(&m.program),
            Err(SynthError::OutOfRows { .. })
        ));
    }

    #[test]
    fn emitted_program_executes_on_a_module() {
        use dram_core::{ChipId, DramModule};
        let m = mapped("(a & b) | c");
        let cfg = dram_core::config::table1().remove(0).with_modeled_cols(32);
        let em = BenderEmitter {
            cols: 32,
            ..BenderEmitter::default()
        };
        let p = em.emit(&m.program).unwrap();
        let mut bender = bender::Bender::new(DramModule::new(cfg));
        let exec = bender.execute(ChipId(0), &p).expect("legal command stream");
        assert!(exec.reads.is_empty(), "emission issues no RD commands");
    }

    #[test]
    fn constant_output_emits_a_write() {
        let m = mapped("a & !a");
        let p = BenderEmitter::default().emit(&m.program).unwrap();
        assert!(p
            .commands()
            .iter()
            .any(|c| matches!(c.command, bender::DdrCommand::Wr(_, _))));
    }
}
