//! Bender-assembly emission for mapped programs.
//!
//! *Execution* of mapped programs lives in the `fcexec` crate — one
//! observer-driven engine behind every backend (`SimdVm` substrates
//! and the command-schedule `BenderBackend`). What remains here is
//! [`BenderEmitter`]: the program as a cycle-timed DDR4 command
//! schedule in the textual format of [`bender::asm`], for
//! command-level replay on real testing infrastructure. The emission
//! mirrors [`simdram::cost`]'s steady-state accounting: per gate, N
//! operand stagings, N−1 constant reference rows, one `Frac`, the
//! violated double activation, and one result copy-out; per NOT, a
//! cross-subarray copy-invert pair (invert into staging,
//! restore-polarity back to the destination's home row).

use crate::error::{Result, SynthError};
use crate::mapper::{Output, SynthProgram};
use bender::{Program, ProgramBuilder};
use dram_core::timing::SpeedBin;
use dram_core::{BankId, Bit, GlobalRow};

/// Emits mapped programs as [`bender`] command schedules.
///
/// Register `r` lives in home row `r` of the first subarray, whose
/// *top* rows hold the reference/frac row and the constant rows of
/// each gate; the paired subarray holds the operand staging rows, so
/// every staging, charge-share, and copy-out activation pairs a
/// home-subarray row with a paired-subarray row. The schedule is
/// *replay-accurate* (every violated-timing sequence of the paper, in
/// execution order, with legal addresses for the target geometry); it
/// does not functionally simulate the charge sharing — that is the
/// device model's job when the program is executed.
#[derive(Debug, Clone)]
pub struct BenderEmitter {
    /// Target bank.
    pub bank: BankId,
    /// Rows per subarray of the target geometry (the default 512
    /// matches every Table-1 part).
    pub rows_per_subarray: usize,
    /// Columns written into constant reference rows. Must be a
    /// multiple of 4 so `WR` hex data round-trips exactly.
    pub cols: usize,
    /// Speed bin the cycle schedule targets.
    pub speed: SpeedBin,
}

impl Default for BenderEmitter {
    fn default() -> Self {
        BenderEmitter {
            bank: BankId(0),
            rows_per_subarray: 512,
            cols: 32,
            speed: SpeedBin::Mt2666,
        }
    }
}

/// Reference-side scratch at the *top* of the home subarray: the
/// frac/reference row plus 15 constant rows (so every staging,
/// charge-share, and copy-out activation pairs a home-subarray row
/// with a paired-subarray row, as the paper's sequences require).
const REF_SCRATCH: usize = simdram::MAX_FAN_IN;

impl BenderEmitter {
    /// Emits the command program.
    ///
    /// # Errors
    ///
    /// Fails when the register file exceeds the home subarray, the
    /// scratch layout exceeds the paired subarray, or `cols` is not a
    /// multiple of 4.
    pub fn emit(&self, prog: &SynthProgram) -> Result<Program> {
        if self.cols == 0 || !self.cols.is_multiple_of(4) {
            return Err(SynthError::Backend(format!(
                "cols {} must be a positive multiple of 4",
                self.cols
            )));
        }
        if prog.n_regs.max(1) + REF_SCRATCH > self.rows_per_subarray {
            return Err(SynthError::OutOfRows {
                need: prog.n_regs.max(1) + REF_SCRATCH,
                have: self.rows_per_subarray,
            });
        }
        let rps = self.rows_per_subarray;
        // Home rows (registers) fill the first subarray bottom-up;
        // reference scratch occupies its top; operand staging rows
        // live in the paired subarray.
        let home = |r: usize| GlobalRow(r);
        let ref_row = GlobalRow(rps - 1);
        let const_row = |j: usize| GlobalRow(rps - 2 - j);
        let stage = |i: usize| GlobalRow(rps + i);
        let mut b = ProgramBuilder::new(self.speed);
        for step in &prog.steps {
            match step.op {
                None => {
                    // NOT: one cross-subarray copy-invert into the
                    // staging row, one copy-invert back to the home
                    // row (restoring polarity, RowClone-style).
                    b.seq_copy_invert(self.bank, home(step.args[0]), stage(0));
                    b.seq_copy_invert(self.bank, stage(0), home(step.out));
                }
                Some(op) => {
                    let n = step.args.len();
                    // Stage the N operands into the compute side.
                    for (i, arg) in step.args.iter().enumerate() {
                        b.seq_copy_invert(self.bank, home(*arg), stage(i));
                    }
                    // N−1 constant reference rows: all-1 for the AND
                    // family, all-0 for the OR family (§6.1).
                    let fill = Bit::from(op.is_and_family());
                    for j in 0..n.saturating_sub(1) {
                        b.seq_write_row(self.bank, const_row(j), vec![fill; self.cols]);
                    }
                    // Frac the reference row to VDD/2, then the
                    // double-violated charge-sharing activation pairing
                    // the reference side with the staged compute side.
                    b.seq_frac(self.bank, ref_row);
                    b.seq_charge_share(self.bank, ref_row, stage(0));
                    // Result copy-out to the destination home row.
                    b.seq_copy_invert(self.bank, stage(0), home(step.out));
                }
            }
        }
        match prog.output {
            Output::Const(v) => {
                b.seq_write_row(self.bank, home(0), vec![Bit::from(v); self.cols]);
            }
            Output::Reg(_) => {}
        }
        Ok(b.build())
    }

    /// Emits the program as assembly text ([`bender::asm::format`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BenderEmitter::emit`].
    pub fn emit_asm(&self, prog: &SynthProgram) -> Result<String> {
        Ok(bender::asm::format(&self.emit(prog)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::dag::Circuit;
    use crate::expr::Expr;
    use crate::mapper::Mapper;

    fn mapped(text: &str) -> crate::mapper::Mapping {
        let cost = CostModel::table1_defaults();
        Mapper::new(&cost, 16).map(&Circuit::from_expr(&Expr::parse(text).unwrap()))
    }

    #[test]
    fn bender_emission_round_trips_and_scales() {
        let m = mapped("(a & b & c) | !(d & e)");
        let em = BenderEmitter::default();
        let p = em.emit(&m.program).unwrap();
        assert!(!p.is_empty());
        let text = em.emit_asm(&m.program).unwrap();
        let back = bender::asm::parse(&text, em.speed).unwrap();
        assert_eq!(back, p, "asm round-trip");
        // More gates, more commands.
        let small = em.emit(&mapped("a & b").program).unwrap();
        assert!(p.len() > small.len());
    }

    #[test]
    fn bender_emission_validates_shape() {
        let m = mapped("a & b");
        let bad_cols = BenderEmitter {
            cols: 30,
            ..BenderEmitter::default()
        };
        assert!(bad_cols.emit(&m.program).is_err());
        let tiny = BenderEmitter {
            rows_per_subarray: 16,
            ..BenderEmitter::default()
        };
        assert!(matches!(
            tiny.emit(&m.program),
            Err(SynthError::OutOfRows { .. })
        ));
    }

    #[test]
    fn emitted_program_executes_on_a_module() {
        use dram_core::{ChipId, DramModule};
        let m = mapped("(a & b) | c");
        let cfg = dram_core::config::table1().remove(0).with_modeled_cols(32);
        let em = BenderEmitter {
            cols: 32,
            ..BenderEmitter::default()
        };
        let p = em.emit(&m.program).unwrap();
        let mut bender = bender::Bender::new(DramModule::new(cfg));
        let exec = bender.execute(ChipId(0), &p).expect("legal command stream");
        assert!(exec.reads.is_empty(), "emission issues no RD commands");
    }

    #[test]
    fn constant_output_emits_a_write() {
        let m = mapped("a & !a");
        let p = BenderEmitter::default().emit(&m.program).unwrap();
        assert!(p
            .commands()
            .iter()
            .any(|c| matches!(c.command, bender::DdrCommand::Wr(_, _))));
    }
}
