//! # fcsynth — reliability-aware logic synthesis for FCDRAM
//!
//! The paper's headline result is *functional completeness*: NOT plus
//! N-input AND/OR/NAND/NOR in commodity DRAM computes any boolean
//! function. This crate is the compiler that makes the claim
//! operational end to end:
//!
//! 1. **frontend** ([`expr`]) — boolean expressions
//!    (`!`, `&`, `|`, `^`, parentheses, named inputs) or raw truth
//!    tables;
//! 2. **IR** ([`dag`]) — a structurally-hashed gate DAG with
//!    constant folding, common-subexpression sharing, De Morgan
//!    rewrites, and associative flattening into wide N-input gates;
//! 3. **mapping** ([`mapper`]) — a technology mapper that chunks wide
//!    gates into native-gate trees using a reliability [`CostModel`]
//!    (measured per-(op, N) success rates from a characterization
//!    sweep, or built-in Table-1 defaults), maximizing expected
//!    whole-circuit success with op count and latency as tiebreakers;
//! 4. **emission** ([`backend`]) — the program as [`bender`] assembly
//!    for command-level replay.
//!
//! *Execution* of mapped programs lives in the `fcexec` crate: one
//! observer-driven engine ([`ExecBackend`](../fcexec) implementors)
//! behind the `SimdVm` substrates and the command-schedule
//! `BenderBackend`, replacing the four `execute_*` entry points this
//! crate used to carry.
//!
//! ## Quickstart
//!
//! ```
//! use fcsynth::{compile, CostModel};
//!
//! let cost = CostModel::table1_defaults();
//! let c = compile("(a & b) | (a & c) | (b & c)", &cost, 16)?;
//! assert_eq!(c.circuit.inputs(), ["a", "b", "c"]);
//! assert!(c.mapping.expected_success > 0.9);
//! assert!(c.mapping.native_ops >= c.circuit.live_ops());
//!
//! // The reference evaluator agrees with the majority truth table.
//! let ops: Vec<fcdram::PackedBits> = [
//!     [true, true, false, false],
//!     [true, false, true, false],
//!     [false, true, true, false],
//! ]
//! .iter()
//! .map(|bits| fcdram::PackedBits::from_bools(bits))
//! .collect();
//! assert_eq!(
//!     c.circuit.eval_packed(&ops).to_bools(),
//!     vec![true, true, true, false]
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod cost;
pub mod dag;
pub mod error;
pub mod expr;
pub mod mapper;

pub use backend::BenderEmitter;
pub use cost::{CostModel, CostModelData, GateCost};
pub use dag::{Circuit, Node, NodeId};
pub use error::{Result, SynthError};
pub use expr::{Expr, ExprNode, ExprOp};
pub use mapper::{Mapper, Mapping, Output, ProgramCost, Step, SynthProgram};

/// A fully compiled expression: parsed form, optimized DAG, and the
/// reliability-aware mapping.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The parsed expression (input-name table included).
    pub expr: Expr,
    /// The optimized gate DAG.
    pub circuit: Circuit,
    /// The reliability-aware mapping.
    pub mapping: Mapping,
}

/// Parses, optimizes, and maps an expression in one call.
///
/// `max_fan_in` is the widest native gate the target substrate
/// executes (16 for the paper's SK Hynix parts).
///
/// # Errors
///
/// Fails on a parse error.
pub fn compile(text: &str, cost: &CostModel, max_fan_in: usize) -> Result<Compiled> {
    let expr = Expr::parse(text)?;
    Ok(compile_expr(expr, cost, max_fan_in))
}

/// Optimizes and maps an already-parsed expression.
pub fn compile_expr(expr: Expr, cost: &CostModel, max_fan_in: usize) -> Compiled {
    let circuit = Circuit::from_expr(&expr);
    let mapping = Mapper::new(cost, max_fan_in).map(&circuit);
    Compiled {
        expr,
        circuit,
        mapping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_pipeline_end_to_end() {
        let cost = CostModel::table1_defaults();
        let c = compile("a ^ b ^ c ^ d", &cost, 16).unwrap();
        assert_eq!(c.circuit.inputs().len(), 4);
        // 3 XORs at 3 gates each.
        assert_eq!(c.mapping.native_ops, 9);
        assert!(c.mapping.expected_success > 0.8);
        assert!(compile("a &", &cost, 16).is_err());
    }
}
