//! Error type for the synthesis pipeline.

use std::fmt;

/// Everything that can go wrong between an expression string and an
/// executable FCDRAM program.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// The expression text failed to parse.
    Parse {
        /// Byte offset of the offending token.
        at: usize,
        /// Human-readable description.
        detail: String,
    },
    /// A truth table had an invalid shape or digit.
    BadTruthTable {
        /// Description of the problem.
        detail: String,
    },
    /// A cost-model JSON document was malformed.
    BadCostModel {
        /// Description of the problem.
        detail: String,
    },
    /// The mapped program needs more rows than the backend offers.
    OutOfRows {
        /// Rows required.
        need: usize,
        /// Rows available.
        have: usize,
    },
    /// An execution backend reported a failure.
    Backend(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Parse { at, detail } => {
                write!(f, "parse error at byte {at}: {detail}")
            }
            SynthError::BadTruthTable { detail } => write!(f, "bad truth table: {detail}"),
            SynthError::BadCostModel { detail } => write!(f, "bad cost model: {detail}"),
            SynthError::OutOfRows { need, have } => {
                write!(f, "program needs {need} rows, backend offers {have}")
            }
            SynthError::Backend(detail) => write!(f, "backend failure: {detail}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SynthError>;
