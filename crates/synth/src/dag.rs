//! The structurally-hashed gate-DAG intermediate representation.
//!
//! A [`Circuit`] holds an immutable node arena plus a hash-consing
//! interner: every structurally identical subterm is created exactly
//! once, so common-subexpression sharing is a property of
//! construction, not a separate pass. The smart constructors run the
//! optimization pipeline *incrementally* as the DAG is built:
//!
//! * **constant folding** — gate inputs that are identity constants
//!   are dropped, dominating constants collapse the gate;
//! * **double-negation and terminal inversion** — `!!x → x`,
//!   `!AND → NAND` (and the three duals), so explicit NOT nodes only
//!   ever wrap circuit inputs;
//! * **De Morgan rewrites** — a gate whose inputs are all freely
//!   invertible (explicit NOTs, or gates whose inverse costs the
//!   same) flips family instead (`AND(!a,!b) → NOR(a,b)`,
//!   `AND(NOR(a,b),!c) → NOR(a,b,c)`), deleting the input inverters;
//! * **associative flattening** — nested same-family monotone gates
//!   merge into one wide N-input gate (`AND(AND(a,b),c) → AND(a,b,c)`),
//!   plus idempotence (`AND(a,a) → a`) and complement detection
//!   (`AND(a,!a) → 0`) over the flattened input set.
//!
//! Flattening deliberately ignores the hardware fan-in limit: the IR
//! keeps the widest algebraic form and the tech mapper
//! ([`crate::mapper`]) re-chunks it into balanced native-gate trees of
//! whatever width the reliability model favors (≤ the substrate's
//! 16-input maximum).
//!
//! XOR is not native to the substrate, so [`Circuit::xor`] expands to
//! the paper's 3-gate circuit `AND(OR(a,b), NAND(a,b))` at build time;
//! the interner shares the `OR`/`NAND` subterms with any other use.

use crate::expr::{Expr, ExprNode, ExprOp};
use dram_core::LogicOp;
use fcdram::PackedBits;
use std::collections::HashMap;

/// Index of a node in a [`Circuit`] arena.
pub type NodeId = usize;

/// One DAG node. Gate children are sorted and deduplicated, which is
/// what makes structural hashing canonical for the commutative,
/// idempotent native operations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// Circuit input, by operand index.
    Input(usize),
    /// Constant 0 or 1.
    Const(bool),
    /// Negation. Only ever wraps an [`Node::Input`] (negations of
    /// gates become the inverse gate, negations of constants fold).
    Not(NodeId),
    /// Native N-input gate, 2 ≤ N (unbounded in the IR; the mapper
    /// chunks to the substrate fan-in).
    Gate(LogicOp, Vec<NodeId>),
}

/// The inverse gate of `op` (terminal inversion: `!AND = NAND`).
fn inverse_op(op: LogicOp) -> LogicOp {
    match op {
        LogicOp::And => LogicOp::Nand,
        LogicOp::Nand => LogicOp::And,
        LogicOp::Or => LogicOp::Nor,
        LogicOp::Nor => LogicOp::Or,
    }
}

/// The gate equivalent to `op` over complemented inputs (De Morgan:
/// `AND(!x...) = NOR(x...)`).
fn demorgan_op(op: LogicOp) -> LogicOp {
    match op {
        LogicOp::And => LogicOp::Nor,
        LogicOp::Nand => LogicOp::Or,
        LogicOp::Or => LogicOp::Nand,
        LogicOp::Nor => LogicOp::And,
    }
}

/// A hash-consed gate DAG with one designated output.
///
/// # Examples
///
/// ```
/// let expr = fcsynth::Expr::parse("a ^ b ^ c ^ d")?;
/// let circuit = fcsynth::Circuit::from_expr(&expr);
/// assert_eq!(circuit.inputs().len(), 4);
/// assert_eq!(circuit.truth_table().count_ones(), 8, "4-bit odd parity");
/// # Ok::<(), fcsynth::SynthError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    nodes: Vec<Node>,
    interner: HashMap<Node, NodeId>,
    inputs: Vec<String>,
    output: NodeId,
}

impl Circuit {
    /// An empty circuit over named inputs, with output pinned to
    /// constant 0 until [`Circuit::set_output`].
    pub fn new(inputs: Vec<String>) -> Circuit {
        let mut c = Circuit {
            nodes: Vec::new(),
            interner: HashMap::new(),
            inputs,
            output: 0,
        };
        c.output = c.constant(false);
        c
    }

    /// Builds the DAG of a parsed expression, running the full
    /// optimization pipeline during construction.
    pub fn from_expr(expr: &Expr) -> Circuit {
        let mut c = Circuit::new(expr.inputs().to_vec());
        let out = c.build(expr.root());
        c.set_output(out);
        c
    }

    fn build(&mut self, node: &ExprNode) -> NodeId {
        match node {
            ExprNode::Var(i) => self.input(*i),
            ExprNode::Const(b) => self.constant(*b),
            ExprNode::Apply(ExprOp::Not, xs) => {
                let x = self.build(&xs[0]);
                self.not(x)
            }
            ExprNode::Apply(ExprOp::And, xs) => {
                let ids: Vec<NodeId> = xs.iter().map(|x| self.build(x)).collect();
                self.gate(LogicOp::And, ids)
            }
            ExprNode::Apply(ExprOp::Or, xs) => {
                let ids: Vec<NodeId> = xs.iter().map(|x| self.build(x)).collect();
                self.gate(LogicOp::Or, ids)
            }
            ExprNode::Apply(ExprOp::Xor, xs) => {
                let ids: Vec<NodeId> = xs.iter().map(|x| self.build(x)).collect();
                ids.into_iter()
                    .reduce(|a, b| self.xor(a, b))
                    .expect("xor arity >= 1")
            }
        }
    }

    fn intern(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.interner.get(&node) {
            return *id;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.interner.insert(node, id);
        id
    }

    /// The node for input `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the input table.
    pub fn input(&mut self, i: usize) -> NodeId {
        assert!(i < self.inputs.len(), "input {i} out of range");
        self.intern(Node::Input(i))
    }

    /// The node for constant `b`.
    pub fn constant(&mut self, b: bool) -> NodeId {
        self.intern(Node::Const(b))
    }

    /// `!x`, normalized: constants fold, `!!x → x`, `!gate →
    /// inverse gate` (so NOT nodes survive only over inputs).
    pub fn not(&mut self, x: NodeId) -> NodeId {
        match self.nodes[x].clone() {
            Node::Const(b) => self.constant(!b),
            Node::Not(y) => y,
            Node::Gate(op, children) => self.gate(inverse_op(op), children),
            Node::Input(_) => self.intern(Node::Not(x)),
        }
    }

    /// `op(children...)`, normalized per the module-level pipeline.
    /// Accepts any child count ≥ 1 (a single child degenerates to the
    /// child or its negation).
    ///
    /// # Panics
    ///
    /// Panics on an empty child list.
    pub fn gate(&mut self, op: LogicOp, children: Vec<NodeId>) -> NodeId {
        assert!(!children.is_empty(), "gate with no inputs");
        let monotone = if op.is_and_family() {
            LogicOp::And
        } else {
            LogicOp::Or
        };
        // Identity / dominating constants of the monotone family.
        let identity = op.is_and_family(); // AND: 1, OR: 0
        let mut flat: Vec<NodeId> = Vec::with_capacity(children.len());
        for c in children {
            match &self.nodes[c] {
                Node::Const(b) if *b == identity => {}
                Node::Const(_) => {
                    // Dominating constant: the monotone result is the
                    // dominator; apply terminal inversion.
                    return self.constant(!identity ^ op.is_inverted_terminal());
                }
                // Associative flattening of same-family monotone
                // children (AND under AND/NAND, OR under OR/NOR).
                Node::Gate(cop, inner) if *cop == monotone => flat.extend(inner.iter().copied()),
                _ => flat.push(c),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        if flat.is_empty() {
            // Every input was the identity constant.
            return self.constant(identity ^ op.is_inverted_terminal());
        }
        // Complement detection: x and !x together collapse the gate.
        for c in &flat {
            if let Node::Not(y) = self.nodes[*c] {
                if flat.binary_search(&y).is_ok() {
                    return self.constant(!identity ^ op.is_inverted_terminal());
                }
            }
        }
        if flat.len() == 1 {
            let only = flat[0];
            return if op.is_inverted_terminal() {
                self.not(only)
            } else {
                only
            };
        }
        // De Morgan: when every input is freely invertible (an
        // explicit NOT, which unwraps, or a gate, whose inverse costs
        // the same) and at least one NOT is actually eliminated, flip
        // the family over the complemented inputs instead:
        // AND(!a,!b) → NOR(a,b), AND(NOR(a,b),!c) → NOR(a,b,c).
        // Each rewrite consumes ≥1 NOT and creates none, so the
        // recursion terminates.
        let nots = flat
            .iter()
            .filter(|c| matches!(self.nodes[**c], Node::Not(_)))
            .count();
        if nots >= 1
            && flat
                .iter()
                .all(|c| matches!(self.nodes[*c], Node::Not(_) | Node::Gate(..)))
        {
            let plain: Vec<NodeId> = flat.clone().into_iter().map(|c| self.not(c)).collect();
            return self.gate(demorgan_op(op), plain);
        }
        self.intern(Node::Gate(op, flat))
    }

    /// `a ⊕ b` expanded to the native 3-gate circuit
    /// `AND(OR(a,b), NAND(a,b))` (the form [`simdram`] synthesizes).
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let or_ab = self.gate(LogicOp::Or, vec![a, b]);
        let nand_ab = self.gate(LogicOp::Nand, vec![a, b]);
        self.gate(LogicOp::And, vec![or_ab, nand_ab])
    }

    /// Designates the output node.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn set_output(&mut self, out: NodeId) {
        assert!(out < self.nodes.len(), "output id out of range");
        self.output = out;
    }

    /// The designated output node.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// Input names, in operand order.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// All nodes (creation order is topological: children precede
    /// parents).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Ids of the nodes reachable from the output, in topological
    /// (children-first) order — the live set the mapper emits.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack = vec![self.output];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut live[id], true) {
                continue;
            }
            match &self.nodes[id] {
                Node::Not(x) => stack.push(*x),
                Node::Gate(_, xs) => stack.extend(xs.iter().copied()),
                _ => {}
            }
        }
        (0..self.nodes.len()).filter(|i| live[*i]).collect()
    }

    /// Number of live gate/NOT nodes (the pre-mapping logic depth
    /// measure; inputs and constants are free).
    pub fn live_ops(&self) -> usize {
        self.live_nodes()
            .into_iter()
            .filter(|id| matches!(self.nodes[*id], Node::Not(_) | Node::Gate(..)))
            .count()
    }

    /// Evaluates the DAG lane-wise over packed operand columns — the
    /// pure-software reference both backends are verified against.
    ///
    /// # Panics
    ///
    /// Panics when the operand count or lane widths are inconsistent.
    pub fn eval_packed(&self, operands: &[PackedBits]) -> PackedBits {
        assert_eq!(operands.len(), self.inputs.len(), "operand arity");
        let lanes = operands.first().map_or(0, PackedBits::len);
        assert!(
            operands.iter().all(|o| o.len() == lanes),
            "ragged operand lanes"
        );
        let mut values: Vec<Option<PackedBits>> = vec![None; self.nodes.len()];
        for id in self.live_nodes() {
            let v = match &self.nodes[id] {
                Node::Input(i) => operands[*i].clone(),
                Node::Const(b) => PackedBits::splat(*b, lanes),
                Node::Not(x) => {
                    let mut v = values[*x].clone().expect("topological order");
                    v.not_in_place();
                    v
                }
                Node::Gate(op, xs) => {
                    let mut acc = values[xs[0]].clone().expect("topological order");
                    for x in &xs[1..] {
                        let rhs = values[*x].as_ref().expect("topological order");
                        if op.is_and_family() {
                            acc.and_assign(rhs);
                        } else {
                            acc.or_assign(rhs);
                        }
                    }
                    if op.is_inverted_terminal() {
                        acc.not_in_place();
                    }
                    acc
                }
            };
            values[id] = Some(v);
        }
        values[self.output].take().expect("output evaluated")
    }

    /// The full truth table as packed lanes: lane `m` is the output
    /// for input assignment `m` (input `j` = bit `j` of `m`).
    ///
    /// # Panics
    ///
    /// Panics for more than 20 inputs (the table would exceed 1M lanes).
    pub fn truth_table(&self) -> PackedBits {
        let n = self.inputs.len();
        assert!(n <= 20, "truth table over {n} inputs is too large");
        let lanes = 1usize << n;
        let operands: Vec<PackedBits> = (0..n)
            .map(|j| {
                let mut p = PackedBits::zeros(lanes);
                for m in 0..lanes {
                    if m >> j & 1 == 1 {
                        p.set(m, true);
                    }
                }
                p
            })
            .collect();
        self.eval_packed(&operands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn of(text: &str) -> Circuit {
        Circuit::from_expr(&Expr::parse(text).unwrap())
    }

    #[test]
    fn consing_shares_subterms() {
        let c = of("(a & b) | ((a & b) & c)");
        // AND(a,b) appears once; the outer AND flattens to AND(a,b,c).
        let gates = c
            .nodes()
            .iter()
            .filter(|n| matches!(n, Node::Gate(..)))
            .count();
        assert_eq!(gates, 3, "AND(a,b), AND(a,b,c), OR — no duplicates");
    }

    #[test]
    fn flattening_builds_wide_gates() {
        let c = of("a & b & c & d & e");
        match c.node(c.output()) {
            Node::Gate(LogicOp::And, xs) => assert_eq!(xs.len(), 5),
            other => panic!("expected wide AND, got {other:?}"),
        }
        assert_eq!(c.live_ops(), 1, "one wide gate, no tree in the IR");
    }

    #[test]
    fn constant_folding() {
        let c = of("a & 0");
        assert!(matches!(c.node(c.output()), Node::Const(false)));
        let c = of("(a & 1) | 0");
        assert!(matches!(c.node(c.output()), Node::Input(0)));
        let c = of("a | !a");
        assert!(matches!(c.node(c.output()), Node::Const(true)));
        let c = of("a & a & a");
        assert!(matches!(c.node(c.output()), Node::Input(0)));
    }

    #[test]
    fn not_normalization() {
        // NOT over a gate becomes the inverse gate.
        let c = of("!(a & b)");
        assert!(matches!(c.node(c.output()), Node::Gate(LogicOp::Nand, _)));
        let c = of("!!(a | b)");
        assert!(matches!(c.node(c.output()), Node::Gate(LogicOp::Or, _)));
    }

    #[test]
    fn de_morgan_rewrites_all_negated_gates() {
        let c = of("!a & !b & !c");
        match c.node(c.output()) {
            Node::Gate(LogicOp::Nor, xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected NOR, got {other:?}"),
        }
        // Not just AND: OR of negations is NAND.
        let c = of("!a | !b");
        assert!(matches!(c.node(c.output()), Node::Gate(LogicOp::Nand, _)));
        // And the inverted terminals unwrap fully: !(!a & !b) = a | b.
        let c = of("!(!a & !b)");
        assert!(matches!(c.node(c.output()), Node::Gate(LogicOp::Or, _)));
    }

    #[test]
    fn nand_flattens_its_monotone_children() {
        let c = of("!((a & b) & c)");
        match c.node(c.output()) {
            Node::Gate(LogicOp::Nand, xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected NAND3, got {other:?}"),
        }
    }

    #[test]
    fn eval_matches_expr_semantics() {
        for text in [
            "a ^ b ^ c",
            "(a & b) | (!a & c)",
            "!(a | b) ^ (c & !d)",
            "(a | b | c | d) & !(a & b & c & d)",
        ] {
            let expr = Expr::parse(text).unwrap();
            let c = Circuit::from_expr(&expr);
            let n = expr.inputs().len();
            let table = c.truth_table();
            for m in 0..(1usize << n) {
                let vals: Vec<bool> = (0..n).map(|j| m >> j & 1 == 1).collect();
                assert_eq!(table.get(m), expr.eval(&vals), "{text} at {m}");
            }
        }
    }

    #[test]
    fn truth_table_expr_round_trip() {
        // Truth table -> SoP expression -> DAG reproduces the table.
        let bits: Vec<bool> = (0..16u32).map(|m| (m.count_ones() % 2) == 1).collect();
        let c = Circuit::from_expr(&Expr::from_truth_table(4, &bits).unwrap());
        let table = c.truth_table();
        for (m, b) in bits.iter().enumerate() {
            assert_eq!(table.get(m), *b, "minterm {m}");
        }
    }

    #[test]
    fn live_nodes_exclude_dead_intermediates() {
        // Flattening leaves the inner AND(a,b) node dead.
        let c = of("(a & b) & c");
        let live = c.live_nodes();
        assert!(live.len() < c.nodes().len(), "inner AND is dead");
        // Topological: children before parents.
        for (pos, id) in live.iter().enumerate() {
            if let Node::Gate(_, xs) = c.node(*id) {
                for x in xs {
                    assert!(live[..pos].contains(x), "child {x} after parent {id}");
                }
            }
        }
    }

    #[test]
    fn constant_output_circuits_evaluate() {
        let c = of("a & !a");
        let out = c.eval_packed(&[PackedBits::ones(5)]);
        assert_eq!(out.count_ones(), 0);
    }
}
