//! Reliability-aware technology mapping: gate DAG → native-op program.
//!
//! The IR keeps gates algebraically wide (unbounded fan-in); real
//! substrates execute at most [`simdram::MAX_FAN_IN`] inputs per
//! operation. The mapper re-chunks every wide gate into a balanced
//! tree of native gates, choosing the chunk width that **maximizes the
//! expected whole-circuit success probability** under the
//! [`CostModel`]'s per-(op, N) success rates — the paper's central
//! observation that reliability falls as more rows are activated
//! simultaneously makes this a genuine trade-off: one 16-input gate is
//! individually less reliable than a 2-input gate, but replaces
//! fifteen of them.
//!
//! Expected circuit success is the product of per-gate success rates
//! (independent-error model, conservatively ignoring masking — the
//! same assumption as [`simdram::reliability`]). Ties are broken by
//! native-op count, then by summed latency.
//!
//! Inverted-terminal gates (NAND/NOR) chunk like
//! [`simdram`]'s `reduce_inverted`: monotone stages until one final
//! native stage applies the inversion, so the tree costs no extra NOT.

use crate::cost::CostModel;
use crate::dag::{Circuit, Node};
use dram_core::LogicOp;
use serde::{Deserialize, Serialize};
use simdram::trace::{NativeOp, OpTrace, TraceEntry};

/// A virtual register of the mapped program. Registers
/// `0..inputs.len()` hold the operands; higher registers are
/// temporaries.
pub type Reg = usize;

/// One mapped native operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// `None` executes NOT; `Some(op)` executes the native gate with
    /// fan-in `args.len()`.
    pub op: Option<LogicOp>,
    /// Operand registers (1 for NOT, 2..=16 for gates).
    pub args: Vec<Reg>,
    /// Destination register.
    pub out: Reg,
}

/// Where the program's result lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Output {
    /// The circuit folded to a constant; nothing executes.
    Const(bool),
    /// The register holding the result (possibly an input register
    /// when the expression is a bare passthrough).
    Reg(Reg),
}

/// A linear native-op program over virtual registers.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthProgram {
    /// Operand names, in register order.
    pub inputs: Vec<String>,
    /// Native operations in execution order.
    pub steps: Vec<Step>,
    /// Result location.
    pub output: Output,
    /// Total registers used (inputs + temporaries).
    pub n_regs: usize,
}

/// A program priced under a (possibly different) cost model: the
/// admission-control primitive — a scheduler re-prices a submitted
/// program under the *assigned chip's* model before running it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramCost {
    /// Expected whole-program success probability (product over
    /// steps, in step order — the same fold [`Mapper::map`] uses).
    pub expected_success: f64,
    /// Summed steady-state latency, nanoseconds.
    pub latency_ns: f64,
    /// Summed steady-state energy, picojoules.
    pub energy_pj: f64,
}

impl SynthProgram {
    /// Registers read after step `i` (used by backends to free rows
    /// early): the set of `args` of steps `i+1..` plus the output reg.
    pub fn last_use(&self) -> Vec<usize> {
        let mut last = vec![0usize; self.n_regs];
        if let Output::Reg(r) = self.output {
            last[r] = self.steps.len();
        }
        for (i, s) in self.steps.iter().enumerate() {
            for a in &s.args {
                last[*a] = last[*a].max(i);
            }
        }
        last
    }

    /// The maximum number of simultaneously-live rows an execution
    /// with last-use freeing holds (operand rows live throughout,
    /// temporaries from definition to last use) — the row footprint a
    /// scheduler must lease for this job.
    pub fn peak_live_rows(&self) -> usize {
        let last = self.last_use();
        let n_in = self.inputs.len();
        let mut is_live = vec![false; self.n_regs];
        let mut live_temps = 0usize;
        let mut peak = n_in.max(1);
        for (i, s) in self.steps.iter().enumerate() {
            if s.out >= n_in && !is_live[s.out] {
                is_live[s.out] = true;
                live_temps += 1;
            }
            peak = peak.max(n_in + live_temps);
            for a in &s.args {
                if *a >= n_in && is_live[*a] && last[*a] <= i {
                    is_live[*a] = false;
                    live_temps -= 1;
                }
            }
        }
        peak
    }

    /// Prices the program under `cost`: success product, summed
    /// latency and energy, accumulated in step order (bit-identical to
    /// the fold [`Mapper::map`] performs while emitting).
    pub fn price(&self, cost: &CostModel) -> ProgramCost {
        let mut success = 1.0f64;
        let mut latency = 0.0f64;
        let mut energy = 0.0f64;
        for s in &self.steps {
            match s.op {
                None => {
                    success *= cost.not_success();
                    latency += cost.not_latency_ns();
                    energy += cost.not_energy_pj();
                }
                Some(op) => {
                    let n = s.args.len();
                    success *= cost.success(op, n);
                    latency += cost.latency_ns(op, n);
                    energy += cost.energy_pj(op, n);
                }
            }
        }
        ProgramCost {
            expected_success: success,
            latency_ns: latency,
            energy_pj: energy,
        }
    }

    /// Rewrites every gate wider than `max_width` into a balanced tree
    /// of at-most-`max_width` native gates (monotone stages, inverted
    /// terminals inverting in the final stage — the same discipline as
    /// [`Mapper`]'s emission), without needing the source circuit.
    ///
    /// This is the scheduler's *re-mapping* primitive: a job whose
    /// wide gates are too unreliable for its assigned chip is narrowed
    /// at the program level. Register numbering of the original
    /// program is preserved (new temporaries are appended), so the
    /// narrowed program is a drop-in functional replacement.
    pub fn narrowed(&self, max_width: usize) -> SynthProgram {
        let width = max_width.clamp(2, simdram::MAX_FAN_IN);
        let mut out = SynthProgram {
            inputs: self.inputs.clone(),
            steps: Vec::new(),
            output: self.output,
            n_regs: self.n_regs,
        };
        for step in &self.steps {
            match step.op {
                Some(op) if step.args.len() > width => {
                    let monotone = if op.is_and_family() {
                        LogicOp::And
                    } else {
                        LogicOp::Or
                    };
                    let stage_op = if op.is_inverted_terminal() {
                        monotone
                    } else {
                        op
                    };
                    let mut level = step.args.clone();
                    while level.len() > width {
                        let mut next = Vec::with_capacity(level.len().div_ceil(width));
                        for chunk in level.chunks(width) {
                            if chunk.len() == 1 {
                                next.push(chunk[0]);
                            } else {
                                let r = out.n_regs;
                                out.n_regs += 1;
                                out.steps.push(Step {
                                    op: Some(stage_op),
                                    args: chunk.to_vec(),
                                    out: r,
                                });
                                next.push(r);
                            }
                        }
                        level = next;
                    }
                    // Final stage applies the (possibly inverting) op
                    // and writes the original destination register.
                    out.steps.push(Step {
                        op: Some(op),
                        args: level,
                        out: step.out,
                    });
                }
                _ => out.steps.push(step.clone()),
            }
        }
        out
    }
}

/// A mapped program plus the model's predictions for it.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// The executable program.
    pub program: SynthProgram,
    /// Expected whole-circuit success probability (product over
    /// steps).
    pub expected_success: f64,
    /// Native operations emitted.
    pub native_ops: usize,
    /// Predicted steady-state latency, nanoseconds.
    pub latency_ns: f64,
    /// Predicted steady-state energy, picojoules.
    pub energy_pj: f64,
}

impl Mapping {
    /// `(op name, fan-in, count)` rows summarizing the emitted gates,
    /// sorted for stable reporting.
    pub fn gate_summary(&self) -> Vec<(String, usize, usize)> {
        let mut rows: Vec<(String, usize, usize)> = Vec::new();
        for s in &self.program.steps {
            let (name, fan_in) = match s.op {
                None => ("not".to_string(), 1),
                Some(op) => (op.name().to_string(), s.args.len()),
            };
            match rows.iter_mut().find(|(n, f, _)| *n == name && *f == fan_in) {
                Some(row) => row.2 += 1,
                None => rows.push((name, fan_in, 1)),
            }
        }
        rows.sort();
        rows
    }

    /// The program as a [`simdram`] operation trace (one entry per
    /// step, carrying the model's predicted success), so existing
    /// tooling — [`simdram::CostModel::trace_cost`],
    /// [`simdram::reliability::expected_lane_accuracy`] — prices and
    /// analyzes synthesized circuits unchanged.
    pub fn to_trace(&self, cost: &CostModel) -> OpTrace {
        let mut t = OpTrace::new();
        for s in &self.program.steps {
            let (op, p) = match s.op {
                None => (NativeOp::Not, cost.not_success()),
                Some(op) => (
                    NativeOp::Logic(op, s.args.len() as u8),
                    cost.success(op, s.args.len()),
                ),
            };
            t.record(TraceEntry {
                op,
                executions: 1,
                predicted_success: p,
            });
        }
        t
    }
}

/// The technology mapper.
#[derive(Debug, Clone)]
pub struct Mapper<'a> {
    cost: &'a CostModel,
    max_fan_in: usize,
    force_width: Option<usize>,
}

impl<'a> Mapper<'a> {
    /// A reliability-aware mapper for a substrate offering native
    /// gates up to `max_fan_in` inputs (clamped to `2..=16`).
    pub fn new(cost: &'a CostModel, max_fan_in: usize) -> Mapper<'a> {
        Mapper {
            cost,
            max_fan_in: max_fan_in.clamp(2, simdram::MAX_FAN_IN),
            force_width: None,
        }
    }

    /// The naive baseline: every wide gate decomposes into a tree of
    /// 2-input native gates (what a fan-in-blind compiler would emit).
    pub fn naive(cost: &'a CostModel) -> Mapper<'a> {
        Mapper {
            cost,
            max_fan_in: 2,
            force_width: Some(2),
        }
    }

    /// The gates `(op, fan_in)` a `width`-chunked decomposition of an
    /// `n`-input `op` gate executes, mirroring the emission exactly.
    fn chunk_plan(op: LogicOp, n: usize, width: usize) -> Vec<(LogicOp, usize)> {
        debug_assert!(width >= 2 && n >= 2);
        let monotone = if op.is_and_family() {
            LogicOp::And
        } else {
            LogicOp::Or
        };
        let mut gates = Vec::new();
        let mut level = n;
        if op.is_inverted_terminal() {
            while level > width {
                level = reduce_level(monotone, level, width, &mut gates);
            }
            gates.push((op, level));
        } else {
            while level > 1 {
                level = reduce_level(op, level, width, &mut gates);
            }
        }
        gates
    }

    /// Scores one decomposition: success product, op count, latency.
    fn score(&self, gates: &[(LogicOp, usize)]) -> (f64, usize, f64) {
        let mut success = 1.0;
        let mut latency = 0.0;
        for (op, k) in gates {
            success *= self.cost.success(*op, *k);
            latency += self.cost.latency_ns(*op, *k);
        }
        (success, gates.len(), latency)
    }

    /// The chunk width this mapper uses for an `n`-input `op` gate.
    pub fn choose_width(&self, op: LogicOp, n: usize) -> usize {
        if let Some(w) = self.force_width {
            return w;
        }
        let mut best = (2usize, f64::NEG_INFINITY, usize::MAX, f64::INFINITY);
        for w in 2..=self.max_fan_in {
            let (s, ops, lat) = self.score(&Self::chunk_plan(op, n, w));
            let better = s > best.1 + 1e-15
                || ((s - best.1).abs() <= 1e-15
                    && (ops < best.2 || (ops == best.2 && lat < best.3 - 1e-12)));
            if better {
                best = (w, s, ops, lat);
            }
        }
        best.0
    }

    /// Maps a circuit to a native-op program with predictions.
    pub fn map(&self, circuit: &Circuit) -> Mapping {
        let mut prog = SynthProgram {
            inputs: circuit.inputs().to_vec(),
            steps: Vec::new(),
            output: Output::Const(false),
            n_regs: circuit.inputs().len(),
        };
        let mut success = 1.0f64;
        let mut latency = 0.0f64;
        let mut energy = 0.0f64;
        let mut reg_of: Vec<Option<Output>> = vec![None; circuit.nodes().len()];
        let fresh = |prog: &mut SynthProgram| {
            let r = prog.n_regs;
            prog.n_regs += 1;
            r
        };
        for id in circuit.live_nodes() {
            let out = match circuit.node(id) {
                Node::Input(i) => Output::Reg(*i),
                Node::Const(b) => Output::Const(*b),
                Node::Not(x) => {
                    let src = expect_reg(reg_of[*x], "NOT of a folded constant");
                    let out = fresh(&mut prog);
                    prog.steps.push(Step {
                        op: None,
                        args: vec![src],
                        out,
                    });
                    success *= self.cost.not_success();
                    latency += self.cost.not_latency_ns();
                    energy += self.cost.not_energy_pj();
                    Output::Reg(out)
                }
                Node::Gate(op, children) => {
                    let width = self.choose_width(*op, children.len());
                    let monotone = if op.is_and_family() {
                        LogicOp::And
                    } else {
                        LogicOp::Or
                    };
                    let mut level: Vec<Reg> = children
                        .iter()
                        .map(|c| expect_reg(reg_of[*c], "gate input folded to constant"))
                        .collect();
                    let mut emit = |prog: &mut SynthProgram, gop: LogicOp, args: Vec<Reg>| {
                        let out = prog.n_regs;
                        prog.n_regs += 1;
                        success *= self.cost.success(gop, args.len());
                        latency += self.cost.latency_ns(gop, args.len());
                        energy += self.cost.energy_pj(gop, args.len());
                        prog.steps.push(Step {
                            op: Some(gop),
                            args,
                            out,
                        });
                        out
                    };
                    if op.is_inverted_terminal() {
                        while level.len() > width {
                            level = emit_level(&mut prog, monotone, &level, width, &mut emit);
                        }
                        Output::Reg(emit(&mut prog, *op, level))
                    } else {
                        while level.len() > 1 {
                            level = emit_level(&mut prog, *op, &level, width, &mut emit);
                        }
                        Output::Reg(level[0])
                    }
                }
            };
            reg_of[id] = Some(out);
            if id == circuit.output() {
                prog.output = out;
            }
        }
        let native_ops = prog.steps.len();
        Mapping {
            program: prog,
            expected_success: success,
            native_ops,
            latency_ns: latency,
            energy_pj: energy,
        }
    }
}

fn expect_reg(out: Option<Output>, why: &str) -> Reg {
    match out.expect("topological order") {
        Output::Reg(r) => r,
        Output::Const(_) => unreachable!("{why}: the DAG folds constants out of gates"),
    }
}

/// One analytic reduction level: chunk `level` values by `width`,
/// recording one `(op, chunk)` gate per multi-element chunk. Returns
/// the next level's size.
fn reduce_level(
    op: LogicOp,
    level: usize,
    width: usize,
    gates: &mut Vec<(LogicOp, usize)>,
) -> usize {
    let mut next = 0;
    let mut rest = level;
    while rest > 0 {
        let k = rest.min(width);
        if k > 1 {
            gates.push((op, k));
        }
        next += 1;
        rest -= k;
    }
    next
}

/// One emitted reduction level, mirroring [`reduce_level`]:
/// single-element chunks pass through without an op.
fn emit_level<F: FnMut(&mut SynthProgram, LogicOp, Vec<Reg>) -> Reg>(
    prog: &mut SynthProgram,
    op: LogicOp,
    level: &[Reg],
    width: usize,
    emit: &mut F,
) -> Vec<Reg> {
    let mut next = Vec::with_capacity(level.len().div_ceil(width));
    for chunk in level.chunks(width) {
        if chunk.len() == 1 {
            next.push(chunk[0]);
        } else {
            next.push(emit(prog, op, chunk.to_vec()));
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn circuit(text: &str) -> Circuit {
        Circuit::from_expr(&Expr::parse(text).unwrap())
    }

    fn and16() -> Circuit {
        circuit("a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p")
    }

    /// The acceptance-pinned case: for a 16-input AND under the
    /// Table-1 defaults, one native 16-input gate (≈94.5% success)
    /// beats the naive fifteen-gate 2-input tree (0.989^15 ≈ 84.7%) —
    /// the reliability-aware mapper must find it.
    #[test]
    fn aware_beats_naive_on_wide_and() {
        let cost = CostModel::table1_defaults();
        let c = and16();
        let aware = Mapper::new(&cost, 16).map(&c);
        let naive = Mapper::naive(&cost).map(&c);
        assert_eq!(aware.native_ops, 1, "single native 16-input AND");
        assert_eq!(naive.native_ops, 15, "2-input tree");
        assert!(
            aware.expected_success > naive.expected_success + 0.05,
            "aware {} vs naive {}",
            aware.expected_success,
            naive.expected_success
        );
        assert!(aware.latency_ns < naive.latency_ns);
    }

    #[test]
    fn aware_never_below_naive() {
        let cost = CostModel::table1_defaults();
        for text in [
            "a ^ b ^ c ^ d",
            "(a & b) | (a & c) | (b & c)",
            "!(a | b | c | d | e | f)",
            "(a & b & c) ^ (d | e | f | g | h)",
        ] {
            let c = circuit(text);
            let aware = Mapper::new(&cost, 16).map(&c);
            let naive = Mapper::naive(&cost).map(&c);
            assert!(
                aware.expected_success >= naive.expected_success - 1e-12,
                "{text}: aware {} < naive {}",
                aware.expected_success,
                naive.expected_success
            );
        }
    }

    #[test]
    fn fan_in_limit_is_respected() {
        let cost = CostModel::table1_defaults();
        let c = and16();
        let m = Mapper::new(&cost, 4).map(&c);
        for s in &m.program.steps {
            assert!(s.args.len() <= 4, "step exceeds fan-in: {s:?}");
        }
        // 16 inputs at width 4: 4 gates + 1 gate.
        assert_eq!(m.native_ops, 5);
    }

    #[test]
    fn inverted_terminal_needs_no_extra_not() {
        let cost = CostModel::table1_defaults();
        let c = circuit("!(a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p&q&r)");
        let m = Mapper::new(&cost, 16).map(&c);
        // 18 inputs: one 16-AND + pass-through leaves 3 values; the
        // final stage is a native NAND3.
        let last = m.program.steps.last().unwrap();
        assert_eq!(last.op, Some(LogicOp::Nand));
        assert!(m.program.steps.iter().all(|s| s.op.is_some()), "no NOTs");
    }

    #[test]
    fn plan_matches_emission() {
        let cost = CostModel::table1_defaults();
        for (op, n, w) in [
            (LogicOp::And, 16, 4),
            (LogicOp::Nand, 18, 16),
            (LogicOp::Or, 7, 3),
            (LogicOp::Nor, 33, 16),
            (LogicOp::And, 2, 2),
        ] {
            let plan = Mapper::chunk_plan(op, n, w);
            // Build an n-input gate circuit and force this width.
            let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
            let mut c = Circuit::new(names);
            let ins: Vec<_> = (0..n).map(|i| c.input(i)).collect();
            let g = c.gate(op, ins);
            c.set_output(g);
            let mapper = Mapper {
                cost: &cost,
                max_fan_in: w,
                force_width: Some(w),
            };
            let m = mapper.map(&c);
            let emitted: Vec<(LogicOp, usize)> = m
                .program
                .steps
                .iter()
                .map(|s| (s.op.expect("gate"), s.args.len()))
                .collect();
            assert_eq!(emitted, plan, "{op:?}/{n} at width {w}");
        }
    }

    #[test]
    fn trace_agrees_with_mapping_predictions() {
        let cost = CostModel::table1_defaults();
        let c = circuit("(a ^ b) & !(c | d | e | f | g | h | i | j)");
        let m = Mapper::new(&cost, 16).map(&c);
        let trace = m.to_trace(&cost);
        assert_eq!(trace.in_dram_ops(), m.native_ops);
        let acc = simdram::reliability::expected_lane_accuracy(&trace);
        assert!((acc - m.expected_success).abs() < 1e-12);
        let priced =
            simdram::CostModel::new(dram_core::timing::SpeedBin::Mt2666, 65_536).trace_cost(&trace);
        assert!((priced.latency_ns - m.latency_ns).abs() < 1e-6);
        assert!((priced.energy_pj - m.energy_pj).abs() < 1e-6);
    }

    #[test]
    fn passthrough_and_constant_outputs() {
        let cost = CostModel::table1_defaults();
        let m = Mapper::new(&cost, 16).map(&circuit("a"));
        assert_eq!(m.program.output, Output::Reg(0));
        assert_eq!(m.native_ops, 0);
        assert_eq!(m.expected_success, 1.0);
        let m = Mapper::new(&cost, 16).map(&circuit("a & !a"));
        assert_eq!(m.program.output, Output::Const(false));
        assert_eq!(m.native_ops, 0);
    }

    #[test]
    fn gate_summary_counts() {
        let cost = CostModel::table1_defaults();
        let m = Mapper::new(&cost, 16).map(&circuit("!a & (b | c)"));
        let summary = m.gate_summary();
        let total: usize = summary.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, m.native_ops);
    }

    #[test]
    fn price_matches_mapping_predictions_exactly() {
        let cost = CostModel::table1_defaults();
        for text in [
            "a ^ b ^ c ^ d",
            "(a & b & c & d & e & f & g & h) | !(i & j)",
            "!(a | b | c | d | e)",
            "a",
        ] {
            let m = Mapper::new(&cost, 16).map(&circuit(text));
            let p = m.program.price(&cost);
            // Same fold order, so bit-identical — not just close.
            assert_eq!(p.expected_success, m.expected_success, "{text}");
            assert_eq!(p.latency_ns, m.latency_ns, "{text}");
            assert_eq!(p.energy_pj, m.energy_pj, "{text}");
        }
    }

    #[test]
    fn narrowed_respects_width_and_keeps_io_shape() {
        let cost = CostModel::table1_defaults();
        let m = Mapper::new(&cost, 16).map(&and16());
        assert_eq!(m.native_ops, 1, "one wide gate to narrow");
        for w in [2usize, 3, 4, 8] {
            let narrow = m.program.narrowed(w);
            assert!(
                narrow.steps.iter().all(|s| s.args.len() <= w),
                "width {w} violated"
            );
            assert_eq!(narrow.inputs, m.program.inputs);
            assert_eq!(narrow.output, m.program.output);
            assert!(narrow.n_regs >= m.program.n_regs);
            // The final stage still writes the original destination.
            let orig_out = match m.program.output {
                Output::Reg(r) => r,
                Output::Const(_) => unreachable!(),
            };
            assert!(narrow.steps.iter().any(|s| s.out == orig_out));
        }
        // Already-narrow programs pass through unchanged.
        assert_eq!(m.program.narrowed(16), m.program);
    }

    #[test]
    fn narrowed_inverted_terminal_inverts_only_once() {
        let cost = CostModel::table1_defaults();
        let c = circuit("!(a&b&c&d&e&f&g&h&i&j&k&l)");
        let m = Mapper::new(&cost, 16).map(&c);
        let narrow = m.program.narrowed(4);
        let nands: Vec<_> = narrow
            .steps
            .iter()
            .filter(|s| s.op == Some(LogicOp::Nand))
            .collect();
        assert_eq!(nands.len(), 1, "exactly one inverting stage");
        assert_eq!(
            nands[0].out,
            narrow.steps.last().unwrap().out,
            "the inversion is the final stage of the rewritten gate"
        );
        assert!(narrow
            .steps
            .iter()
            .filter(|s| s.op != Some(LogicOp::Nand))
            .all(|s| s.op == Some(LogicOp::And)));
    }

    #[test]
    fn peak_live_rows_bounds_the_register_file() {
        let cost = CostModel::table1_defaults();
        for text in ["a", "a ^ b ^ c ^ d", "(a & b) | (c & d) | (e & f)"] {
            let m = Mapper::new(&cost, 16).map(&circuit(text));
            let peak = m.program.peak_live_rows();
            assert!(peak >= 1);
            assert!(
                peak <= m.program.n_regs.max(1),
                "{text}: peak {peak} exceeds register file {}",
                m.program.n_regs
            );
        }
        // A long chain re-uses freed temporaries: the peak stays far
        // below the register count.
        let chain = circuit("a ^ b ^ c ^ d ^ e ^ f ^ g ^ h ^ i ^ j");
        let m = Mapper::new(&cost, 16).map(&chain);
        assert!(
            m.program.peak_live_rows() < m.program.n_regs,
            "peak {} vs regs {}",
            m.program.peak_live_rows(),
            m.program.n_regs
        );
    }

    #[test]
    fn last_use_covers_output_and_args() {
        let cost = CostModel::table1_defaults();
        let m = Mapper::new(&cost, 16).map(&circuit("(a & b) | (c & d)"));
        let last = m.program.last_use();
        if let Output::Reg(r) = m.program.output {
            assert_eq!(last[r], m.program.steps.len());
        }
    }
}
