//! The reliability cost model driving technology mapping.
//!
//! A [`CostModel`] prices every native operation the mapper can emit:
//! NOT plus AND/OR/NAND/NOR at each input count, each with a mean
//! *success rate* (the paper's §5.2 metric), a latency, and an energy.
//! Two sources exist:
//!
//! * [`CostModel::table1_defaults`] — calibrated to the paper's
//!   population means (NOT ≈ 98.37% per Observation 1; the logic
//!   family degrading from ≈99% at 2 inputs to ≈94% at 16 inputs per
//!   §6.2), with latency/energy from [`simdram::cost`]'s steady-state
//!   DDR4 accounting;
//! * a characterization-sweep export — `characterize fleet
//!   --export-costs` writes measured per-(op, N) statistics in exactly
//!   the [`CostModelData`] JSON schema this module loads, so fleet
//!   measurements drive the mapper directly.
//!
//! Input counts between measured points are bridged by linear
//! interpolation (clamped at the ends), so the mapper may cost any
//! chunk width in `2..=16` even when only N ∈ {2, 4, 8, 16} was swept.

use crate::error::{Result, SynthError};
use dram_core::timing::SpeedBin;
use dram_core::LogicOp;
use serde::{Deserialize, Serialize};
use simdram::trace::{NativeOp, TraceEntry};

/// Measured (or default) statistics for one native operation shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateCost {
    /// Operation name: `not`, `and`, `nand`, `or`, or `nor`.
    pub op: String,
    /// Input count (1 for `not`).
    pub inputs: usize,
    /// Mean result-cell success rate in `[0, 1]`.
    pub success: f64,
    /// Steady-state latency of one execution, nanoseconds.
    pub latency_ns: f64,
    /// Steady-state energy of one execution, picojoules.
    pub energy_pj: f64,
    /// Result cells behind the success estimate (0 for defaults).
    pub cells: u64,
}

/// The serialized cost-model document — the exact schema
/// `characterize fleet --export-costs` writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModelData {
    /// Where the numbers came from (free text).
    pub source: String,
    /// SIMD lanes the latency/energy figures were priced at.
    pub lanes: usize,
    /// Per-operation statistics.
    pub entries: Vec<GateCost>,
}

/// An indexed, query-ready cost model.
///
/// # Examples
///
/// ```
/// use dram_core::LogicOp;
///
/// let m = fcsynth::CostModel::table1_defaults();
/// let s2 = m.success(LogicOp::And, 2);
/// let s16 = m.success(LogicOp::And, 16);
/// assert!(s2 > s16, "reliability degrades with input count");
/// assert!(m.not_success() > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    data: CostModelData,
}

impl CostModel {
    /// Wraps a raw document.
    ///
    /// # Errors
    ///
    /// Fails when no usable entries are present or a success rate is
    /// outside `[0, 1]`.
    pub fn from_data(data: CostModelData) -> Result<CostModel> {
        if !data.entries.iter().any(|e| e.op != "not") {
            return Err(SynthError::BadCostModel {
                detail: "no logic-operation entries".into(),
            });
        }
        for e in &data.entries {
            if !(0.0..=1.0).contains(&e.success) {
                return Err(SynthError::BadCostModel {
                    detail: format!("{}/{}: success {} out of range", e.op, e.inputs, e.success),
                });
            }
        }
        Ok(CostModel { data })
    }

    /// Parses the JSON document `characterize fleet --export-costs`
    /// writes.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or an invalid document.
    pub fn from_json(json: &str) -> Result<CostModel> {
        let data: CostModelData =
            serde_json::from_str(json).map_err(|e| SynthError::BadCostModel {
                detail: e.to_string(),
            })?;
        CostModel::from_data(data)
    }

    /// The underlying document (serializable back to the export
    /// schema).
    pub fn data(&self) -> &CostModelData {
        &self.data
    }

    /// Default model calibrated to the paper's Table-1 population:
    /// per-op success means plus [`simdram::cost`] latency/energy at
    /// `lanes` SIMD lanes (MT/s-2666 timing).
    pub fn table1_defaults_for(lanes: usize) -> CostModel {
        // Success means: NOT from Observation 1 (98.37% across 256
        // chips); AND/OR vs NAND/NOR and the N-scaling from the §6.2
        // characterization (two-input ops ≈99%, 16-input ≥94%, the
        // inverted terminals slightly below their monotone duals).
        let success = |op: LogicOp, n: usize| -> f64 {
            let base = match n {
                2 => 0.989,
                4 => 0.974,
                8 => 0.958,
                _ => 0.945,
            };
            if op.is_inverted_terminal() {
                base - 0.004
            } else {
                base
            }
        };
        let pricer = simdram::CostModel::new(SpeedBin::Mt2666, lanes);
        let priced = |op: NativeOp| {
            pricer.entry_cost(&TraceEntry {
                op,
                executions: 1,
                predicted_success: 1.0,
            })
        };
        let not_cost = priced(NativeOp::Not);
        let mut entries = vec![GateCost {
            op: "not".into(),
            inputs: 1,
            success: 0.9837,
            latency_ns: not_cost.latency_ns,
            energy_pj: not_cost.energy_pj,
            cells: 0,
        }];
        for op in LogicOp::ALL {
            for n in [2usize, 4, 8, 16] {
                let c = priced(NativeOp::Logic(op, n as u8));
                entries.push(GateCost {
                    op: op.name().into(),
                    inputs: n,
                    success: success(op, n),
                    latency_ns: c.latency_ns,
                    energy_pj: c.energy_pj,
                    cells: 0,
                });
            }
        }
        CostModel {
            data: CostModelData {
                source: "built-in Table-1 population defaults".into(),
                lanes,
                entries,
            },
        }
    }

    /// [`CostModel::table1_defaults_for`] at the canonical 8K-column
    /// half-row width (65 536 shared-column lanes).
    pub fn table1_defaults() -> CostModel {
        CostModel::table1_defaults_for(65_536)
    }

    fn interp<F: Fn(&GateCost) -> f64>(&self, op: &str, n: usize, f: F) -> Option<f64> {
        let mut points: Vec<(usize, f64)> = self
            .data
            .entries
            .iter()
            .filter(|e| e.op == op)
            .map(|e| (e.inputs, f(e)))
            .collect();
        if points.is_empty() {
            return None;
        }
        points.sort_by_key(|(inputs, _)| *inputs);
        if n <= points[0].0 {
            return Some(points[0].1);
        }
        if n >= points[points.len() - 1].0 {
            return Some(points[points.len() - 1].1);
        }
        for w in points.windows(2) {
            let ((n0, v0), (n1, v1)) = (w[0], w[1]);
            if n0 <= n && n <= n1 {
                if n == n0 {
                    return Some(v0);
                }
                let t = (n - n0) as f64 / (n1 - n0) as f64;
                return Some(v0 + t * (v1 - v0));
            }
        }
        unreachable!("n inside the sorted point range");
    }

    /// Fallback chain for a logic op with no entries of its own: its
    /// monotone/inverted dual first, then any logic data at all.
    fn logic_stat<F: Fn(&GateCost) -> f64 + Copy>(&self, op: LogicOp, n: usize, f: F) -> f64 {
        let dual = match op {
            LogicOp::And => LogicOp::Nand,
            LogicOp::Nand => LogicOp::And,
            LogicOp::Or => LogicOp::Nor,
            LogicOp::Nor => LogicOp::Or,
        };
        for candidate in [op.name(), dual.name(), "and", "or", "nand", "nor"] {
            if let Some(v) = self.interp(candidate, n, f) {
                return v;
            }
        }
        unreachable!("from_data guarantees at least one logic entry");
    }

    /// Mean success rate of an `n`-input `op` gate (interpolated).
    pub fn success(&self, op: LogicOp, n: usize) -> f64 {
        self.logic_stat(op, n, |e| e.success).clamp(0.0, 1.0)
    }

    /// Latency of one `n`-input `op` execution, nanoseconds.
    pub fn latency_ns(&self, op: LogicOp, n: usize) -> f64 {
        self.logic_stat(op, n, |e| e.latency_ns)
    }

    /// Energy of one `n`-input `op` execution, picojoules.
    pub fn energy_pj(&self, op: LogicOp, n: usize) -> f64 {
        self.logic_stat(op, n, |e| e.energy_pj)
    }

    /// Mean success rate of the NOT operation.
    pub fn not_success(&self) -> f64 {
        self.interp("not", 1, |e| e.success)
            .unwrap_or(1.0)
            .clamp(0.0, 1.0)
    }

    /// Latency of one NOT execution, nanoseconds.
    pub fn not_latency_ns(&self) -> f64 {
        self.interp("not", 1, |e| e.latency_ns).unwrap_or(0.0)
    }

    /// Energy of one NOT execution, picojoules.
    pub fn not_energy_pj(&self) -> f64 {
        self.interp("not", 1, |e| e.energy_pj).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_monotone_in_n() {
        let m = CostModel::table1_defaults();
        for op in LogicOp::ALL {
            let mut prev = 1.0;
            for n in [2usize, 4, 8, 16] {
                let s = m.success(op, n);
                assert!(s < prev, "{op:?}/{n}: {s} not below {prev}");
                prev = s;
            }
            assert!(m.latency_ns(op, 16) > m.latency_ns(op, 2));
            assert!(m.energy_pj(op, 16) > m.energy_pj(op, 2));
        }
        assert!(m.not_success() > 0.98);
        assert!(m.not_latency_ns() > 0.0);
    }

    #[test]
    fn interpolation_bridges_unmeasured_widths() {
        let m = CostModel::table1_defaults();
        let s2 = m.success(LogicOp::And, 2);
        let s3 = m.success(LogicOp::And, 3);
        let s4 = m.success(LogicOp::And, 4);
        assert!(s4 < s3 && s3 < s2, "{s2} {s3} {s4}");
        assert!((s3 - (s2 + s4) / 2.0).abs() < 1e-12, "linear midpoint");
        // Clamped outside the measured range.
        assert_eq!(m.success(LogicOp::And, 32), m.success(LogicOp::And, 16));
    }

    #[test]
    fn json_round_trip() {
        let m = CostModel::table1_defaults_for(128);
        let json = serde_json::to_string_pretty(m.data()).unwrap();
        let back = CostModel::from_json(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_op_falls_back_to_dual() {
        let data = CostModelData {
            source: "test".into(),
            lanes: 64,
            entries: vec![GateCost {
                op: "and".into(),
                inputs: 2,
                success: 0.9,
                latency_ns: 10.0,
                energy_pj: 5.0,
                cells: 100,
            }],
        };
        let m = CostModel::from_data(data).unwrap();
        assert_eq!(m.success(LogicOp::Nand, 2), 0.9);
        assert_eq!(m.success(LogicOp::Nor, 4), 0.9);
        assert_eq!(m.not_success(), 1.0, "no NOT data: assumed exact");
    }

    #[test]
    fn invalid_documents_rejected() {
        assert!(CostModel::from_json("not json").is_err());
        let no_logic = CostModelData {
            source: "x".into(),
            lanes: 1,
            entries: vec![GateCost {
                op: "not".into(),
                inputs: 1,
                success: 0.9,
                latency_ns: 1.0,
                energy_pj: 1.0,
                cells: 0,
            }],
        };
        assert!(CostModel::from_data(no_logic).is_err());
        let bad_success = CostModelData {
            source: "x".into(),
            lanes: 1,
            entries: vec![GateCost {
                op: "and".into(),
                inputs: 2,
                success: 1.5,
                latency_ns: 1.0,
                energy_pj: 1.0,
                cells: 0,
            }],
        };
        assert!(CostModel::from_data(bad_success).is_err());
    }
}
