//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! No `syn`/`quote` are available offline, so this parses the item
//! token stream directly. Supported inputs: non-generic `struct`s
//! (named / tuple / unit) and `enum`s (unit / tuple / struct
//! variants), plus `#[serde(with = "module")]` on named struct fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    with: Option<String>,
}

#[derive(Debug, Clone)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (on `{name}`)");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unexpected enum body: {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, got `{other}`"),
    }
}

/// Skips leading attributes and a visibility qualifier, returning the
/// `serde(with = "...")` path if one of the attributes carries it.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Option<String> {
    let mut with = None;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if let Some(w) = extract_serde_with(g.stream()) {
                        with = Some(w);
                    }
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return with,
        }
    }
}

/// Pulls the path out of `serde(with = "path")` attribute contents.
fn extract_serde_with(attr: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let TokenTree::Group(inner) = tokens.get(1)? else {
        return None;
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    match (inner.first(), inner.get(1), inner.get(2)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
            if id.to_string() == "with" && eq.as_char() == '=' =>
        {
            let s = lit.to_string();
            Some(s.trim_matches('"').to_string())
        }
        _ => None,
    }
}

/// Splits a field/variant list on top-level commas, tracking both
/// delimiter groups (automatic) and angle-bracket depth (manual, since
/// `<...>` are plain punctuation in token streams).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut i = 0usize;
            let with = skip_attrs_and_vis(&tokens, &mut i);
            let name = match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, got {other:?}"),
            };
            Field { name, with }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut i = 0usize;
            skip_attrs_and_vis(&tokens, &mut i);
            let name = match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, got {other:?}"),
            };
            i += 1;
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_named_fields(g.stream()))
                }
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| match &f.with {
                    Some(path) => format!(
                        "(::std::string::String::from(\"{n}\"), {path}::serialize(&self.{n}))",
                        n = f.name
                    ),
                    None => format!(
                        "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_content(&self.{n}))",
                        n = f.name
                    ),
                })
                .collect();
            (
                name,
                format!("::serde::Content::Object(vec![{}])", entries.join(", ")),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_content(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Content::Array(vec![{}])", entries.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Content::Null".to_string()),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Content::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_content(__f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::Content::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_content({n}))",
                                    n = f.name
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Content::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::Content::Object(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_variables)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| match &f.with {
                    Some(path) => format!(
                        "{n}: {path}::deserialize(::serde::de::req(__obj, \"{n}\")?)?",
                        n = f.name
                    ),
                    None => format!("{n}: ::serde::de::field(__obj, \"{n}\")?", n = f.name),
                })
                .collect();
            let body = format!(
                "let __obj = __c.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            );
            (name, body)
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&__a[{i}])?"))
                .collect();
            let body = format!(
                "let __a = __c.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\n\
                 if __a.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            );
            (name, body)
        }
        Item::UnitStruct { name } => (name, format!("::std::result::Result::Ok({name})")),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_content(__v)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&__a[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __a = __v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{vn}\"))?;\n\
                                     if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                                     return ::std::result::Result::Ok({name}::{vn}({}));\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{n}: ::serde::de::field(__o, \"{n}\")?", n = f.name))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __o = __v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{vn}\"))?;\n\
                                     return ::std::result::Result::Ok({name}::{vn} {{ {} }});\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let mut body = String::new();
            if !unit_arms.is_empty() {
                body.push_str(&format!(
                    "if let ::std::option::Option::Some(__s) = __c.as_str() {{\n\
                         match __s {{ {} _ => {{}} }}\n\
                     }}\n",
                    unit_arms.join(" ")
                ));
            }
            if !data_arms.is_empty() {
                body.push_str(&format!(
                    "if let ::std::option::Option::Some(__obj) = __c.as_object() {{\n\
                         if __obj.len() == 1 {{\n\
                             let (__k, __v) = &__obj[0];\n\
                             match __k.as_str() {{ {} _ => {{}} }}\n\
                         }}\n\
                     }}\n",
                    data_arms.join(" ")
                ));
            }
            body.push_str(&format!(
                "::std::result::Result::Err(::serde::Error::expected(\"enum {name}\", __c.kind()))"
            ));
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_variables)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
