//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Differences from the real crate: value generation is fully
//! deterministic (seeded from the test's module path and case index)
//! and failing cases are *not* shrunk — the failing inputs are simply
//! reported. The strategy surface covers integer/float ranges,
//! `any::<T>()`, tuples, `Just`, `prop_flat_map`, and
//! `collection::vec`.

use std::ops::{Range, RangeInclusive};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeded per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn new(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, sampling the returned
    /// strategy (no shrinking in this shim, so this is just sequential
    /// sampling).
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { inner: self, f }
    }

    /// Maps generated values through a pure function.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit() as $t) * (self.end() - self.start())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Marker for `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}", __a, __b, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}` ({}) at {}:{}",
                __a, __b, format!($($fmt)*), file!(), line!()
            ));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                __a,
                __b,
                file!(),
                line!()
            ));
        }
    }};
}

/// Declares deterministic property tests, proptest-style.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                )+
                let __result: ::std::result::Result<(), String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!("proptest {} case {} failed: {}", stringify!($name), __case, __e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new("t", 0);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = crate::Strategy::generate(&(0.5f64..1.5), &mut rng);
            assert!((0.5..1.5).contains(&f));
            let i = crate::Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface itself works end to end.
        #[test]
        fn macro_generates_and_asserts(
            x in 0u64..100,
            v in prop::collection::vec(any::<bool>(), 0..8),
            (a, b) in (1usize..=3, 0.0f64..1.0),
        ) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8);
            prop_assert!((1..=3).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(a + 1, a + 1);
            prop_assert_ne!(a, a + 1);
        }

        #[test]
        fn flat_map_and_just_work(
            (w, values) in (1usize..=8)
                .prop_flat_map(|w| (Just(w), prop::collection::vec(0u64..(1 << w), 4)))
        ) {
            prop_assert_eq!(values.len(), 4);
            for v in values {
                prop_assert!(v < (1 << w));
            }
        }
    }
}
