//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The container this repository builds in has no crates.io access, so
//! the real `serde` cannot be vendored. This shim keeps the same names
//! (`Serialize`, `Deserialize`, derive macros, `serde::de`) but uses a
//! much simpler data model: values serialize to a [`Content`] tree
//! (`serde_json` renders that tree as JSON text and parses it back).
//!
//! Supported surface:
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs and
//!   enums (unit / newtype / tuple / struct variants);
//! * `#[serde(with = "module")]` on named struct fields, where the
//!   module provides `fn serialize(&T) -> Content` and
//!   `fn deserialize(&Content) -> Result<T, Error>`;
//! * impls for primitives, `String`, `Option`, tuples, `Vec`, arrays,
//!   and `BTreeMap`/`HashMap` with stringifiable keys.

mod content;
mod impls;

pub use content::Content;
pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Creates a "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserializing {context}"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A value that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the content tree.
    fn to_content(&self) -> Content;
}

/// A value that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from the content tree.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

/// Compatibility aliases mirroring `serde::de`.
pub mod de {
    pub use crate::{Content, Deserialize, Error};

    /// Owned deserialization (alias of [`Deserialize`] in this shim).
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}

    /// Looks up a required key in an object body.
    pub fn req<'a>(obj: &'a [(String, Content)], key: &str) -> Result<&'a Content, Error> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
    }

    /// Deserializes a field from an object body.
    ///
    /// A *missing* key falls back to deserializing [`Content::Null`],
    /// matching real serde's treatment of `Option` fields (absent →
    /// `None`); types that reject `Null` keep the clearer "missing
    /// field" error.
    pub fn field<T: Deserialize>(obj: &[(String, Content)], key: &str) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == key) {
            Some((_, v)) => T::from_content(v),
            None => T::from_content(&Content::Null)
                .map_err(|_| Error::custom(format!("missing field `{key}`"))),
        }
    }
}

/// Compatibility aliases mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Content, Error, Serialize};
}
