//! The content tree all serialization flows through.

/// A self-describing value tree (the shim's serde data model).
///
/// `serde_json` maps this 1:1 onto JSON: `UInt`/`Int`/`Float` all
/// render as JSON numbers, `Object` preserves insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (used for `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Content>),
    /// Ordered key/value map.
    Object(Vec<(String, Content)>),
}

impl Content {
    /// The object body, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array body, if this is an array.
    pub fn as_array(&self) -> Option<&[Content]> {
        match self {
            Content::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (accepts all three number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::UInt(u) => Some(*u as f64),
            Content::Int(i) => Some(*i as f64),
            Content::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::UInt(u) => Some(*u),
            Content::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::UInt(u) => i64::try_from(*u).ok(),
            Content::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::UInt(_) | Content::Int(_) => "integer",
            Content::Float(_) => "float",
            Content::Str(_) => "string",
            Content::Array(_) => "array",
            Content::Object(_) => "object",
        }
    }
}
