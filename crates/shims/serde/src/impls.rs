//! Trait impls for primitives and standard containers.

use crate::{Content, Deserialize, Error, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_bool().ok_or_else(|| Error::expected("bool", c.kind()))
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let u = c.as_u64().ok_or_else(|| Error::expected("unsigned integer", c.kind()))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::UInt(v as u64) } else { Content::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let i = c.as_i64().ok_or_else(|| Error::expected("integer", c.kind()))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
int_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64()
            .ok_or_else(|| Error::expected("number", c.kind()))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.as_f64()
            .ok_or_else(|| Error::expected("number", c.kind()))? as f32)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let s = c
            .as_str()
            .ok_or_else(|| Error::expected("string", c.kind()))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", c.kind()))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(Box::new(T::from_content(c)?))
    }
}

// ---------------------------------------------------------------------
// Option / containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_array()
            .ok_or_else(|| Error::expected("array", c.kind()))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_content(c)?;
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Array(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let a = c.as_array().ok_or_else(|| Error::expected("array", c.kind()))?;
                let expected = [$($n),+].len();
                if a.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, got {}", a.len()
                    )));
                }
                Ok(($($t::from_content(&a[$n])?,)+))
            }
        }
    )*};
}
tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------
// Maps (keys stringified, as JSON requires)
// ---------------------------------------------------------------------

fn key_to_string(c: Content) -> String {
    match c {
        Content::Str(s) => s,
        Content::UInt(u) => u.to_string(),
        Content::Int(i) => i.to_string(),
        Content::Bool(b) => b.to_string(),
        other => panic!("map key must be a string or integer, got {}", other.kind()),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_content(&Content::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_content(&Content::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_content(&Content::Int(i)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!(
        "cannot reconstruct map key from `{s}`"
    )))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_content()), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_object()
            .ok_or_else(|| Error::expected("object", c.kind()))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_content()), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_object()
            .ok_or_else(|| Error::expected("object", c.kind()))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}
