//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements real wall-clock measurement (warm-up, then `sample_size`
//! samples whose iteration counts fill `measurement_time`), prints a
//! `name  time: [lo mid hi]` line per benchmark, and records results in
//! a process-global registry (see [`results`]) so benches can emit JSON
//! summaries.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (group path included).
    pub id: String,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median of the per-sample means, nanoseconds.
    pub median_ns: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Snapshot of every benchmark result recorded so far in this process.
pub fn results() -> Vec<BenchResult> {
    RESULTS.lock().unwrap().clone()
}

/// Benchmark driver (config + runner).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            config: self.clone(),
            iterations: 0,
        };
        f(&mut b);
        b.report(id.as_ref());
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (ids are `group/name`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.bench_function(full, f);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    config: Criterion,
    iterations: u64,
}

impl Bencher {
    /// Measures the closure: warm-up, then timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.config.sample_size;
        let per_sample = self.config.measurement.as_secs_f64() / samples as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        self.iterations = 0;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples.push(ns);
            self.iterations += iters_per_sample;
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
        RESULTS.lock().unwrap().push(BenchResult {
            id: id.to_string(),
            mean_ns: mean,
            median_ns: median,
            iterations: self.iterations,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` passes a filter we ignore, and
            // `cargo test --benches` passes `--bench`; both are fine to
            // accept silently for this shim.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let all = results();
        let r = all.iter().find(|r| r.id == "shim_smoke").expect("recorded");
        assert!(r.mean_ns > 0.0);
        assert!(r.iterations > 0);
    }
}
