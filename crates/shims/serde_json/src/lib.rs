//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, and `from_str`, over the shim
//! serde's [`Content`] data model.

use serde::{Content, Deserialize, Serialize};

pub use serde::Content as Value;
pub use serde::Error;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Fails on non-finite floats (JSON has no representation for them).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// Fails on non-finite floats.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_content(&v)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(
    v: &Content,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::UInt(u) => out.push_str(&u.to_string()),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            // Rust's shortest-roundtrip Display keeps equality across
            // a serialize/parse cycle.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Content::Str(s) => write_str(s, out),
        Content::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..(w * depth) {
            out.push(' ');
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Array(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Object(entries));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::custom("lone surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Content::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Content::Float)
                    .map_err(|_| Error::custom(format!("bad number `{text}`"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Content::UInt(u)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Content::Float)
                    .map_err(|_| Error::custom(format!("bad number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_display_round_trips() {
        for v in [0.1, 1e-9, 123456.789, -0.000123, 2.0f64.powi(60), 0.9837] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.0), None, Some(2.5)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<f64>>>(&s).unwrap(), v);

        let m: std::collections::BTreeMap<usize, Vec<bool>> =
            [(3, vec![true, false]), (9, vec![])].into_iter().collect();
        let s = to_string(&m).unwrap();
        assert_eq!(
            from_str::<std::collections::BTreeMap<usize, Vec<bool>>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  "));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }
}
