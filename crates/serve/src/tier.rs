//! Priority tiers, tenant contracts, and the daemon's knobs.
//!
//! A [`TenantSpec`] is one tenant's *serving contract*: which
//! expressions it submits, how fast they arrive (a deterministic
//! seeded traffic model — the daemon has no wall clock), what rolling
//! p99 the tenant expects ([`TenantSpec::slo_us`]), how deep its
//! admission queue may grow, and what happens when it overflows
//! (shed for [`TenantSpec::sheddable`] tenants, queue-and-degrade
//! otherwise). Tiers order tenants inside every micro-batch: gold
//! drains before silver before bronze, so under saturation the
//! backpressure lands on the cheapest traffic first.

use dram_core::math::{hash_to_unit, mix3, mix4};
use serde::{Deserialize, Serialize};

/// Priority tier of a tenant. Lower rank drains first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierClass {
    /// Latency-critical traffic: drained first, never shed.
    Gold,
    /// Standard traffic.
    Silver,
    /// Bulk/batch traffic: drained last, shed first under overload.
    Bronze,
}

impl TierClass {
    /// Drain order: 0 (gold) drains before 1 (silver) before 2
    /// (bronze).
    pub fn rank(self) -> usize {
        match self {
            TierClass::Gold => 0,
            TierClass::Silver => 1,
            TierClass::Bronze => 2,
        }
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            TierClass::Gold => "gold",
            TierClass::Silver => "silver",
            TierClass::Bronze => "bronze",
        }
    }

    /// All tiers in drain order.
    pub fn all() -> [TierClass; 3] {
        [TierClass::Gold, TierClass::Silver, TierClass::Bronze]
    }
}

impl std::fmt::Display for TierClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One tenant's serving contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Display name (also the session-log identity).
    pub name: String,
    /// Priority tier.
    pub tier: TierClass,
    /// The tenant's job mix: boolean expressions submitted
    /// round-robin-ish (the arrival model picks deterministically).
    pub exprs: Vec<String>,
    /// Mean arrivals per tick. The fractional part becomes a
    /// deterministic Bernoulli arrival, so e.g. `1.5` alternates
    /// pseudo-randomly between 1 and 2 jobs.
    pub rate: f64,
    /// Extra jobs injected on a burst tick (~1 tick in 8 draws a
    /// burst). `0` disables bursting.
    pub burst: usize,
    /// SLO target: the tenant's rolling p99 *modeled* latency must
    /// stay at or below this many microseconds.
    pub slo_us: f64,
    /// Admission queue bound. Arrivals beyond it are shed
    /// ([`Self::sheddable`]) or queued over-cap (the queue arm of
    /// shed-or-queue: non-sheddable tenants degrade latency instead
    /// of losing work).
    pub queue_cap: usize,
    /// Whether over-cap arrivals are dropped instead of queued.
    pub sheddable: bool,
    /// Reliability floor at admission: a job is admitted only if some
    /// native-width variant — as submitted, or narrowed via
    /// [`fcsynth::SynthProgram::narrowed`] — clears this expected
    /// success under the population cost model. When even the best
    /// variant misses the floor, the job is rejected outright rather
    /// than queued for an execution that cannot honor the contract.
    pub min_success: f64,
}

impl TenantSpec {
    /// Deterministic arrivals for this tenant at `tick`: the seeded
    /// traffic model every live run and replay agree on.
    pub fn arrivals(&self, tenant: usize, session_seed: u64, tick: usize) -> usize {
        let base = self.rate.max(0.0);
        let whole = base.floor() as usize;
        let frac = base - base.floor();
        let bern = hash_to_unit(mix3(session_seed ^ 0x7E4A, tenant as u64, tick as u64));
        let mut n = whole + usize::from(bern < frac);
        if self.burst > 0 {
            let spike = hash_to_unit(mix3(session_seed ^ 0xB125_7000, tenant as u64, tick as u64));
            if spike < 0.125 {
                n += self.burst;
            }
        }
        n
    }

    /// Deterministic expression pick for arrival `k` of `tick`.
    pub fn pick_expr(&self, tenant: usize, session_seed: u64, tick: usize, k: usize) -> usize {
        if self.exprs.is_empty() {
            return 0;
        }
        (mix4(session_seed ^ 0xE59, tenant as u64, tick as u64, k as u64) % self.exprs.len() as u64)
            as usize
    }

    /// Deterministic operand seed for arrival `k` of `tick` (recorded
    /// in the session log; replay derives the same operand bits).
    pub fn job_seed(&self, tenant: usize, session_seed: u64, tick: usize, k: usize) -> u64 {
        mix4(session_seed, tenant as u64, tick as u64, k as u64)
    }
}

/// The daemon knobs that shape *decisions* (and therefore the
/// report). They ride inside the [`crate::SessionLog`] so a replay
/// reproduces them without re-supplying flags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonKnobs {
    /// Ingestion ticks before the graceful drain begins.
    pub ticks: usize,
    /// Maximum extra drain ticks once ingestion stops.
    pub drain_max: usize,
    /// Modeled tick period, nanoseconds (queue wait is charged in
    /// whole ticks).
    pub tick_ns: f64,
    /// Micro-batch budget: jobs handed to the scheduler per tick.
    pub max_batch: usize,
    /// Health-snapshot interval, in ticks.
    pub report_every: usize,
    /// Rolling SLO window: how many recent completions feed each
    /// tenant's live p50/p99.
    pub slo_window: usize,
}

impl Default for DaemonKnobs {
    fn default() -> Self {
        DaemonKnobs {
            ticks: 12,
            drain_max: 64,
            tick_ns: 20_000.0,
            max_batch: 12,
            report_every: 4,
            slo_window: 64,
        }
    }
}

/// Full daemon configuration: the knobs plus compile/scheduling
/// context.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// Session seed: traffic, operands, and micro-batch retry draws
    /// all derive from it.
    pub seed: u64,
    /// SIMD lanes per job.
    pub lanes: usize,
    /// Widest native gate when compiling tenant expressions.
    pub fan_in: usize,
    /// Decision-shaping knobs (recorded in the session log).
    pub knobs: DaemonKnobs,
    /// Scheduler policy for every micro-batch. `shards` and `backend`
    /// are serving-time choices: they may differ between a recording
    /// and its replays without moving a single report byte.
    pub policy: fcsched::SchedPolicy,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            seed: 0,
            lanes: 64,
            fan_in: 16,
            knobs: DaemonKnobs::default(),
            policy: fcsched::SchedPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: f64, burst: usize) -> TenantSpec {
        TenantSpec {
            name: "t".into(),
            tier: TierClass::Silver,
            exprs: vec!["a & b".into(), "a | b".into(), "a ^ b".into()],
            rate,
            burst,
            slo_us: 100.0,
            queue_cap: 4,
            sheddable: false,
            min_success: 0.8,
        }
    }

    #[test]
    fn tier_order_is_gold_first() {
        assert!(TierClass::Gold.rank() < TierClass::Silver.rank());
        assert!(TierClass::Silver.rank() < TierClass::Bronze.rank());
        assert_eq!(TierClass::all().map(|t| t.rank()), [0, 1, 2]);
        assert_eq!(TierClass::Bronze.to_string(), "bronze");
    }

    #[test]
    fn arrivals_are_deterministic_and_rate_shaped() {
        let s = spec(1.5, 0);
        let ticks = 512;
        let total: usize = (0..ticks).map(|t| s.arrivals(0, 42, t)).sum();
        // Mean 1.5/tick: the Bernoulli fraction keeps the long-run
        // total near rate*ticks.
        assert!((640..=896).contains(&total), "total {total}");
        for t in 0..16 {
            assert_eq!(s.arrivals(0, 42, t), s.arrivals(0, 42, t), "pure");
        }
        // Bursts add on top.
        let bursty = spec(1.5, 8);
        let btotal: usize = (0..ticks).map(|t| bursty.arrivals(0, 42, t)).sum();
        assert!(btotal > total, "bursts must add arrivals");
        // Integer rate with no bursts is exact.
        let flat = spec(2.0, 0);
        assert!((0..64).all(|t| flat.arrivals(0, 7, t) == 2));
    }

    #[test]
    fn expr_pick_and_job_seed_cover_the_mix() {
        let s = spec(1.0, 0);
        let picks: std::collections::BTreeSet<usize> = (0..64)
            .flat_map(|t| (0..2).map(|k| s.pick_expr(0, 9, t, k)).collect::<Vec<_>>())
            .collect();
        assert_eq!(picks.len(), 3, "all expressions drawn: {picks:?}");
        assert_ne!(s.job_seed(0, 9, 1, 0), s.job_seed(0, 9, 1, 1));
        assert_ne!(s.job_seed(0, 9, 1, 0), s.job_seed(1, 9, 1, 0));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec(2.5, 3);
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: TenantSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
