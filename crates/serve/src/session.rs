//! The session log: a recorded serving session that replays
//! byte-identically.
//!
//! Every job the daemon ingests is appended to the log as one
//! [`IngestEvent`] — `(tick, tenant, expression index, operand
//! seed)` — in exact ingestion order. Together with the tenant
//! contracts, the decision-shaping knobs, and the fleet/cost-model
//! identity, that is *everything* the engine's decisions depend on:
//! `characterize daemon --replay SESSION.json` rebuilds the same
//! queues, forms the same micro-batches, draws the same retries, and
//! emits the same report bytes — at any shard count, on either
//! execution backend. (`policy.shards` / `policy.backend` are stored
//! for provenance but replays may override them freely; the report
//! never reads executed backend latency.)

use crate::tier::{DaemonConfig, DaemonKnobs, TenantSpec};
use crate::{Result, ServeError};
use serde::{Deserialize, Serialize};

/// Current session-log schema version.
pub const SESSION_VERSION: u32 = 1;

/// One ingested job, in ingestion order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestEvent {
    /// Tick the job arrived on.
    pub tick: usize,
    /// Index into [`SessionLog::tenants`].
    pub tenant: usize,
    /// Index into that tenant's expression mix.
    pub expr: usize,
    /// Seed the job's operand bits derive from.
    pub job_seed: u64,
}

/// A complete recorded session: replayable input to
/// [`crate::daemon::replay`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionLog {
    /// Schema version ([`SESSION_VERSION`]).
    pub version: u32,
    /// Session seed (micro-batch retry draws derive from it).
    pub seed: u64,
    /// Fleet size the session was served on.
    pub chips: usize,
    /// Fleet population seed (0 = Table-1 chips).
    pub fleet_seed: u64,
    /// Single-module fleet, when one was selected.
    pub module: Option<String>,
    /// Cost-model source path (`None` = built-in Table-1 defaults).
    /// Replays must load the same model: admission prices against it.
    pub costs: Option<String>,
    /// SIMD lanes per job.
    pub lanes: usize,
    /// Widest native gate when compiling tenant expressions.
    pub fan_in: usize,
    /// Decision-shaping daemon knobs.
    pub knobs: DaemonKnobs,
    /// Scheduler policy at record time (replays may override `shards`
    /// and `backend` without changing a report byte).
    pub policy: fcsched::SchedPolicy,
    /// Tenant contracts, in tenant-index order.
    pub tenants: Vec<TenantSpec>,
    /// Every ingested job, in ingestion order (grouped by tick,
    /// tenants in index order within a tick).
    pub events: Vec<IngestEvent>,
}

impl SessionLog {
    /// Builds the log header for a session about to be recorded
    /// (events are appended by the live engine).
    pub fn for_config(
        cfg: &DaemonConfig,
        tenants: &[TenantSpec],
        chips: usize,
        fleet_seed: u64,
        module: Option<String>,
        costs: Option<String>,
    ) -> SessionLog {
        SessionLog {
            version: SESSION_VERSION,
            seed: cfg.seed,
            chips,
            fleet_seed,
            module,
            costs,
            lanes: cfg.lanes,
            fan_in: cfg.fan_in,
            knobs: cfg.knobs.clone(),
            policy: cfg.policy.clone(),
            tenants: tenants.to_vec(),
            events: Vec::new(),
        }
    }

    /// Reconstructs the [`DaemonConfig`] this log was recorded under,
    /// optionally overriding the serving-time choices (`shards`,
    /// `backend`) that may not move a report byte.
    pub fn config(
        &self,
        shards: Option<usize>,
        backend: Option<fcexec::BackendKind>,
    ) -> DaemonConfig {
        let mut policy = self.policy.clone();
        if let Some(s) = shards {
            policy.shards = s;
        }
        if let Some(b) = backend {
            policy.backend = b;
        }
        DaemonConfig {
            seed: self.seed,
            lanes: self.lanes,
            fan_in: self.fan_in,
            knobs: self.knobs.clone(),
            policy,
        }
    }

    /// Structural validation: version, tenant/expression indices,
    /// tick monotonicity.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadSession`] naming the first problem.
    pub fn validate(&self) -> Result<()> {
        if self.version != SESSION_VERSION {
            return Err(ServeError::BadSession(format!(
                "version {} (this build reads {SESSION_VERSION})",
                self.version
            )));
        }
        if self.tenants.is_empty() {
            return Err(ServeError::BadSession("no tenants".into()));
        }
        if self.chips == 0 {
            return Err(ServeError::BadSession("zero-chip fleet".into()));
        }
        let mut last_tick = 0usize;
        for (i, e) in self.events.iter().enumerate() {
            if e.tenant >= self.tenants.len() {
                return Err(ServeError::BadSession(format!(
                    "event {i}: tenant {} out of range ({} tenants)",
                    e.tenant,
                    self.tenants.len()
                )));
            }
            if e.expr >= self.tenants[e.tenant].exprs.len() {
                return Err(ServeError::BadSession(format!(
                    "event {i}: expr {} out of range for tenant '{}'",
                    e.expr, self.tenants[e.tenant].name
                )));
            }
            if e.tick < last_tick {
                return Err(ServeError::BadSession(format!(
                    "event {i}: tick {} after tick {last_tick} (not in ingestion order)",
                    e.tick
                )));
            }
            if e.tick >= self.knobs.ticks {
                return Err(ServeError::BadSession(format!(
                    "event {i}: tick {} beyond the session's {} ingestion tick(s)",
                    e.tick, self.knobs.ticks
                )));
            }
            last_tick = e.tick;
        }
        Ok(())
    }

    /// Serializes the log as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("session log serializes")
    }

    /// Parses and validates a log from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadSession`] on a parse or validation
    /// failure.
    pub fn from_json(json: &str) -> Result<SessionLog> {
        let log: SessionLog =
            serde_json::from_str(json).map_err(|e| ServeError::BadSession(e.to_string()))?;
        log.validate()?;
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::TierClass;

    fn demo_log() -> SessionLog {
        let tenants = vec![TenantSpec {
            name: "t0".into(),
            tier: TierClass::Gold,
            exprs: vec!["a & b".into(), "a | b".into()],
            rate: 1.0,
            burst: 0,
            slo_us: 100.0,
            queue_cap: 4,
            sheddable: false,
            min_success: 0.8,
        }];
        let cfg = DaemonConfig {
            seed: 5,
            ..DaemonConfig::default()
        };
        let mut log = SessionLog::for_config(&cfg, &tenants, 2, 0, None, None);
        log.events.push(IngestEvent {
            tick: 0,
            tenant: 0,
            expr: 1,
            job_seed: 99,
        });
        log.events.push(IngestEvent {
            tick: 2,
            tenant: 0,
            expr: 0,
            job_seed: 7,
        });
        log
    }

    #[test]
    fn json_round_trip_is_exact() {
        let log = demo_log();
        let back = SessionLog::from_json(&log.to_json()).unwrap();
        assert_eq!(back, log);
        // And the bytes themselves are stable.
        assert_eq!(back.to_json(), log.to_json());
    }

    #[test]
    fn validation_rejects_malformed_logs() {
        let mut bad = demo_log();
        bad.version = 999;
        assert!(matches!(bad.validate(), Err(ServeError::BadSession(_))));

        let mut bad = demo_log();
        bad.events[0].tenant = 5;
        assert!(bad.validate().is_err());

        let mut bad = demo_log();
        bad.events[0].expr = 9;
        assert!(bad.validate().is_err());

        let mut bad = demo_log();
        bad.events[0].tick = 3; // after event 1's tick 2
        assert!(bad.validate().is_err(), "out-of-order ticks rejected");

        let mut bad = demo_log();
        bad.events[1].tick = bad.knobs.ticks;
        assert!(bad.validate().is_err(), "tick beyond ingestion window");

        assert!(SessionLog::from_json("{not json").is_err());
    }

    #[test]
    fn config_overrides_only_serving_time_choices() {
        let log = demo_log();
        let c = log.config(Some(5), Some(fcexec::BackendKind::Bender));
        assert_eq!(c.policy.shards, 5);
        assert_eq!(c.policy.backend, fcexec::BackendKind::Bender);
        assert_eq!(c.seed, log.seed);
        assert_eq!(c.knobs, log.knobs);
        let unchanged = log.config(None, None);
        assert_eq!(unchanged.policy, log.policy);
    }
}
