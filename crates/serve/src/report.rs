//! The daemon's deterministic report: per-tenant rollups, periodic
//! health snapshots, and session totals.
//!
//! Everything here is a pure function of `(session log, fleet, cost
//! model)`. Latency figures are *modeled* — tick-clock queue wait
//! plus cost-model predicted service time scaled by the deterministic
//! retry count — never the executed backend's latency and never the
//! wall clock, so [`DaemonReport::to_json`] is byte-identical across
//! shard counts **and** across the `vm`/`bender` backends. Modeled
//! throughput ([`HealthSnapshot::modeled_jobs_per_s`]) is the
//! replay-stable counterpart of the wall-clock jobs/s figure the
//! `characterize serve` CLI prints to stderr.

use crate::tier::TierClass;
use fcsched::LatencySummary;
use serde::{Deserialize, Serialize};

/// One tenant's final session rollup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant index.
    pub tenant: usize,
    /// Tenant display name.
    pub name: String,
    /// Priority tier.
    pub tier: TierClass,
    /// Jobs the traffic model submitted.
    pub submitted: usize,
    /// Jobs admitted into the queue.
    pub admitted: usize,
    /// Completed jobs that ran a reliability-narrowed variant on
    /// their assigned chip (the planner's per-chip remap).
    pub narrowed: usize,
    /// Jobs rejected at admission (below the reliability floor even
    /// narrowed).
    pub rejected: usize,
    /// Jobs shed by backpressure (over-cap arrivals of a sheddable
    /// tenant).
    pub shed: usize,
    /// Jobs completed (executed to a result, pass or fail).
    pub completed: usize,
    /// Completed jobs with at least one operation failed after the
    /// retry budget.
    pub failed: usize,
    /// Retry attempts consumed across the tenant's jobs.
    pub retries: u64,
    /// Deepest the tenant's queue ever grew.
    pub peak_queue: usize,
    /// The tenant's SLO target, microseconds.
    pub slo_us: f64,
    /// Distribution of modeled latency over every completed job,
    /// nanoseconds.
    pub latency: LatencySummary,
    /// Whether the final rolling p99 met the SLO.
    pub slo_met: bool,
}

/// One tenant's live state inside a [`HealthSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantHealth {
    /// Tenant index.
    pub tenant: usize,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Rolling p50 modeled latency, microseconds (0 until the first
    /// completion).
    pub p50_us: f64,
    /// Rolling p99 modeled latency, microseconds.
    pub p99_us: f64,
    /// SLO target, microseconds.
    pub slo_us: f64,
    /// Whether the rolling p99 currently meets the SLO.
    pub ok: bool,
}

/// A periodic health report: the daemon's live view, emitted every
/// `report_every` ticks and once more after the drain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Tick the snapshot was taken after (0-based).
    pub tick: usize,
    /// Modeled time elapsed, microseconds.
    pub elapsed_us: f64,
    /// Jobs completed so far.
    pub completed: usize,
    /// Jobs admitted so far.
    pub admitted: usize,
    /// Jobs shed so far.
    pub shed: usize,
    /// Jobs rejected so far.
    pub rejected: usize,
    /// Total queue depth across tenants at snapshot time.
    pub queued: usize,
    /// Modeled throughput: completed jobs per modeled second. This is
    /// the deterministic, replay-stable counterpart of the CLI's
    /// wall-clock jobs/s (which stays on stderr).
    pub modeled_jobs_per_s: f64,
    /// Per-tenant live state, in tenant order.
    pub tenants: Vec<TenantHealth>,
    /// Cumulative planner-scheduled mitigations (fault scenarios;
    /// 0 otherwise).
    pub mitigations: u64,
    /// Cumulative chip dropouts (fault scenarios; 0 otherwise).
    pub dropouts: usize,
}

/// Session-wide totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonTotals {
    /// Jobs the traffic model submitted.
    pub submitted: usize,
    /// Jobs admitted.
    pub admitted: usize,
    /// Completed jobs that ran a reliability-narrowed variant on
    /// their assigned chip.
    pub narrowed: usize,
    /// Jobs rejected at admission.
    pub rejected: usize,
    /// Jobs shed by backpressure.
    pub shed: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Completed jobs that failed.
    pub failed: usize,
    /// Retry attempts consumed.
    pub retries: u64,
    /// Native operations executed (first attempts).
    pub native_ops: usize,
    /// Micro-batches handed to the scheduler.
    pub batches: usize,
    /// Jobs left queued when the drain window closed (0 on a clean
    /// drain).
    pub undrained: usize,
    /// Modeled energy, picojoules.
    pub energy_pj: f64,
    /// Order-sensitive digest folded over every completed job's
    /// result bits — host-exact, so identical on every backend.
    pub result_digest: u64,
    /// Session-wide modeled throughput, jobs per modeled second.
    pub modeled_jobs_per_s: f64,
}

/// The deterministic report of one served (or replayed) session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonReport {
    /// Session seed.
    pub seed: u64,
    /// Ingestion ticks served.
    pub ticks: usize,
    /// Extra drain ticks needed after ingestion stopped.
    pub drain_ticks: usize,
    /// Modeled tick period, nanoseconds.
    pub tick_ns: f64,
    /// Fleet size.
    pub chips: usize,
    /// Session totals.
    pub totals: DaemonTotals,
    /// Per-tenant rollups, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Periodic health snapshots, oldest first (the last one is the
    /// post-drain state).
    pub snapshots: Vec<HealthSnapshot>,
}

impl DaemonReport {
    /// Serializes the report as pretty JSON — the artifact the CI
    /// determinism gate byte-diffs across shard counts and backends.
    /// Wall-clock and shard count are deliberately absent.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("daemon report serializes")
    }

    /// Parses a report from JSON (CI tooling convenience).
    ///
    /// # Errors
    ///
    /// Returns the parse diagnostic as a string.
    pub fn from_json(json: &str) -> std::result::Result<DaemonReport, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Per-tier `(admitted, shed, narrowed)` rollup in tier rank
    /// order — the deterministic counts the `ablation_daemon` bench
    /// exact-gates.
    pub fn tier_counts(&self) -> [(TierClass, usize, usize, usize); 3] {
        let mut out = TierClass::all().map(|t| (t, 0usize, 0usize, 0usize));
        for t in &self.tenants {
            let slot = &mut out[t.tier.rank()];
            slot.1 += t.admitted;
            slot.2 += t.shed;
            slot.3 += t.narrowed;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(tier: TierClass, admitted: usize, shed: usize, narrowed: usize) -> TenantReport {
        TenantReport {
            tenant: 0,
            name: "t".into(),
            tier,
            submitted: admitted + shed,
            admitted,
            narrowed,
            rejected: 0,
            shed,
            completed: admitted,
            failed: 0,
            retries: 1,
            peak_queue: 3,
            slo_us: 50.0,
            latency: LatencySummary::of(vec![100.0, 200.0, 300.0]),
            slo_met: true,
        }
    }

    fn report() -> DaemonReport {
        DaemonReport {
            seed: 9,
            ticks: 4,
            drain_ticks: 1,
            tick_ns: 1000.0,
            chips: 2,
            totals: DaemonTotals {
                submitted: 11,
                admitted: 9,
                narrowed: 2,
                rejected: 0,
                shed: 2,
                completed: 9,
                failed: 0,
                retries: 3,
                native_ops: 20,
                batches: 4,
                undrained: 0,
                energy_pj: 1234.5,
                result_digest: 0xFEED,
                modeled_jobs_per_s: 1.8e6,
            },
            tenants: vec![
                tenant(TierClass::Gold, 5, 0, 0),
                tenant(TierClass::Bronze, 4, 2, 2),
            ],
            snapshots: vec![],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let back = DaemonReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert!(DaemonReport::from_json("nope").is_err());
    }

    #[test]
    fn json_excludes_wallclock_and_shards() {
        let json = report().to_json();
        assert!(!json.contains("shards"));
        assert!(!json.contains("wall"));
        assert!(json.contains("modeled_jobs_per_s"));
    }

    #[test]
    fn tier_counts_roll_up_by_rank() {
        let counts = report().tier_counts();
        assert_eq!(counts[0], (TierClass::Gold, 5, 0, 0));
        assert_eq!(counts[1], (TierClass::Silver, 0, 0, 0));
        assert_eq!(counts[2], (TierClass::Bronze, 4, 2, 2));
    }
}
