//! The tick engine: streaming ingestion, admission, SLO-biased
//! micro-batching, graceful drain, and deterministic replay.
//!
//! ## Execution model
//!
//! The daemon advances a modeled tick clock. Each tick it (1) ingests
//! the tick's arrivals — live mode pulls them from per-tenant
//! producer threads over bounded channels, replay slices them out of
//! a [`SessionLog`] — running admission control per job; (2) drains
//! the per-tenant queues into one micro-batch of at most
//! `max_batch` jobs, gold tier first, SLO-violating tenants bumped to
//! the front of their tier (they reach the planner earlier and so get
//! the least-loaded chips — the placement bias); (3) hands the batch
//! to the existing [`fcsched`] planner/executor; (4) charges each
//! completed job its *modeled* latency: whole ticks of queue wait
//! plus the planner's cost-model service prediction scaled by the
//! deterministic retry count. After the configured ingestion window
//! the daemon stops admitting and drains until the queues are empty
//! (bounded by `drain_max`).
//!
//! ## Why live and replay agree byte-for-byte
//!
//! Live producers are *traffic generators*, not decision makers: they
//! emit the same [`IngestEvent`]s the session log records, one
//! message per tick per tenant, and the consumer ingests them in
//! tenant order — so the engine sees an identical event stream either
//! way. Every decision downstream (admission, batch formation, retry
//! draws keyed on `mix2(session seed, tick)`) is a pure function of
//! that stream, and every reported number is backend-invariant, which
//! is what lets CI byte-diff one recorded session across
//! `{vm,bender} × {1,5}-shard` replays. The bounded channels give
//! real ingestion backpressure (producers stall when the engine falls
//! behind) without giving the scheduler a wall clock.

use crate::report::{DaemonReport, DaemonTotals, HealthSnapshot, TenantHealth, TenantReport};
use crate::session::{IngestEvent, SessionLog};
use crate::tier::{DaemonConfig, TenantSpec, TierClass};
use crate::{Result, ServeError};
use dram_core::math::{mix2, mix3};
use dram_core::FleetConfig;
use fcdram::PackedBits;
use fcobs::{MetricsRegistry, Observability, Phase, TraceEvent, TraceSink};
use fcsched::{execute_plan, execute_plan_traced, Batch, LatencySummary, Planner, TraceCtx};
use fcsynth::{CostModel, Mapping};
use std::collections::VecDeque;
use std::sync::mpsc::sync_channel;

/// How many ticks a live producer may run ahead of the engine before
/// its channel send blocks — the ingestion backpressure bound.
const PRODUCER_LOOKAHEAD: usize = 2;

/// A compiled tenant expression with its cached admission decision
/// (same program, same model, same floor — the decision never
/// changes, so it is made once).
#[derive(Debug, Clone)]
struct CompiledExpr {
    /// The mapping submitted to the scheduler (the planner may still
    /// narrow it per chip).
    run: Mapping,
    /// Program input count (narrowing never changes it).
    inputs: usize,
    /// Whether the expression is admissible at all: some native-width
    /// variant clears the tenant's reliability floor under the
    /// population cost model.
    admitted: bool,
}

/// One queued, admitted job.
#[derive(Debug, Clone, Copy)]
struct QueuedJob {
    event: IngestEvent,
}

/// Per-tenant running counters.
#[derive(Debug, Clone, Copy, Default)]
struct TenantStats {
    submitted: usize,
    admitted: usize,
    narrowed: usize,
    rejected: usize,
    shed: usize,
    completed: usize,
    failed: usize,
    retries: u64,
    peak_queue: usize,
}

/// The serving engine. Most callers want the front doors
/// ([`run_live`] / [`replay`]); the engine itself is public so the
/// CLI and tests can drive custom tick schedules.
#[derive(Debug)]
pub struct Daemon<'a> {
    fleet: &'a FleetConfig,
    cost: &'a CostModel,
    cfg: DaemonConfig,
    tenants: Vec<TenantSpec>,
    compiled: Vec<Vec<Option<CompiledExpr>>>,
    queues: Vec<VecDeque<QueuedJob>>,
    stats: Vec<TenantStats>,
    /// Rolling modeled-latency windows (ns), one per tenant.
    windows: Vec<VecDeque<f64>>,
    /// Every completed job's modeled latency (ns), per tenant.
    latencies: Vec<Vec<f64>>,
    snapshots: Vec<HealthSnapshot>,
    tick: usize,
    batches: usize,
    native_ops: usize,
    /// Fused engine visits across every executed job — a pure
    /// function of each job's step plan ([`fcexec::fused_visits_of`]),
    /// counted in submission order, so the exposition is identical
    /// across `--fuse` settings, shard counts, and backends.
    engine_visits: usize,
    /// Jobs that belonged to a cross-job fusion group
    /// ([`fcsched::fused_jobs`]) — plan-structural, like
    /// `engine_visits`.
    fused_jobs: usize,
    energy_pj: f64,
    result_digest: u64,
    mitigations: u64,
    dropouts: usize,
    /// Trace + metrics bundle. Disabled by default; when disabled the
    /// engine follows the exact pre-observability code paths, so the
    /// report bytes of an unobserved run are untouched.
    obs: Observability,
}

impl<'a> Daemon<'a> {
    /// A fresh engine over `fleet`, pricing admission against `cost`.
    pub fn new(
        fleet: &'a FleetConfig,
        cost: &'a CostModel,
        cfg: DaemonConfig,
        tenants: Vec<TenantSpec>,
    ) -> Daemon<'a> {
        let n = tenants.len();
        Daemon {
            fleet,
            cost,
            compiled: tenants.iter().map(|t| vec![None; t.exprs.len()]).collect(),
            tenants,
            cfg,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            stats: vec![TenantStats::default(); n],
            windows: (0..n).map(|_| VecDeque::new()).collect(),
            latencies: (0..n).map(|_| Vec::new()).collect(),
            snapshots: Vec::new(),
            tick: 0,
            batches: 0,
            native_ops: 0,
            engine_visits: 0,
            fused_jobs: 0,
            energy_pj: 0.0,
            result_digest: 0x5E12_FEED,
            mitigations: 0,
            dropouts: 0,
            obs: Observability::disabled(),
        }
    }

    /// Attach an observability bundle (builder style). Retrieve it —
    /// with the collected trace and last metrics exposition — from
    /// [`Daemon::drain_and_finish_obs`].
    #[must_use]
    pub fn with_obs(mut self, obs: Observability) -> Self {
        self.obs = obs;
        self
    }

    /// Compiles (once) and admission-checks tenant `t`'s expression
    /// `e` against the tenant's reliability floor.
    fn compile_admit(&mut self, t: usize, e: usize) -> Result<CompiledExpr> {
        if let Some(hit) = &self.compiled[t][e] {
            return Ok(hit.clone());
        }
        let spec = &self.tenants[t];
        let text = &spec.exprs[e];
        let c = fcsynth::compile(text, self.cost, self.cfg.fan_in).map_err(|err| {
            ServeError::Compile {
                tenant: spec.name.clone(),
                expr: text.clone(),
                error: err.to_string(),
            }
        })?;
        let inputs = c.circuit.inputs().len();
        let m = c.mapping;
        // Reliability-aware rejection: the job clears admission if
        // *some* native-width variant — as submitted, or narrowed the
        // same way the planner narrows per chip — meets the tenant's
        // floor under the population model. If even the best variant
        // misses it, no chip assignment can honor the contract in
        // expectation, so the contract says reject, not degrade.
        let mut best = m.expected_success;
        for width in [8usize, 4, 2] {
            let cand = m.program.narrowed(width);
            if cand == m.program {
                continue;
            }
            best = best.max(cand.price(self.cost).expected_success);
        }
        let entry = CompiledExpr {
            run: m,
            inputs,
            admitted: best >= spec.min_success,
        };
        self.compiled[t][e] = Some(entry.clone());
        Ok(entry)
    }

    /// Ingests one tick's arrivals: admission (reliability floor,
    /// then shed-or-queue against the tenant's queue bound).
    fn ingest(&mut self, events: &[IngestEvent]) -> Result<()> {
        for ev in events {
            let t = ev.tenant;
            self.stats[t].submitted += 1;
            let comp = self.compile_admit(t, ev.expr)?;
            if !comp.admitted {
                self.stats[t].rejected += 1;
                continue;
            }
            let spec = &self.tenants[t];
            if self.queues[t].len() >= spec.queue_cap && spec.sheddable {
                self.stats[t].shed += 1;
                continue;
            }
            self.stats[t].admitted += 1;
            self.queues[t].push_back(QueuedJob { event: *ev });
            self.stats[t].peak_queue = self.stats[t].peak_queue.max(self.queues[t].len());
        }
        Ok(())
    }

    /// Whether tenant `t`'s rolling p99 currently violates its SLO
    /// (needs a handful of completions before it can trigger).
    fn slo_violating(&self, t: usize) -> bool {
        if self.windows[t].len() < 4 {
            return false;
        }
        let p99 = LatencySummary::of(self.windows[t].iter().copied().collect()).p99_ns;
        p99 > self.tenants[t].slo_us * 1e3
    }

    /// Drains the queues into this tick's micro-batch: tier rank
    /// order, SLO-violating tenants first within a tier (earlier
    /// submission ⇒ least-loaded chips from the planner — the
    /// placement bias), round-robin one job per tenant per pass.
    fn form_batch(&mut self) -> Vec<QueuedJob> {
        let budget = self.cfg.knobs.max_batch;
        let mut selected = Vec::new();
        for tier in TierClass::all() {
            let mut idxs: Vec<usize> = (0..self.tenants.len())
                .filter(|&t| self.tenants[t].tier == tier)
                .collect();
            idxs.sort_by_key(|&t| (usize::from(!self.slo_violating(t)), t));
            loop {
                let mut progressed = false;
                for &t in &idxs {
                    if selected.len() >= budget {
                        return selected;
                    }
                    if let Some(j) = self.queues[t].pop_front() {
                        selected.push(j);
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        selected
    }

    /// Plans and executes one micro-batch, charging modeled latency
    /// and rollups back to the tenants.
    fn run_batch(&mut self, selected: &[QueuedJob]) -> Result<()> {
        if selected.is_empty() {
            return Ok(());
        }
        let lanes = self.cfg.lanes;
        let mut batch = Batch::new(mix2(self.cfg.seed, self.tick as u64));
        for qj in selected {
            let ev = qj.event;
            let comp = self.compiled[ev.tenant][ev.expr]
                .as_ref()
                .expect("queued jobs were compiled at admission");
            let operands: Vec<PackedBits> = (0..comp.inputs)
                .map(|k| {
                    let mut p = PackedBits::zeros(lanes);
                    for l in 0..lanes {
                        p.set(l, mix3(ev.job_seed, k as u64, l as u64) & 1 == 1);
                    }
                    p
                })
                .collect();
            let label = format!(
                "{}:{}",
                self.tenants[ev.tenant].name, self.tenants[ev.tenant].exprs[ev.expr]
            );
            batch.push(label, &comp.run, operands, lanes)?;
        }
        // plan + execute (not `serve_batch`): the report's modeled
        // service time must come from the *plan's* cost-model
        // prediction, never the executed backend latency — that is
        // the backend-invariance the replay gate byte-diffs.
        let plan = Planner::new(self.fleet, self.cost, &self.cfg.policy).plan(&batch)?;
        let report = if let Some(sink) = self.obs.trace.as_mut() {
            // The trace context places the batch on the daemon
            // timeline: every timestamp below derives from the tick
            // clock and the plan, so the recorded trace is as
            // shard/backend-invariant as the report itself.
            let ctx = TraceCtx {
                tick: self.tick as u64,
                base_ns: self.tick as f64 * self.cfg.knobs.tick_ns,
                queue_wait_ns: selected
                    .iter()
                    .map(|qj| {
                        self.tick.saturating_sub(qj.event.tick) as f64 * self.cfg.knobs.tick_ns
                    })
                    .collect(),
            };
            execute_plan_traced(&batch, &plan, &self.cfg.policy, &ctx, sink)?
        } else {
            execute_plan(&batch, &plan, &self.cfg.policy)?
        };
        self.batches += 1;
        self.native_ops += report.native_ops();
        self.engine_visits += plan
            .assignments
            .iter()
            .map(|asg| fcexec::fused_visits_of(&asg.program).len())
            .sum::<usize>();
        self.fused_jobs += fcsched::fused_jobs(&batch, &plan);
        self.energy_pj += report.total_energy_pj();
        if let Some(h) = &report.health {
            self.mitigations += h.total_mitigations();
            self.dropouts += h.dropouts.len();
        }
        let window = self.cfg.knobs.slo_window.max(1);
        for (qj, (out, asg)) in selected
            .iter()
            .zip(report.outcomes.iter().zip(&plan.assignments))
        {
            let t = qj.event.tenant;
            self.stats[t].completed += 1;
            if !out.succeeded {
                self.stats[t].failed += 1;
            }
            // The planner narrows per chip (weak chips punish wide
            // gates superlinearly); count jobs that actually ran a
            // narrowed variant.
            let submitted = &self.compiled[t][qj.event.expr]
                .as_ref()
                .expect("queued jobs were compiled at admission")
                .run
                .program;
            if &asg.program != submitted {
                self.stats[t].narrowed += 1;
            }
            self.stats[t].retries += u64::from(out.retries);
            let attempts = if out.ops > 0 {
                (out.ops as f64 + f64::from(out.retries)) / out.ops as f64
            } else {
                1.0
            };
            let wait_ticks = self.tick.saturating_sub(qj.event.tick) as f64;
            let modeled = wait_ticks * self.cfg.knobs.tick_ns + asg.predicted.latency_ns * attempts;
            self.windows[t].push_back(modeled);
            if self.windows[t].len() > window {
                self.windows[t].pop_front();
            }
            self.latencies[t].push(modeled);
            self.result_digest = mix2(self.result_digest, fcsched::digest(&out.result));
        }
        Ok(())
    }

    /// Modeled nanoseconds elapsed after the current tick completes.
    fn elapsed_ns(&self) -> f64 {
        (self.tick + 1) as f64 * self.cfg.knobs.tick_ns
    }

    /// Builds a fresh metrics ledger from the engine's current state.
    /// Rebuilt (not incrementally updated) at every flush so the
    /// exposition is a pure function of the serving state — the same
    /// ledger always renders the same bytes.
    fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for (t, spec) in self.tenants.iter().enumerate() {
            let s = &self.stats[t];
            let name = spec.name.as_str();
            for (outcome, v) in [
                ("submitted", s.submitted),
                ("admitted", s.admitted),
                ("rejected", s.rejected),
                ("shed", s.shed),
                ("narrowed", s.narrowed),
                ("completed", s.completed),
                ("failed", s.failed),
            ] {
                m.counter(
                    "fc_jobs_total",
                    &[("tenant", name), ("outcome", outcome)],
                    "per-tenant job counts by admission/completion outcome",
                    v as u64,
                );
            }
            let lab = [("tenant", name)];
            m.counter(
                "fc_retries_total",
                &lab,
                "deterministic retry draws charged to completed jobs",
                s.retries,
            );
            m.gauge(
                "fc_queue_depth",
                &lab,
                "jobs currently queued",
                self.queues[t].len() as f64,
            );
            // Bins span [0, 4×SLO]: a pure function of the tenant
            // contract, so the exposition stays shard/backend-invariant.
            let scale = spec.slo_us * 1e3 * 4.0;
            for &v in &self.latencies[t] {
                m.observe(
                    "fc_modeled_latency_ns",
                    &lab,
                    "modeled job latency: tick-clock queue wait + predicted service",
                    scale,
                    v,
                );
            }
        }
        m.counter(
            "fc_batches_total",
            &[],
            "micro-batches executed",
            self.batches as u64,
        );
        m.counter(
            "fc_native_ops_total",
            &[],
            "native DRAM operations executed",
            self.native_ops as u64,
        );
        m.counter(
            "fc_engine_visits_total",
            &[],
            "fused engine visits defined by executed step plans",
            self.engine_visits as u64,
        );
        m.counter(
            "fc_fused_jobs_total",
            &[],
            "jobs in cross-job fused runs under submission order",
            self.fused_jobs as u64,
        );
        m.counter(
            "fc_mitigations_total",
            &[],
            "read-disturbance mitigations scheduled",
            self.mitigations,
        );
        m.counter(
            "fc_dropouts_total",
            &[],
            "chip dropouts observed",
            self.dropouts as u64,
        );
        m.gauge(
            "fc_energy_pj",
            &[],
            "modeled energy spent, picojoules",
            self.energy_pj,
        );
        m.gauge("fc_tick", &[], "current daemon tick", self.tick as f64);
        m.gauge(
            "fc_elapsed_ns",
            &[],
            "modeled nanoseconds elapsed",
            self.elapsed_ns(),
        );
        m
    }

    fn take_snapshot(&mut self) -> Result<()> {
        let completed: usize = self.stats.iter().map(|s| s.completed).sum();
        let elapsed = self.elapsed_ns();
        let tenants = (0..self.tenants.len())
            .map(|t| {
                let w = &self.windows[t];
                let sum = LatencySummary::of(w.iter().copied().collect());
                let slo_us = self.tenants[t].slo_us;
                TenantHealth {
                    tenant: t,
                    queue_depth: self.queues[t].len(),
                    p50_us: sum.p50_ns / 1e3,
                    p99_us: sum.p99_ns / 1e3,
                    slo_us,
                    ok: w.is_empty() || sum.p99_ns <= slo_us * 1e3,
                }
            })
            .collect();
        self.snapshots.push(HealthSnapshot {
            tick: self.tick,
            elapsed_us: elapsed / 1e3,
            completed,
            admitted: self.stats.iter().map(|s| s.admitted).sum(),
            shed: self.stats.iter().map(|s| s.shed).sum(),
            rejected: self.stats.iter().map(|s| s.rejected).sum(),
            queued: self.queues.iter().map(VecDeque::len).sum(),
            modeled_jobs_per_s: completed as f64 * 1e9 / elapsed,
            tenants,
            mitigations: self.mitigations,
            dropouts: self.dropouts,
        });
        if self.obs.metrics_enabled {
            let rendered = self.metrics().render();
            self.obs
                .flush_metrics(rendered)
                .map_err(|e| ServeError::Io(e.to_string()))?;
        }
        if let Some(sink) = self.obs.trace.as_mut() {
            sink.record(TraceEvent {
                phase: Phase::Instant,
                cat: "daemon".into(),
                name: "snapshot".into(),
                who: "daemon".into(),
                track: 0,
                tick: self.tick as u64,
                job: 0,
                step: 3,
                ts_ns: elapsed,
                dur_ns: 0.0,
                args: vec![
                    ("completed".into(), completed as f64),
                    (
                        "queued".into(),
                        self.queues.iter().map(VecDeque::len).sum::<usize>() as f64,
                    ),
                    ("mitigations".into(), self.mitigations as f64),
                    ("dropouts".into(), self.dropouts as f64),
                ],
            });
        }
        Ok(())
    }

    /// Sums of (submitted, admitted, shed, rejected) across tenants —
    /// differenced around [`Daemon::ingest`] for the per-tick trace
    /// instant.
    fn ingest_totals(&self) -> (usize, usize, usize, usize) {
        self.stats.iter().fold((0, 0, 0, 0), |acc, s| {
            (
                acc.0 + s.submitted,
                acc.1 + s.admitted,
                acc.2 + s.shed,
                acc.3 + s.rejected,
            )
        })
    }

    /// The shared tick body behind [`Daemon::step`] and the drain
    /// loop: ingest (`None` on drain ticks — admission is closed),
    /// form and execute the micro-batch, snapshot on cadence. Emits
    /// the `(tick, 0, 0)` tick span and — on ingestion ticks — the
    /// `(tick, 0, 1)` ingest instant when tracing.
    fn advance(&mut self, tick: usize, events: Option<&[IngestEvent]>) -> Result<()> {
        self.tick = tick;
        let before = self.ingest_totals();
        if let Some(events) = events {
            self.ingest(events)?;
        }
        if self.obs.tracing() && events.is_some() {
            let after = self.ingest_totals();
            let ts = tick as f64 * self.cfg.knobs.tick_ns;
            if let Some(sink) = self.obs.trace.as_mut() {
                sink.record(TraceEvent {
                    phase: Phase::Instant,
                    cat: "daemon".into(),
                    name: "ingest".into(),
                    who: "daemon".into(),
                    track: 0,
                    tick: tick as u64,
                    job: 0,
                    step: 1,
                    ts_ns: ts,
                    dur_ns: 0.0,
                    args: vec![
                        ("submitted".into(), (after.0 - before.0) as f64),
                        ("admitted".into(), (after.1 - before.1) as f64),
                        ("shed".into(), (after.2 - before.2) as f64),
                        ("rejected".into(), (after.3 - before.3) as f64),
                    ],
                });
            }
        }
        let selected = self.form_batch();
        self.run_batch(&selected)?;
        if self.obs.tracing() {
            let ts = tick as f64 * self.cfg.knobs.tick_ns;
            let queued = self.queues.iter().map(VecDeque::len).sum::<usize>();
            let tick_ns = self.cfg.knobs.tick_ns;
            if let Some(sink) = self.obs.trace.as_mut() {
                sink.record(TraceEvent {
                    phase: Phase::Span,
                    cat: "daemon".into(),
                    name: if events.is_some() { "tick" } else { "drain" }.into(),
                    who: "daemon".into(),
                    track: 0,
                    tick: tick as u64,
                    job: 0,
                    step: 0,
                    ts_ns: ts,
                    dur_ns: tick_ns,
                    args: vec![
                        ("jobs".into(), selected.len() as f64),
                        ("queued".into(), queued as f64),
                    ],
                });
            }
        }
        if (tick + 1).is_multiple_of(self.cfg.knobs.report_every.max(1)) {
            self.take_snapshot()?;
        }
        Ok(())
    }

    /// Runs one tick: ingest `events`, form and execute the
    /// micro-batch, snapshot on cadence.
    ///
    /// # Errors
    ///
    /// Propagates compile and scheduling failures.
    pub fn step(&mut self, tick: usize, events: &[IngestEvent]) -> Result<()> {
        self.advance(tick, Some(events))
    }

    /// Stops admitting, drains the queues (bounded by the drain
    /// window), takes the final snapshot, and builds the report.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures from the drain batches.
    pub fn drain_and_finish(self) -> Result<DaemonReport> {
        self.drain_and_finish_obs().map(|(report, _)| report)
    }

    /// [`Daemon::drain_and_finish`], also handing back the
    /// observability bundle with the collected trace and the final
    /// metrics exposition. The final health snapshot and metrics
    /// flush always run at graceful drain — even when the last tick
    /// falls between health intervals — so the last exposition on
    /// disk matches the report's totals exactly.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures from the drain batches and
    /// metrics-write failures ([`ServeError::Io`]).
    pub fn drain_and_finish_obs(mut self) -> Result<(DaemonReport, Observability)> {
        let ingest_ticks = self.cfg.knobs.ticks;
        let mut drain_ticks = 0usize;
        while drain_ticks < self.cfg.knobs.drain_max && self.queues.iter().any(|q| !q.is_empty()) {
            drain_ticks += 1;
            self.advance(ingest_ticks + drain_ticks - 1, None)?;
        }
        if self.snapshots.last().map(|s| s.tick) != Some(self.tick) {
            self.take_snapshot()?;
        } else if self.obs.metrics_enabled {
            // The cadence already snapshotted this tick, but the
            // drain decision (queues empty / window exhausted) is
            // final state worth re-exposing.
            let rendered = self.metrics().render();
            self.obs
                .flush_metrics(rendered)
                .map_err(|e| ServeError::Io(e.to_string()))?;
        }
        let totals = DaemonTotals {
            submitted: self.stats.iter().map(|s| s.submitted).sum(),
            admitted: self.stats.iter().map(|s| s.admitted).sum(),
            narrowed: self.stats.iter().map(|s| s.narrowed).sum(),
            rejected: self.stats.iter().map(|s| s.rejected).sum(),
            shed: self.stats.iter().map(|s| s.shed).sum(),
            completed: self.stats.iter().map(|s| s.completed).sum(),
            failed: self.stats.iter().map(|s| s.failed).sum(),
            retries: self.stats.iter().map(|s| s.retries).sum(),
            native_ops: self.native_ops,
            batches: self.batches,
            undrained: self.queues.iter().map(VecDeque::len).sum(),
            energy_pj: self.energy_pj,
            result_digest: self.result_digest,
            modeled_jobs_per_s: {
                let completed: usize = self.stats.iter().map(|s| s.completed).sum();
                completed as f64 * 1e9 / self.elapsed_ns()
            },
        };
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let s = &self.stats[t];
                let rolling = LatencySummary::of(self.windows[t].iter().copied().collect());
                TenantReport {
                    tenant: t,
                    name: spec.name.clone(),
                    tier: spec.tier,
                    submitted: s.submitted,
                    admitted: s.admitted,
                    narrowed: s.narrowed,
                    rejected: s.rejected,
                    shed: s.shed,
                    completed: s.completed,
                    failed: s.failed,
                    retries: s.retries,
                    peak_queue: s.peak_queue,
                    slo_us: spec.slo_us,
                    latency: LatencySummary::of(self.latencies[t].clone()),
                    slo_met: self.windows[t].is_empty() || rolling.p99_ns <= spec.slo_us * 1e3,
                }
            })
            .collect();
        Ok((
            DaemonReport {
                seed: self.cfg.seed,
                ticks: ingest_ticks,
                drain_ticks,
                tick_ns: self.cfg.knobs.tick_ns,
                chips: self.fleet.len(),
                totals,
                tenants,
                snapshots: self.snapshots,
            },
            self.obs,
        ))
    }
}

/// Generates tenant `t`'s deterministic arrivals for `tick` — the one
/// traffic model both the live producers and any tooling share.
fn arrivals_for(spec: &TenantSpec, t: usize, seed: u64, tick: usize) -> Vec<IngestEvent> {
    (0..spec.arrivals(t, seed, tick))
        .map(|k| IngestEvent {
            tick,
            tenant: t,
            expr: spec.pick_expr(t, seed, tick, k),
            job_seed: spec.job_seed(t, seed, tick, k),
        })
        .collect()
}

/// Serves a live session: one producer thread per tenant streams
/// tick-stamped arrivals over bounded channels (real ingestion
/// backpressure — a producer stalls once it runs
/// `PRODUCER_LOOKAHEAD` ticks ahead), the engine consumes them in
/// tenant order, records every ingested job into the returned
/// [`SessionLog`], and drains gracefully at the end.
///
/// The returned report is byte-identical to
/// [`replay`]`(fleet, cost, &log, ...)` of the returned log — at any
/// shard count, on either backend.
///
/// # Errors
///
/// Propagates compile and scheduling failures.
///
/// # Panics
///
/// Panics if a producer thread panics.
pub fn run_live(
    fleet: &FleetConfig,
    cost: &CostModel,
    cfg: &DaemonConfig,
    tenants: &[TenantSpec],
) -> Result<(SessionLog, DaemonReport)> {
    run_live_obs(fleet, cost, cfg, tenants, Observability::disabled())
        .map(|(log, report, _)| (log, report))
}

/// [`run_live`] with an observability bundle threaded through the
/// engine: trace events are collected on the modeled clock, metric
/// expositions are flushed at every health interval and at drain, and
/// the bundle comes back with everything collected.
///
/// # Errors
///
/// Propagates compile, scheduling, and metrics-write failures.
///
/// # Panics
///
/// Panics if a producer thread panics.
pub fn run_live_obs(
    fleet: &FleetConfig,
    cost: &CostModel,
    cfg: &DaemonConfig,
    tenants: &[TenantSpec],
    obs: Observability,
) -> Result<(SessionLog, DaemonReport, Observability)> {
    let mut log = SessionLog::for_config(cfg, tenants, fleet.len(), fleet.seed, None, None);
    let mut daemon = Daemon::new(fleet, cost, cfg.clone(), tenants.to_vec()).with_obs(obs);
    let ticks = cfg.knobs.ticks;
    let seed = cfg.seed;
    let result: Result<()> = std::thread::scope(|scope| {
        let mut rxs = Vec::with_capacity(tenants.len());
        for (t, spec) in tenants.iter().enumerate() {
            let (tx, rx) = sync_channel::<(usize, Vec<IngestEvent>)>(PRODUCER_LOOKAHEAD);
            rxs.push(rx);
            scope.spawn(move || {
                for tick in 0..ticks {
                    let events = arrivals_for(spec, t, seed, tick);
                    // A closed channel means the engine bailed early:
                    // stop producing.
                    if tx.send((tick, events)).is_err() {
                        return;
                    }
                }
            });
        }
        for tick in 0..ticks {
            let mut events = Vec::new();
            for rx in &rxs {
                let (produced_tick, batch) = rx.recv().expect("producer thread panicked");
                debug_assert_eq!(produced_tick, tick, "producers run in tick lockstep");
                events.extend(batch);
            }
            log.events.extend_from_slice(&events);
            // On error: drop the receivers (producers see a closed
            // channel and exit) and let the scope join them.
            daemon.step(tick, &events)?;
        }
        Ok(())
    });
    result?;
    let (report, obs) = daemon.drain_and_finish_obs()?;
    Ok((log, report, obs))
}

/// Replays a recorded session byte-identically. `shards` / `backend`
/// override the recorded serving-time choices — the report does not
/// depend on either.
///
/// # Errors
///
/// Fails on a malformed log ([`ServeError::BadSession`]) and
/// propagates compile and scheduling failures.
pub fn replay(
    fleet: &FleetConfig,
    cost: &CostModel,
    log: &SessionLog,
    shards: Option<usize>,
    backend: Option<fcexec::BackendKind>,
) -> Result<DaemonReport> {
    replay_obs(fleet, cost, log, shards, backend, Observability::disabled())
        .map(|(report, _)| report)
}

/// [`replay`] with an observability bundle threaded through the
/// engine. Because every trace timestamp and metric value derives
/// from the modeled clock and the plan, the collected artifacts are
/// byte-identical to the live run's — at any shard count, on either
/// backend.
///
/// # Errors
///
/// Fails on a malformed log ([`ServeError::BadSession`]) and
/// propagates compile, scheduling, and metrics-write failures.
pub fn replay_obs(
    fleet: &FleetConfig,
    cost: &CostModel,
    log: &SessionLog,
    shards: Option<usize>,
    backend: Option<fcexec::BackendKind>,
    obs: Observability,
) -> Result<(DaemonReport, Observability)> {
    log.validate()?;
    let cfg = log.config(shards, backend);
    let ticks = cfg.knobs.ticks;
    let mut by_tick: Vec<Vec<IngestEvent>> = vec![Vec::new(); ticks];
    for e in &log.events {
        by_tick[e.tick].push(*e);
    }
    let mut daemon = Daemon::new(fleet, cost, cfg, log.tenants.clone()).with_obs(obs);
    for (tick, events) in by_tick.iter().enumerate() {
        daemon.step(tick, events)?;
    }
    daemon.drain_and_finish_obs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::DaemonKnobs;

    fn cost() -> CostModel {
        CostModel::table1_defaults()
    }

    fn tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "interactive".into(),
                tier: TierClass::Gold,
                exprs: vec!["a & b".into(), "!(x | y)".into(), "a ^ b".into()],
                rate: 2.0,
                burst: 0,
                slo_us: 200.0,
                queue_cap: 8,
                sheddable: false,
                min_success: 0.85,
            },
            TenantSpec {
                name: "bulk".into(),
                tier: TierClass::Bronze,
                exprs: vec!["a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p".into()],
                rate: 4.0,
                burst: 6,
                slo_us: 400.0,
                queue_cap: 3,
                sheddable: true,
                min_success: 0.8,
            },
        ]
    }

    fn config(seed: u64) -> DaemonConfig {
        DaemonConfig {
            seed,
            lanes: 16,
            knobs: DaemonKnobs {
                ticks: 8,
                max_batch: 6,
                ..DaemonKnobs::default()
            },
            ..DaemonConfig::default()
        }
    }

    #[test]
    fn live_session_replays_byte_identically() {
        let cost = cost();
        let fleet = FleetConfig::table1(2);
        let (log, live) = run_live(&fleet, &cost, &config(7), &tenants()).unwrap();
        assert!(log.events.len() > 8, "traffic flowed: {}", log.events.len());
        let replayed = replay(&fleet, &cost, &log, None, None).unwrap();
        assert_eq!(live.to_json(), replayed.to_json(), "live == replay");
        // And across shard counts and backends.
        for shards in [1usize, 5] {
            for backend in [fcexec::BackendKind::Vm, fcexec::BackendKind::Bender] {
                let r = replay(&fleet, &cost, &log, Some(shards), Some(backend)).unwrap();
                assert_eq!(
                    live.to_json(),
                    r.to_json(),
                    "replay differs at shards={shards} backend={backend}"
                );
            }
        }
    }

    #[test]
    fn live_runs_are_reproducible_and_seed_sensitive() {
        let cost = cost();
        let fleet = FleetConfig::table1(2);
        let (log_a, rep_a) = run_live(&fleet, &cost, &config(7), &tenants()).unwrap();
        let (log_b, rep_b) = run_live(&fleet, &cost, &config(7), &tenants()).unwrap();
        assert_eq!(log_a, log_b, "same seed, same session");
        assert_eq!(rep_a.to_json(), rep_b.to_json());
        let (log_c, _) = run_live(&fleet, &cost, &config(8), &tenants()).unwrap();
        assert_ne!(log_a.events, log_c.events, "seed moves the traffic");
    }

    #[test]
    fn bronze_overload_sheds_and_gold_never_does() {
        let cost = cost();
        let fleet = FleetConfig::table1(1);
        // Starve the batch budget so queues back up.
        let mut cfg = config(3);
        cfg.knobs.max_batch = 2;
        cfg.knobs.drain_max = 128;
        let (_, report) = run_live(&fleet, &cost, &cfg, &tenants()).unwrap();
        let gold = &report.tenants[0];
        let bronze = &report.tenants[1];
        assert_eq!(gold.shed, 0, "gold is never shed");
        assert!(bronze.shed > 0, "over-cap bronze arrivals are shed");
        assert!(bronze.peak_queue <= 3 + 1, "bronze queue stays bounded");
        assert_eq!(
            report.totals.submitted,
            report.totals.admitted + report.totals.shed + report.totals.rejected,
            "every submission is accounted"
        );
        assert_eq!(
            report.totals.completed + report.totals.undrained,
            report.totals.admitted,
            "admitted jobs either complete or are left undrained"
        );
    }

    #[test]
    fn reliability_floor_rejects_unreachable_contracts() {
        let cost = cost();
        let fleet = FleetConfig::table1(1);
        let mk = |min_success: f64| {
            vec![TenantSpec {
                name: "wide".into(),
                tier: TierClass::Silver,
                exprs: vec!["a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p".into()],
                rate: 1.0,
                burst: 0,
                slo_us: 500.0,
                queue_cap: 8,
                sheddable: false,
                min_success,
            }]
        };
        // The 16-AND prices at 0.945 as submitted (its best variant:
        // table1 narrowing compounds ops faster than it helps), so a
        // 0.90 floor admits everything and a 0.96 floor is
        // unreachable by any native width.
        let (_, relaxed) = run_live(&fleet, &cost, &config(1), &mk(0.90)).unwrap();
        assert_eq!(relaxed.totals.rejected, 0);
        assert_eq!(relaxed.totals.admitted, relaxed.totals.submitted);
        let (_, reject) = run_live(&fleet, &cost, &config(1), &mk(0.96)).unwrap();
        assert_eq!(reject.totals.admitted, 0, "unreachable floor rejects");
        assert_eq!(reject.totals.rejected, reject.totals.submitted);
    }

    #[test]
    fn strained_chips_run_narrowed_variants() {
        let cost = cost();
        // Members 10 and 11 of the Table-1 inventory derate wide
        // gates hard enough (strain > 2.7) that the planner's
        // per-chip admission picks a narrowed 16-AND there.
        let fleet = FleetConfig::table1(12);
        let mut cfg = config(5);
        cfg.knobs.ticks = 6;
        cfg.knobs.max_batch = 16;
        cfg.policy.min_success = 0.85;
        let tenants = vec![TenantSpec {
            name: "bulk".into(),
            tier: TierClass::Bronze,
            exprs: vec!["a&b&c&d&e&f&g&h&i&j&k&l&m&n&o&p".into()],
            rate: 12.0,
            burst: 0,
            slo_us: 1e6,
            queue_cap: 64,
            sheddable: false,
            min_success: 0.90,
        }];
        let (log, report) = run_live(&fleet, &cost, &cfg, &tenants).unwrap();
        assert!(
            report.totals.narrowed > 0,
            "strained chips narrow: {:?}",
            report.totals
        );
        assert!(report.totals.narrowed < report.totals.completed);
        // And the narrowed count itself replays byte-identically.
        let replayed = replay(&fleet, &cost, &log, Some(1), None).unwrap();
        assert_eq!(report.to_json(), replayed.to_json());
    }

    #[test]
    fn drain_completes_queued_work_and_reports_snapshots() {
        let cost = cost();
        let fleet = FleetConfig::table1(2);
        let (_, report) = run_live(&fleet, &cost, &config(7), &tenants()).unwrap();
        assert_eq!(report.totals.undrained, 0, "the demo load drains clean");
        assert!(report.totals.completed > 0);
        assert!(!report.snapshots.is_empty());
        let last = report.snapshots.last().unwrap();
        assert_eq!(last.queued, 0, "final snapshot is post-drain");
        assert!(last.modeled_jobs_per_s > 0.0);
        assert!(
            report.totals.modeled_jobs_per_s > 0.0,
            "modeled throughput is reported deterministically"
        );
        // Snapshot cadence: strictly increasing tick stamps.
        for w in report.snapshots.windows(2) {
            assert!(w[0].tick < w[1].tick);
        }
    }

    #[test]
    fn observed_runs_match_unobserved_and_replay_artifacts_exactly() {
        let cost = cost();
        let fleet = FleetConfig::table1(2);
        let (log, plain) = run_live(&fleet, &cost, &config(7), &tenants()).unwrap();
        let bundle = || {
            Observability::disabled()
                .with_trace(1 << 16)
                .with_metrics(None)
        };
        let (log2, observed, obs) =
            run_live_obs(&fleet, &cost, &config(7), &tenants(), bundle()).unwrap();
        assert_eq!(log, log2, "observation does not perturb the session");
        assert_eq!(
            plain.to_json(),
            observed.to_json(),
            "observation never changes the report"
        );
        let trace = obs.trace.unwrap().finish();
        for name in ["tick", "ingest", "snapshot", "batch"] {
            assert!(
                trace.iter().any(|e| e.name == name),
                "trace has a '{name}' event"
            );
        }
        let metrics = obs.last_metrics.unwrap();
        assert!(metrics.contains(&format!("fc_batches_total {}", plain.totals.batches)));
        assert!(metrics.contains(&format!(
            "fc_jobs_total{{tenant=\"interactive\",outcome=\"completed\"}} {}",
            plain.tenants[0].completed
        )));
        // Replaying the log on another backend/shard count collects
        // byte-identical artifacts.
        let (_, obs2) = replay_obs(
            &fleet,
            &cost,
            &log,
            Some(5),
            Some(fcexec::BackendKind::Bender),
            bundle(),
        )
        .unwrap();
        assert_eq!(trace, obs2.trace.unwrap().finish(), "trace is invariant");
        assert_eq!(metrics, obs2.last_metrics.unwrap(), "metrics are invariant");
    }

    #[test]
    fn compile_errors_name_the_tenant() {
        let cost = cost();
        let fleet = FleetConfig::table1(1);
        let bad = vec![TenantSpec {
            name: "broken".into(),
            tier: TierClass::Gold,
            exprs: vec!["a &".into()],
            rate: 1.0,
            burst: 0,
            slo_us: 100.0,
            queue_cap: 4,
            sheddable: false,
            min_success: 0.5,
        }];
        match run_live(&fleet, &cost, &config(0), &bad) {
            Err(ServeError::Compile { tenant, .. }) => assert_eq!(tenant, "broken"),
            other => panic!("expected a compile error, got {other:?}"),
        }
    }
}
