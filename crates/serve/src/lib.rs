//! # fcserve — the always-on FCDRAM serving daemon
//!
//! Everything below [`fcsched`] runs one batch and exits. This crate
//! is the persistent layer on top: a multi-tenant daemon that ingests
//! jobs continuously, admits them against per-tenant reliability and
//! queue bounds, drains per-tenant queues into fcsched micro-batches
//! on a modeled tick clock, tracks rolling p50/p99 per tenant against
//! SLO targets, and shuts down with a graceful drain. Std-only
//! threads + channels — no new dependencies.
//!
//! The module layout mirrors the serving pipeline:
//!
//! 1. **[`tier`]** — [`TierClass`] priority tiers (gold > silver >
//!    bronze), per-tenant [`TenantSpec`] traffic/SLO contracts, and
//!    the deterministic arrival model;
//! 2. **[`session`]** — the JSON-round-trippable [`SessionLog`]:
//!    every ingested job is appended as an [`IngestEvent`], and a
//!    recorded session re-executes **byte-identically** under
//!    [`daemon::replay`];
//! 3. **[`daemon`]** — the tick engine ([`daemon::run_live`] /
//!    [`daemon::replay`]): ingestion → admission (shed-or-queue,
//!    reliability-aware rejection consulting
//!    [`fcsynth::SynthProgram::narrowed`]) → SLO-biased micro-batch
//!    formation → [`fcsched`] plan/execute → modeled-latency
//!    accounting;
//! 4. **[`report`]** — the deterministic [`DaemonReport`]: per-tenant
//!    rollups, periodic [`HealthSnapshot`]s with modeled throughput,
//!    and a cumulative fault ledger.
//!
//! ## The replay invariant
//!
//! A [`DaemonReport`] is a pure function of
//! `(session log, fleet, cost model)` — **not** of the shard count,
//! the execution backend, or the wall clock. Per-job latency is
//! *modeled*: tick-clock queue wait plus the planner's cost-model
//! predicted service time scaled by the deterministic retry count.
//! The executed backend latency (which legitimately differs between
//! `vm` and `bender`) never enters the report, so CI byte-diffs one
//! recorded session across `{vm,bender} × {1,5}-shard` replays.
//!
//! ## Quickstart
//!
//! ```
//! use fcserve::{daemon, DaemonConfig, TenantSpec, TierClass};
//! use dram_core::FleetConfig;
//! use fcsynth::CostModel;
//!
//! let cost = CostModel::table1_defaults();
//! let fleet = FleetConfig::table1(2);
//! let tenants = vec![TenantSpec {
//!     name: "interactive".into(),
//!     tier: TierClass::Gold,
//!     exprs: vec!["a & b".into(), "a ^ b".into()],
//!     rate: 1.5,
//!     burst: 1,
//!     slo_us: 50.0,
//!     queue_cap: 8,
//!     sheddable: false,
//!     min_success: 0.8,
//! }];
//! let cfg = DaemonConfig {
//!     seed: 7,
//!     ..DaemonConfig::default()
//! };
//! let (log, live) = daemon::run_live(&fleet, &cost, &cfg, &tenants)?;
//! let replayed = daemon::replay(&fleet, &cost, &log, None, None)?;
//! assert_eq!(live.to_json(), replayed.to_json());
//! # Ok::<(), fcserve::ServeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod daemon;
pub mod report;
pub mod session;
pub mod tier;

pub use daemon::{replay, replay_obs, run_live, run_live_obs, Daemon};
pub use report::{DaemonReport, DaemonTotals, HealthSnapshot, TenantHealth, TenantReport};
pub use session::{IngestEvent, SessionLog, SESSION_VERSION};
pub use tier::{DaemonConfig, DaemonKnobs, TenantSpec, TierClass};

use std::fmt;

/// Everything that can go wrong while serving a session.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A tenant expression failed to compile.
    Compile {
        /// Tenant name.
        tenant: String,
        /// The offending expression.
        expr: String,
        /// Compiler diagnostic.
        error: String,
    },
    /// A scheduling or execution failure inside a micro-batch.
    Sched(fcsched::SchedError),
    /// A malformed session log (bad version, out-of-range indices).
    BadSession(String),
    /// An observability artifact (metrics exposition) failed to write.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Compile {
                tenant,
                expr,
                error,
            } => write!(f, "tenant '{tenant}': expression '{expr}': {error}"),
            ServeError::Sched(e) => write!(f, "micro-batch failed: {e}"),
            ServeError::BadSession(msg) => write!(f, "bad session log: {msg}"),
            ServeError::Io(msg) => write!(f, "observability write failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fcsched::SchedError> for ServeError {
    fn from(e: fcsched::SchedError) -> Self {
        ServeError::Sched(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ServeError>;
